"""Unit tests for ddep / adep (Definitions 4-5)."""

from repro.core.dependencies import adep_edges, ddep_edges, dependency_closure
from repro.isa.expr import Const, Reg
from repro.isa.instructions import Load, RegOp, Store
from repro.isa.program import Program


def _run(*instrs, load_values=None):
    program = Program(list(instrs))
    values = dict(load_values or {})
    for index in program.load_indices():
        values.setdefault(index, 0)
    return program.execute(values)


class TestDdep:
    def test_simple_raw(self):
        run = _run(Load("r1", Const(0)), RegOp("r2", Reg("r1")))
        assert (0, 1) in ddep_edges(run)

    def test_intervening_write_breaks_dependency(self):
        # Definition 4: no instruction between I1 and I2 may rewrite r.
        run = _run(
            Load("r1", Const(0)),        # I0 writes r1
            RegOp("r1", Const(7)),       # I1 rewrites r1
            RegOp("r2", Reg("r1")),      # I2 reads r1 -> depends on I1 only
        )
        edges = ddep_edges(run)
        assert (1, 2) in edges
        assert (0, 2) not in edges

    def test_store_reads_address_and_data(self):
        run = _run(
            Load("r1", Const(0)),
            RegOp("r2", Const(0x100)),
            Store(Reg("r2"), Reg("r1")),
        )
        edges = ddep_edges(run)
        assert (0, 2) in edges  # data producer
        assert (1, 2) in edges  # address producer

    def test_artificial_dependency_counts(self):
        run = _run(
            Load("r1", Const(0)),
            RegOp("r2", Const(0x100) + Reg("r1") - Reg("r1")),
        )
        assert (0, 1) in ddep_edges(run)

    def test_no_dependency_between_unrelated(self):
        run = _run(RegOp("r1", Const(1)), RegOp("r2", Const(2)))
        assert ddep_edges(run) == frozenset()

    def test_unwritten_register_has_no_producer(self):
        run = _run(RegOp("r2", Reg("r1")))
        assert ddep_edges(run) == frozenset()


class TestAdep:
    def test_address_dependency_on_load(self):
        run = _run(
            Load("r1", Const(0)),
            Load("r2", Reg("r1")),
            load_values={0: 0x100},
        )
        assert (0, 1) in adep_edges(run)

    def test_data_only_dependency_is_not_adep(self):
        run = _run(
            Load("r1", Const(0)),
            Store(Const(0x100), Reg("r1")),  # r1 is data, not address
        )
        assert (0, 1) in ddep_edges(run)
        assert (0, 1) not in adep_edges(run)

    def test_adep_subset_of_ddep(self):
        run = _run(
            Load("r1", Const(0)),
            RegOp("r2", Reg("r1")),
            Load("r3", Reg("r2")),
            Store(Reg("r2"), Reg("r3")),
        )
        assert adep_edges(run) <= ddep_edges(run)


class TestClosure:
    def test_transitive_chain(self):
        closed = dependency_closure({(0, 1), (1, 2)})
        assert (0, 2) in closed

    def test_idempotent(self):
        edges = {(0, 1), (1, 2), (2, 3)}
        once = dependency_closure(edges)
        assert dependency_closure(once) == once

    def test_empty(self):
        assert dependency_closure(set()) == frozenset()
