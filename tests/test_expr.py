"""Unit tests for operand expressions (repro.isa.expr)."""

import pytest

from repro.isa.expr import (
    BinOp,
    Const,
    Expr,
    Reg,
    UnOp,
    evaluate,
    registers_read,
    to_expr,
)


class TestConstruction:
    def test_reg_repr(self):
        assert repr(Reg("r1")) == "r1"

    def test_const_repr(self):
        assert repr(Const(42)) == "42"

    def test_binop_repr(self):
        assert repr(BinOp("+", Reg("r1"), Const(2))) == "(r1 + 2)"

    def test_unop_repr(self):
        assert repr(UnOp("-", Reg("r1"))) == "-r1"

    def test_binop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            BinOp("%", Reg("r1"), Const(2))

    def test_unop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            UnOp("%", Reg("r1"))

    def test_expressions_are_hashable(self):
        e1 = BinOp("+", Reg("r1"), Const(1))
        e2 = BinOp("+", Reg("r1"), Const(1))
        assert e1 == e2
        assert hash(e1) == hash(e2)
        assert len({e1, e2}) == 1


class TestOperatorOverloading:
    def test_add_builds_binop(self):
        expr = Reg("r1") + 1
        assert expr == BinOp("+", Reg("r1"), Const(1))

    def test_radd_coerces_left_operand(self):
        expr = 1 + Reg("r1")
        assert expr == BinOp("+", Const(1), Reg("r1"))

    def test_sub_chain_matches_paper_artificial_dep(self):
        # The r2 = a + r1 - r1 pattern of Figure 13b.
        expr = Const(0x100) + Reg("r1") - Reg("r1")
        assert registers_read(expr) == frozenset({"r1"})
        assert evaluate(expr, {"r1": 99}) == 0x100

    def test_mul_xor_and_or_neg(self):
        regs = {"r1": 6, "r2": 3}
        assert evaluate(Reg("r1") * Reg("r2"), regs) == 18
        assert evaluate(Reg("r1") ^ Reg("r2"), regs) == 5
        assert evaluate(Reg("r1") & Reg("r2"), regs) == 2
        assert evaluate(Reg("r1") | Reg("r2"), regs) == 7
        assert evaluate(-Reg("r1"), regs) == -6

    def test_rsub_and_rmul(self):
        assert evaluate(10 - Reg("r1"), {"r1": 4}) == 6
        assert evaluate(3 * Reg("r1"), {"r1": 4}) == 12

    def test_rxor(self):
        assert evaluate(5 ^ Reg("r1"), {"r1": 3}) == 6


class TestToExpr:
    def test_int_becomes_const(self):
        assert to_expr(7) == Const(7)

    def test_str_becomes_reg(self):
        assert to_expr("r9") == Reg("r9")

    def test_expr_passthrough(self):
        expr = Reg("r1") + 1
        assert to_expr(expr) is expr

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            to_expr(True)

    def test_other_types_rejected(self):
        with pytest.raises(TypeError):
            to_expr(3.14)


class TestRegistersRead:
    def test_const_reads_nothing(self):
        assert registers_read(Const(5)) == frozenset()

    def test_reg_reads_itself(self):
        assert registers_read(Reg("r3")) == frozenset({"r3"})

    def test_nested_union(self):
        expr = (Reg("a") + Reg("b")) * UnOp("-", Reg("c"))
        assert registers_read(expr) == frozenset({"a", "b", "c"})

    def test_syntactic_not_semantic(self):
        # r - r still *reads* r: implementations must respect syntactic
        # dependencies (Section III-D2).
        expr = Reg("r") - Reg("r")
        assert registers_read(expr) == frozenset({"r"})

    def test_non_expr_rejected(self):
        with pytest.raises(TypeError):
            registers_read("r1")  # type: ignore[arg-type]


class TestEvaluate:
    def test_comparison_operators_return_01(self):
        regs = {"x": 5}
        assert evaluate(BinOp("==", Reg("x"), Const(5)), regs) == 1
        assert evaluate(BinOp("!=", Reg("x"), Const(5)), regs) == 0
        assert evaluate(BinOp("<", Reg("x"), Const(9)), regs) == 1
        assert evaluate(BinOp(">=", Reg("x"), Const(9)), regs) == 0

    def test_unop_not(self):
        assert evaluate(UnOp("!", Const(0)), {}) == 1
        assert evaluate(UnOp("!", Const(7)), {}) == 0

    def test_unop_invert(self):
        assert evaluate(UnOp("~", Const(0)), {}) == -1

    def test_missing_register_raises(self):
        with pytest.raises(KeyError):
            evaluate(Reg("nope"), {})

    def test_deep_nesting(self):
        expr = Const(1)
        for _ in range(50):
            expr = expr + 1
        assert evaluate(expr, {}) == 51
