"""Unit tests for the litmus DSL, outcome parsing and the registry."""

import pytest

from repro.isa.expr import Const, Reg
from repro.isa.instructions import Fence, Load, Store
from repro.litmus.dsl import LOCATION_STRIDE, LitmusBuilder
from repro.litmus.registry import all_tests, get_test, paper_suite
from repro.litmus.registry import test_names as litmus_test_names
from repro.litmus.test import Outcome


class TestBuilder:
    def test_locations_get_distinct_addresses(self):
        b = LitmusBuilder("t", locations=("a", "b", "c"))
        addrs = list(b.locations.values())
        assert len(set(addrs)) == 3
        assert all(addr % LOCATION_STRIDE == 0 for addr in addrs)

    def test_loc_returns_address_constant(self):
        b = LitmusBuilder("t", locations=("a",))
        assert b.loc("a") == Const(b.locations["a"])

    def test_address_strings_resolve_locations_first(self):
        b = LitmusBuilder("t", locations=("a",))
        p = b.proc().ld("r1", "a").ld("r2", "r1")
        program = p.build()
        assert program[0].addr == Const(b.locations["a"])
        assert program[1].addr == Reg("r1")

    def test_data_strings_are_registers(self):
        b = LitmusBuilder("t", locations=("a",))
        program = b.proc().st("a", "r1").build()
        assert program[0].data == Reg("r1")

    def test_fence_kinds(self):
        b = LitmusBuilder("t", locations=("a",))
        program = b.proc().fence("SS").fence("acquire").build()
        assert program[0] == Fence("S", "S")
        assert program[1] == Fence("L", "L")
        assert program[2] == Fence("L", "S")

    def test_unknown_fence_rejected(self):
        b = LitmusBuilder("t", locations=("a",))
        with pytest.raises(ValueError):
            b.proc().fence("XY")

    def test_branch_tuple_condition(self):
        b = LitmusBuilder("t", locations=("a",))
        p = b.proc()
        p.branch(("r1", "==", 0), "end").label("end")
        program = p.build()
        assert program[0].is_branch

    def test_init_with_location_name_stores_address(self):
        b = LitmusBuilder("t", locations=("a", "b"))
        b.init("a", "b")
        b.proc().ld("r1", "a")
        test = b.build()
        assert test.initial_memory[b.locations["a"]] == b.locations["b"]

    def test_build_produces_programs_per_proc(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1)
        b.proc().ld("r1", "a")
        test = b.build(asked={"P1.r1": 0})
        assert test.num_procs == 2
        assert isinstance(test.programs[0][0], Store)
        assert isinstance(test.programs[1][0], Load)


class TestOutcome:
    def test_parse_string_keys(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().ld("r1", "a")
        test = b.build(asked={"P0.r1": 3, "a": 1})
        assert (0, "r1", 3) in test.asked.regs
        assert (b.locations["a"], 1) in test.asked.mem

    def test_parse_tuple_keys(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().ld("r1", "a")
        test = b.build(asked={(0, "r1"): 3})
        assert (0, "r1", 3) in test.asked.regs

    def test_bad_key_rejected(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().ld("r1", "a")
        with pytest.raises(ValueError):
            b.build(asked={"bogus_key": 1})

    def test_matches_register_bindings(self):
        outcome = Outcome(regs=frozenset({(0, "r1", 5)}))
        assert outcome.matches({(0, "r1"): 5}, {})
        assert not outcome.matches({(0, "r1"): 6}, {})

    def test_matches_memory_with_default_zero(self):
        outcome = Outcome(mem=frozenset({(0x100, 0)}))
        assert outcome.matches({}, {})
        assert not outcome.matches({}, {0x100: 1})

    def test_observed_defaults_from_asked(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().ld("r1", "a").ld("r2", "a")
        test = b.build(asked={"P0.r1": 1})
        assert test.observed == frozenset({(0, "r1")})

    def test_str_rendering(self):
        outcome = Outcome(regs=frozenset({(0, "r1", 5)}))
        assert "P0.r1=5" in str(outcome)


class TestRegistry:
    def test_all_paper_figures_present(self):
        names = set(litmus_test_names())
        for required in (
            "dekker",
            "oota",
            "store-forwarding",
            "load-speculation",
            "mp+addr",
            "mp+artificial-addr",
            "mp+dep-memory",
            "mp+prefetch",
            "corr",
            "corr+intervening-store",
            "rsw",
            "rnsw",
        ):
            assert required in names

    def test_get_test_unknown_name(self):
        with pytest.raises(KeyError):
            get_test("not-a-test")

    def test_all_tests_builds_everything(self):
        tests = list(all_tests())
        assert len(tests) >= 25
        assert all(test.num_procs >= 1 for test in tests)

    def test_paper_suite_sources_are_figures(self):
        for test in paper_suite():
            assert test.source.startswith("Figure")

    def test_location_name_lookup(self):
        test = get_test("dekker")
        addr = test.locations["a"]
        assert test.location_name(addr) == "a"
        assert test.location_name(0xDEAD) == hex(0xDEAD)
