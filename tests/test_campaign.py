"""Tests for the differential model-hunt campaign (repro.campaign).

Covers the tentpole properties end to end: deterministic suite
sharding, atomic resumable state (interrupt mid-campaign, re-run,
byte-identical report), discrepancy mining over verdict tables, greedy
witness minimization that provably preserves the divergence, and the
``repro hunt`` CLI wiring.
"""

import json

import pytest

from repro.campaign import (
    CampaignDir,
    CampaignError,
    CampaignSpec,
    divergence_check,
    instruction_count,
    minimize_divergence,
    run_hunt,
)
from repro.eval.discrepancy import (
    Discrepancy,
    mine_discrepancies,
    parse_pair,
    render_discrepancies,
    verdict_table,
)
from repro.eval.litmus_matrix import litmus_matrix
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.frontend.suite import load_litmus_path, resolve_suite, shard_suite
from repro.litmus.registry import get_test

# gen:edges=3 is the smallest generated suite (the CoRR family), and it
# already contains a wmm/arm divergence — ideal for fast campaign tests.
_SUITE = "gen:edges=3"
_PAIR = ("wmm", "arm")


class TestShardSuite:
    def test_partition_covers_every_test_once(self):
        tests = resolve_suite("paper")
        shards = [shard_suite(tests, i, 4) for i in range(4)]
        names = [t.name for shard in shards for t in shard]
        assert sorted(names) == sorted(t.name for t in tests)

    def test_round_robin_is_deterministic_and_balanced(self):
        tests = resolve_suite("paper")
        again = [t.name for t in shard_suite(tests, 1, 3)]
        assert again == [t.name for t in shard_suite(resolve_suite("paper"), 1, 3)]
        sizes = [len(shard_suite(tests, i, 3)) for i in range(3)]
        assert max(sizes) - min(sizes) <= 1

    def test_bad_shard_arguments(self):
        tests = resolve_suite("paper")
        with pytest.raises(ValueError, match="num_shards"):
            shard_suite(tests, 0, 0)
        with pytest.raises(ValueError, match="shard_index"):
            shard_suite(tests, 3, 3)


class TestDiscrepancyMining:
    def test_parse_pair(self):
        assert parse_pair("wmm:arm") == ("wmm", "arm")
        for bad in ("wmm", "wmm:", ":arm", "wmm:wmm"):
            with pytest.raises(ValueError):
                parse_pair(bad)

    def test_mine_finds_only_disagreements(self):
        table = {
            "t1": {"wmm": True, "arm": False},
            "t2": {"wmm": True, "arm": True},
            "t3": {"wmm": False, "arm": True},
        }
        found = mine_discrepancies(table, [("wmm", "arm")])
        assert [(d.test_name, d.allowed_a, d.allowed_b) for d in found] == [
            ("t1", True, False),
            ("t3", False, True),
        ]
        assert found[0].splitter == "wmm"
        assert found[1].splitter == "arm"

    def test_mine_skips_partial_rows(self):
        table = {"t1": {"wmm": True}}
        assert mine_discrepancies(table, [("wmm", "arm")]) == []

    def test_verdict_table_pivots_matrix_cells(self):
        cells = litmus_matrix(
            tests=[get_test("dekker")], model_names=["sc", "gam"]
        )
        table = verdict_table(cells)
        assert table == {"dekker": {"sc": False, "gam": True}}
        mined = mine_discrepancies(table, [("gam", "sc")])
        assert len(mined) == 1 and mined[0].test_name == "dekker"

    def test_render_ranks_by_size(self):
        discs = [
            Discrepancy("big", ("a", "b"), True, False),
            Discrepancy("small", ("a", "b"), False, True),
        ]
        sizes = {("big", ("a", "b")): 9, ("small", ("a", "b")): 2}
        text = render_discrepancies(discs, sizes=sizes)
        assert text.index("small") < text.index("big")
        assert "2 discrepancies" in text

    def test_render_sizes_distinguish_pairs(self):
        # One test diverging for two pairs may minimize to different
        # witnesses; each row must show its own pair's size.
        discs = [
            Discrepancy("t", ("a", "b"), True, False),
            Discrepancy("t", ("a", "c"), True, False),
        ]
        sizes = {("t", ("a", "b")): 3, ("t", ("a", "c")): 7}
        text = render_discrepancies(discs, sizes=sizes)
        ab_row = next(line for line in text.splitlines() if "a:b" in line)
        ac_row = next(line for line in text.splitlines() if "a:c" in line)
        assert "3" in ab_row and "7" in ac_row


def _padded_dekker(extra_proc: bool = False):
    """Dekker plus semantically irrelevant padding (and optionally an
    irrelevant third processor), for exercising the minimizer."""
    builder = LitmusBuilder("dekker-padded", locations=("a", "b"))
    p0 = builder.proc()
    p0.st("a", 1).nop().ld("r1", "b")
    p1 = builder.proc()
    p1.op("r9", 7).st("b", 1).ld("r2", "a")
    if extra_proc:
        builder.proc().ld("r5", "a")
    return builder.build(asked={"P0.r1": 0, "P1.r2": 0})


class TestMinimization:
    def test_removes_padding_but_keeps_divergence(self):
        check = divergence_check(("sc", "gam"))
        result = minimize_divergence(_padded_dekker(), check)
        assert result.original_instrs == 6
        assert result.minimized_instrs == 4  # exactly the dekker core
        assert check(result.test)
        assert result.checks > 0

    def test_already_minimal_test_is_unchanged(self):
        check = divergence_check(("sc", "gam"))
        dekker = get_test("dekker")
        result = minimize_divergence(dekker, check)
        assert result.minimized_instrs == instruction_count(dekker) == 4
        assert [list(p.instructions) for p in result.test.programs] == [
            list(p.instructions) for p in dekker.programs
        ]

    def test_empty_processor_is_dropped_and_renumbered(self):
        check = divergence_check(("sc", "gam"))
        result = minimize_divergence(_padded_dekker(extra_proc=True), check)
        assert result.test.num_procs == 2
        assert result.minimized_instrs == 4
        # Asked bindings survived the renumbering and still diverge.
        assert check(result.test)

    def test_non_diverging_input_is_rejected(self):
        check = divergence_check(("sc", "tso"))
        with pytest.raises(ValueError, match="does not diverge"):
            # SC and TSO agree about CoRR (both forbid).
            minimize_divergence(get_test("corr"), check)

    def test_divergence_check_false_for_askless_test(self):
        check = divergence_check(("sc", "gam"))
        builder = LitmusBuilder("no-asked", locations=("a",))
        builder.proc().st("a", 1)
        assert not check(builder.build())


class TestCampaignState:
    def test_spec_round_trip(self, tmp_path):
        campaign = CampaignDir(tmp_path)
        assert campaign.load_spec() is None
        spec = CampaignSpec(suite=_SUITE, pairs=(_PAIR,), num_shards=2)
        campaign.write_spec(spec)
        assert campaign.load_spec() == spec
        assert spec.model_names == ("wmm", "arm")

    def test_mismatched_spec_is_refused(self, tmp_path):
        campaign = CampaignDir(tmp_path)
        campaign.write_spec(CampaignSpec(_SUITE, (_PAIR,), 2))
        with pytest.raises(CampaignError, match="different spec"):
            campaign.check_spec(CampaignSpec(_SUITE, (_PAIR,), 3))
        with pytest.raises(CampaignError, match="different spec"):
            campaign.check_spec(CampaignSpec(_SUITE, (("gam", "gam0"),), 2))

    def test_corrupt_spec_is_an_error_not_a_fresh_start(self, tmp_path):
        campaign = CampaignDir(tmp_path)
        campaign.spec_path.write_text("{ not json")
        with pytest.raises(CampaignError, match="unreadable"):
            campaign.load_spec()

    def test_incomplete_shard_reads_as_missing(self, tmp_path):
        campaign = CampaignDir(tmp_path)
        campaign.ensure_layout()
        assert campaign.load_shard(0) is None
        campaign.shard_path(0).write_text(json.dumps({"complete": False}))
        assert campaign.load_shard(0) is None
        campaign.write_shard(0, {"tests": [], "complete": True})
        assert campaign.load_shard(0) is not None
        assert campaign.completed_shards(2) == [0]


class _Interrupt(Exception):
    """Stands in for a mid-campaign kill."""


class TestRunHunt:
    def test_end_to_end_finds_and_minimizes_divergences(self, tmp_path):
        out = tmp_path / "campaign"
        report = run_hunt(
            out=str(out), suite=_SUITE, pairs=[_PAIR], num_shards=2
        )
        assert report.tests_evaluated > 0
        assert report.discrepancies  # at least one wmm/arm divergence
        assert len(report.witnesses) == len(report.discrepancies)
        # Every witness re-parses and still diverges through the standard
        # matrix path.
        witnesses = load_litmus_path(str(out / "witnesses"))
        cells = litmus_matrix(tests=witnesses, model_names=list(_PAIR))
        table = verdict_table(cells)
        for verdicts in table.values():
            assert verdicts["wmm"] != verdicts["arm"]
        # Witnesses never grew.
        for record in report.witnesses:
            assert record.minimized_instrs <= record.original_instrs
        # Report files are on disk and agree with the returned report.
        assert (out / "report.txt").read_text() == report.text
        payload = json.loads((out / "report.json").read_text())
        assert len(payload["discrepancies"]) == len(report.discrepancies)
        for entry in payload["discrepancies"]:
            assert (out / entry["witness"]).exists()

    def test_interrupted_campaign_resumes_to_identical_report(self, tmp_path):
        interrupted = tmp_path / "interrupted"
        fresh = tmp_path / "fresh"

        def exploding_log(message: str) -> None:
            if message.startswith("shard 2/2: evaluating"):
                raise _Interrupt(message)

        with pytest.raises(_Interrupt):
            run_hunt(
                out=str(interrupted),
                suite=_SUITE,
                pairs=[_PAIR],
                num_shards=2,
                log=exploding_log,
            )
        assert (interrupted / "shards" / "shard-0000.json").exists()
        assert not (interrupted / "shards" / "shard-0001.json").exists()

        logs: list[str] = []
        resumed = run_hunt(out=str(interrupted), log=logs.append)
        assert any("resuming campaign" in line for line in logs)
        assert any("shard 1/2: already complete" in line for line in logs)

        baseline = run_hunt(
            out=str(fresh), suite=_SUITE, pairs=[_PAIR], num_shards=2
        )
        assert resumed.text == baseline.text
        # Witness files are byte-identical across the two campaigns.
        for record, other in zip(resumed.witnesses, baseline.witnesses):
            left = (interrupted / record.relpath).read_bytes()
            right = (fresh / other.relpath).read_bytes()
            assert left == right

    def test_rerun_of_complete_campaign_is_idempotent(self, tmp_path):
        out = str(tmp_path / "campaign")
        first = run_hunt(out=out, suite=_SUITE, pairs=[_PAIR], num_shards=2)
        second = run_hunt(out=out)  # spec comes entirely from disk
        assert first.text == second.text

    def test_resume_flag_requires_existing_state(self, tmp_path):
        with pytest.raises(CampaignError, match="nothing to resume"):
            run_hunt(out=str(tmp_path / "nope"), suite=_SUITE, resume=True)

    def test_new_campaign_requires_suite(self, tmp_path):
        with pytest.raises(CampaignError, match="needs a --suite"):
            run_hunt(out=str(tmp_path / "new"))

    def test_conflicting_spec_is_refused(self, tmp_path):
        out = str(tmp_path / "campaign")
        run_hunt(out=out, suite=_SUITE, pairs=[_PAIR], num_shards=2)
        with pytest.raises(CampaignError, match="different spec"):
            run_hunt(out=out, suite=_SUITE, pairs=[_PAIR], num_shards=3)
        with pytest.raises(CampaignError, match="different spec"):
            run_hunt(out=out, suite="gen:edges=4", pairs=[_PAIR], num_shards=2)

    def test_bad_shard_count(self, tmp_path):
        with pytest.raises(CampaignError, match="--shards"):
            run_hunt(out=str(tmp_path / "x"), suite=_SUITE, num_shards=0)

    def test_invalid_suite_does_not_poison_the_directory(self, tmp_path):
        out = tmp_path / "campaign"
        with pytest.raises(CampaignError, match="at least 3 edges"):
            run_hunt(out=str(out), suite="gen:edges=2", pairs=[_PAIR])
        # No state was persisted, so the corrected spec starts cleanly.
        assert not (out / "campaign.json").exists()
        report = run_hunt(
            out=str(out), suite=_SUITE, pairs=[_PAIR], num_shards=2
        )
        assert report.discrepancies

    def test_failed_resume_leaves_no_litter(self, tmp_path):
        out = tmp_path / "typo"
        with pytest.raises(CampaignError, match="nothing to resume"):
            run_hunt(out=str(out), resume=True)
        assert not out.exists()

    def test_duplicate_names_in_directory_suite_are_refused(self, tmp_path):
        # Name-keyed pipelines (verdict table, minimization) would
        # silently drop one of the colliding tests, so loading must fail.
        from repro.litmus.frontend.parser import LitmusParseError
        from repro.litmus.frontend.printer import print_litmus
        from dataclasses import replace as dc_replace

        corpus = tmp_path / "corpus"
        corpus.mkdir()
        dekker = get_test("dekker")
        corr_renamed = dc_replace(get_test("corr"), name="dekker")
        (corpus / "a.litmus").write_text(print_litmus(dekker), encoding="utf-8")
        (corpus / "b.litmus").write_text(
            print_litmus(corr_renamed), encoding="utf-8"
        )
        with pytest.raises(LitmusParseError, match="duplicate test name"):
            load_litmus_path(str(corpus))
        with pytest.raises(LitmusParseError, match="duplicate test name"):
            run_hunt(
                out=str(tmp_path / "campaign"),
                suite=str(corpus),
                pairs=[("sc", "gam")],
            )

    def test_changed_suite_content_is_refused(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        from repro.litmus.frontend.printer import print_litmus

        (corpus / "dekker.litmus").write_text(
            print_litmus(get_test("dekker")), encoding="utf-8"
        )
        out = str(tmp_path / "campaign")
        run_hunt(out=out, suite=str(corpus), pairs=[("sc", "gam")], num_shards=1)
        # Same spec string, different resolved content: must be refused,
        # not silently mixed with the recorded shards.
        (corpus / "dekker.litmus").write_text(
            print_litmus(get_test("corr")), encoding="utf-8"
        )
        with pytest.raises(CampaignError, match="different spec"):
            run_hunt(out=out)


class TestHuntCLI:
    def test_hunt_command_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "campaign"
        status = main(
            [
                "hunt",
                "--suite",
                _SUITE,
                "--pair",
                "wmm:arm",
                "--shards",
                "2",
                "--out",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert status == 0
        assert "Hunt report" in captured.out
        assert "witnesses" in captured.out
        assert (out / "report.txt").exists()

    def test_bad_pair_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        status = main(
            ["hunt", "--suite", _SUITE, "--pair", "wmm", "--out", str(tmp_path)]
        )
        assert status == 2
        assert "bad model pair" in capsys.readouterr().err

    def test_unknown_model_is_reported(self, tmp_path, capsys):
        from repro.cli import main

        status = main(
            [
                "hunt",
                "--suite",
                _SUITE,
                "--pair",
                "wmm:nosuchmodel",
                "--out",
                str(tmp_path / "campaign"),
            ]
        )
        assert status == 2
        assert "nosuchmodel" in capsys.readouterr().err

    def test_resume_without_state_is_reported(self, tmp_path, capsys):
        from repro.cli import main

        status = main(
            ["hunt", "--resume", "--out", str(tmp_path / "missing")]
        )
        assert status == 2
        assert "nothing to resume" in capsys.readouterr().err
