"""Unit tests for the cache hierarchy (repro.sim.cache)."""

from repro.sim.cache import CacheHierarchy, CacheLevel
from repro.sim.config import CacheConfig, CoreConfig


def _small_level(ways=2, sets_kb=1):
    return CacheLevel("t", CacheConfig(size_kb=sets_kb, ways=ways, hit_latency=2, mshrs=2))


class TestCacheLevel:
    def test_geometry(self):
        config = CacheConfig(size_kb=32, ways=8, hit_latency=4, mshrs=8)
        assert config.num_sets == 64

    def test_miss_then_hit(self):
        level = _small_level()
        assert not level.lookup(0x1000)
        level.insert(0x1000)
        assert level.lookup(0x1000)
        assert level.hits == 1 and level.misses == 1

    def test_lru_eviction_order(self):
        level = _small_level(ways=2)
        sets = level.config.num_sets
        line = level.config.line_bytes
        stride = sets * line  # same set, different tags
        level.insert(0)
        level.insert(stride)
        level.lookup(0)           # touch 0: stride becomes LRU
        level.insert(2 * stride)  # evicts stride
        assert level.probe(0)
        assert not level.probe(stride)
        assert level.evictions == 1

    def test_probe_is_non_destructive(self):
        level = _small_level()
        level.insert(0x40)
        hits_before = level.hits
        assert level.probe(0x40)
        assert level.hits == hits_before

    def test_same_line_addresses_share_entry(self):
        level = _small_level()
        level.insert(0x100)
        assert level.probe(0x100 + 8)

    def test_mshr_occupancy_window(self):
        level = _small_level()
        level.allocate_mshr(until=10)
        level.allocate_mshr(until=10)
        assert not level.mshr_available(now=5)
        assert level.mshr_available(now=10)


class TestHierarchy:
    def test_miss_fills_all_levels(self):
        hierarchy = CacheHierarchy(CoreConfig.tiny())
        first = hierarchy.access(0x4000, now=0)
        assert first.level == "mem"
        again = hierarchy.access(0x4000, now=first.ready_cycle)
        assert again.level == "l1"

    def test_latency_accumulates_down_the_hierarchy(self):
        config = CoreConfig.tiny()
        hierarchy = CacheHierarchy(config)
        result = hierarchy.access(0x8000, now=0)
        floor = (
            config.l1d.hit_latency
            + config.l2.hit_latency
            + config.l3.hit_latency
            + config.memory_latency
        )
        assert result.ready_cycle >= floor

    def test_l2_hit_after_l1_eviction(self):
        config = CoreConfig.tiny()
        hierarchy = CacheHierarchy(config)
        hierarchy.access(0x0, now=0)
        # Thrash L1 set 0 (2 ways in tiny config) with same-set lines.
        l1_span = config.l1d.num_sets * 64
        hierarchy.access(l1_span, now=100)
        hierarchy.access(2 * l1_span, now=200)
        result = hierarchy.access(0x0, now=300)
        assert result.level in ("l2", "l3")

    def test_would_miss_l1(self):
        hierarchy = CacheHierarchy(CoreConfig.tiny())
        assert hierarchy.would_miss_l1(0x40)
        hierarchy.access(0x40, now=0)
        assert not hierarchy.would_miss_l1(0x40)

    def test_memory_access_counter(self):
        hierarchy = CacheHierarchy(CoreConfig.tiny())
        hierarchy.access(0x0, now=0)
        hierarchy.access(0x123400, now=0)
        assert hierarchy.memory_accesses == 2

    def test_store_accesses_allocate(self):
        hierarchy = CacheHierarchy(CoreConfig.tiny())
        hierarchy.access(0x40, now=0, is_store=True)
        assert not hierarchy.would_miss_l1(0x40)


class TestTableIConfig:
    def test_haswell_like_matches_table_i(self):
        config = CoreConfig.haswell_like()
        assert config.fetch_width == 4
        assert config.issue_width == 6
        assert config.rob_entries == 192
        assert config.rs_entries == 60
        assert config.lb_entries == 72
        assert config.sb_entries == 42
        assert config.l1d.size_kb == 32 and config.l1d.hit_latency == 4
        assert config.l2.size_kb == 256 and config.l2.hit_latency == 12
        assert config.l3.size_kb == 1024 and config.l3.hit_latency == 35
        assert config.memory_latency == 200
        assert config.l1d.mshrs == 8 and config.l2.mshrs == 20 and config.l3.mshrs == 30

    def test_units_of_table_i(self):
        from repro.sim.uops import UopKind

        config = CoreConfig.haswell_like()
        assert config.units_of(UopKind.INT_ALU) == 4
        assert config.units_of(UopKind.FP_ALU) == 2
        assert config.units_of(UopKind.LOAD) == 2
        assert config.units_of(UopKind.INT_DIV) == 1

    def test_latency_of_unknown_kind_raises(self):
        import pytest

        from repro.sim.uops import UopKind

        with pytest.raises(KeyError):
            CoreConfig.haswell_like().latency_of(UopKind.LOAD)
