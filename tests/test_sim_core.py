"""Unit tests for the out-of-order core (repro.sim.core)."""

import pytest

from repro.sim.config import CoreConfig
from repro.sim.core import OOOCore, simulate
from repro.sim.policies import ALPHA_STAR, ARM, GAM, GAM0
from repro.sim.uops import Trace, Uop, UopKind


def _trace(*uops, name="t"):
    return Trace(name=name, uops=list(uops))


def _alu(dst=None, srcs=()):
    return Uop(UopKind.INT_ALU, dst=dst, srcs=tuple(srcs))


def _load(addr, dst=None, srcs=()):
    return Uop(UopKind.LOAD, dst=dst, srcs=tuple(srcs), addr=addr)


def _store(addr, srcs=()):
    return Uop(UopKind.STORE, srcs=tuple(srcs), addr=addr)


class TestBasicPipeline:
    def test_all_uops_commit(self):
        stats = simulate(_trace(*[_alu(dst=i % 8) for i in range(40)]))
        assert stats.committed_uops == 40
        assert stats.cycles > 0

    def test_independent_alus_achieve_ilp(self):
        stats = simulate(_trace(*[_alu(dst=i % 16) for i in range(400)]))
        assert stats.upc > 2.0  # 4-wide fetch, 4 ALUs: far above 1.0

    def test_dependent_chain_serializes(self):
        uops = [_alu(dst=0)] + [_alu(dst=0, srcs=(0,)) for _ in range(200)]
        stats = simulate(_trace(*uops))
        assert stats.upc < 1.2  # 1-cycle ALU chain: about one per cycle

    def test_div_latency_dominates(self):
        uops = []
        for _ in range(20):
            uops.append(Uop(UopKind.INT_DIV, dst=0, srcs=(0,)))
        stats = simulate(_trace(*uops))
        assert stats.cycles >= 20 * 20  # 20-cycle divides, serialized

    def test_mispredicted_branch_costs_fetch_bubble(self):
        clean = [_alu(dst=i % 8) for i in range(50)]
        bubbly = list(clean)
        bubbly[10] = Uop(UopKind.BRANCH, mispredicted=True)
        base = simulate(_trace(*clean))
        hit = simulate(_trace(*bubbly))
        assert hit.cycles > base.cycles
        assert hit.mispredicted_branches == 1

    def test_determinism(self):
        uops = [_load(64 * i, dst=i % 8) for i in range(100)]
        first = simulate(_trace(*uops))
        second = simulate(_trace(*uops))
        assert first.cycles == second.cycles
        assert first.l1_load_misses == second.l1_load_misses

    def test_cycle_limit_raises(self):
        trace = _trace(*[_load(64 * i, dst=0) for i in range(50)])
        with pytest.raises(RuntimeError):
            OOOCore().run(trace, max_cycles=3)


class TestMemoryBehaviour:
    def test_loads_hit_after_warmup(self):
        uops = [_load(0, dst=1) for _ in range(50)]
        stats = simulate(_trace(*uops))
        assert stats.l1_load_hits > 40

    def test_store_to_load_forwarding(self):
        uops = []
        for i in range(20):
            uops.append(_store(0x80))
            uops.append(_load(0x80, dst=1))
        stats = simulate(_trace(*uops))
        assert stats.sb_forwards > 0

    def test_conflict_kill_when_store_address_late(self):
        # A long dependency chain delays the store's address; the younger
        # same-address load executes early and must be squashed.
        uops = [Uop(UopKind.INT_DIV, dst=0, srcs=())]
        for _ in range(3):
            uops.append(Uop(UopKind.INT_DIV, dst=0, srcs=(0,)))
        uops.append(_store(0x100, srcs=(0,)))   # late address
        uops.append(_load(0x100, dst=1))        # ready address, speculates
        uops.extend(_alu(dst=2) for _ in range(5))
        stats = simulate(_trace(*uops), GAM0)
        assert stats.conflict_kills >= 1

    def test_store_set_predictor_limits_repeat_kills(self):
        uops = []
        uops.append(Uop(UopKind.INT_DIV, dst=0, srcs=()))
        for _ in range(3):
            uops.append(Uop(UopKind.INT_DIV, dst=0, srcs=(0,)))
        uops.append(_store(0x100, srcs=(0,)))
        uops.append(_load(0x100, dst=1))
        stats = simulate(_trace(*uops), GAM0)
        # One violation, then the predictor holds the load back on replay.
        assert stats.conflict_kills == 1


def _saldld_trace():
    """Older same-address load with a late address; younger load ready."""
    uops = [Uop(UopKind.INT_DIV, dst=0, srcs=())]
    for _ in range(3):
        uops.append(Uop(UopKind.INT_DIV, dst=0, srcs=(0,)))
    uops.append(_load(0x200, dst=1, srcs=(0,)))  # older load, late address
    uops.append(_load(0x200, dst=2))             # younger load, ready address
    uops.extend(_alu(dst=3) for _ in range(5))
    return _trace(*uops)


class TestPolicies:
    def test_gam_kills_younger_same_address_load(self):
        stats = simulate(_saldld_trace(), GAM)
        assert stats.saldld_kills >= 1

    def test_arm_does_not_kill(self):
        stats = simulate(_saldld_trace(), ARM)
        assert stats.saldld_kills == 0

    def test_gam0_neither_kills_nor_stalls(self):
        stats = simulate(_saldld_trace(), GAM0)
        assert stats.saldld_kills == 0
        assert stats.saldld_stalls == 0

    def test_stall_when_older_load_resolved_but_unissued(self):
        # Saturate the two LSU ports with independent loads so the older
        # same-address load has a resolved address but waits for a port;
        # the younger load then stalls (GAM/ARM) instead of overtaking.
        uops = []
        for i in range(12):
            uops.append(_load(0x1000 + 64 * i, dst=i % 4))
        uops.append(_load(0x2000, dst=5))
        uops.append(_load(0x2000, dst=6))
        gam = simulate(_trace(*uops), GAM)
        arm = simulate(_trace(*uops), ARM)
        gam0 = simulate(_trace(*uops), GAM0)
        assert gam.saldld_stalls == arm.saldld_stalls
        assert gam0.saldld_stalls == 0

    def test_alpha_star_forwards_load_to_load(self):
        uops = [_load(0x300, dst=1), _load(0x300, dst=2)]
        uops.extend(_alu(dst=3) for _ in range(5))
        alpha = simulate(_trace(*uops), ALPHA_STAR)
        gam0 = simulate(_trace(*uops), GAM0)
        assert alpha.ldld_forwards >= 1
        assert gam0.ldld_forwards == 0

    def test_policies_commit_identical_work(self):
        trace = _saldld_trace()
        counts = {p.name: simulate(trace, p).committed_uops for p in (GAM, ARM, GAM0)}
        assert len(set(counts.values())) == 1


class TestCapacityLimits:
    def test_rob_capacity_limits_memory_level_parallelism(self):
        # Eight independent DRAM misses: a 4-entry ROB halves the number of
        # overlapping misses, roughly doubling the run time.
        from dataclasses import replace

        big = CoreConfig.haswell_like()
        small = replace(big, rob_entries=4)
        uops = [_load(0x90000 + 4096 * i, dst=i % 4) for i in range(8)]
        constrained = OOOCore(config=small, policy=GAM).run(_trace(*uops))
        unconstrained = OOOCore(config=big, policy=GAM).run(_trace(*uops))
        assert constrained.cycles > 1.5 * unconstrained.cycles

    def test_store_buffer_backpressure(self):
        config = CoreConfig.tiny()  # 4 SB entries
        uops = [_store(0x5000 + 64 * i) for i in range(40)]
        stats = OOOCore(config=config, policy=GAM).run(_trace(*uops))
        assert stats.committed_stores == 40
