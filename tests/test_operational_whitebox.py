"""White-box tests for the Figure 17 machine internals."""

import pytest

from repro.core.operational import (
    GAM_MACHINE,
    MachineState,
    ProcState,
    RobEntry,
    _Machine,
    explore,
)
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.registry import get_test


def _empty_state(test):
    return MachineState(
        memory=tuple(sorted(test.initial_memory.items())),
        procs=tuple(ProcState(0, ()) for _ in test.programs),
    )


class TestMachineState:
    def test_memory_read_defaults_zero(self):
        state = MachineState(memory=(), procs=())
        assert state.read_mem(0x100) == 0

    def test_memory_write_is_persistent_and_sorted(self):
        state = MachineState(memory=((0x200, 5),), procs=())
        memory = state.write_mem(0x100, 7)
        assert memory == ((0x100, 7), (0x200, 5))

    def test_rob_entry_defaults(self):
        entry = RobEntry(index=0)
        assert not entry.done and not entry.addr_avail and not entry.data_avail
        assert entry.result is None and entry.pred_next is None


class TestFetchClosure:
    def test_straightline_fetches_everything_deterministically(self):
        test = get_test("dekker")
        machine = _Machine(test, GAM_MACHINE)
        states = list(machine.fetch_closure(_empty_state(test)))
        assert len(states) == 1
        for proc, pstate in enumerate(states[0].procs):
            assert pstate.pc == len(test.programs[proc])
            assert len(pstate.rob) == len(test.programs[proc])

    def test_each_branch_doubles_the_prediction_space(self):
        test = get_test("mp+ctrl")  # P1 has one branch
        machine = _Machine(test, GAM_MACHINE)
        states = list(machine.fetch_closure(_empty_state(test)))
        assert len(states) == 2  # predicted taken and predicted fall-through
        rob_lengths = sorted(len(s.procs[1].rob) for s in states)
        assert rob_lengths[0] < rob_lengths[1]  # taken path skips the load

    def test_branch_entries_record_prediction(self):
        test = get_test("mp+ctrl")
        machine = _Machine(test, GAM_MACHINE)
        for state in machine.fetch_closure(_empty_state(test)):
            branch_entry = state.procs[1].rob[1]
            assert branch_entry.pred_next is not None


class TestRuleGuards:
    def test_terminal_detection(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1)
        test = b.build()
        machine = _Machine(test, GAM_MACHINE)
        (fetched,) = machine.fetch_closure(_empty_state(test))
        assert not machine.is_terminal(fetched)
        # Address and data computation are both enabled; Execute-Store only
        # fires after both.  Walk rule firings to the terminal state.
        frontier = [fetched]
        terminal = None
        for _ in range(6):
            next_frontier = []
            for state in frontier:
                if machine.is_terminal(state):
                    terminal = state
                    break
                next_frontier.extend(machine.successors(state))
            if terminal is not None:
                break
            frontier = next_frontier
        assert terminal is not None
        assert terminal.read_mem(test.locations["a"]) == 1

    def test_final_state_reads_youngest_writer(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().op("r1", 1).op("r1", 2)
        test = b.build(asked={"P0.r1": 2})
        result = explore(test, GAM_MACHINE)
        (outcome,) = result.outcomes
        assert outcome.reg_bindings()[(0, "r1")] == 2

    def test_fence_blocks_younger_load_until_older_done(self):
        # FenceLL between two loads: outcome set must equal in-order reads.
        b = LitmusBuilder("t", locations=("a", "b"))
        b.proc().st("a", 1).fence("SS").st("b", 1)
        b.proc().ld("r1", "b").fence("LL").ld("r2", "a")
        test = b.build(asked={"P1.r1": 1, "P1.r2": 0})
        from repro.core.operational import operational_allows

        assert not operational_allows(test, GAM_MACHINE)

    def test_store_waits_for_older_branch(self):
        # With the branch unresolved the store cannot fire; exploration must
        # still terminate and never let the store commit on a killed path.
        test = get_test("lb+ctrls")
        result = explore(test, GAM_MACHINE)
        asked = test.asked
        assert all(
            not asked.matches(
                {(p, r): v for (p, r, v) in o.regs}, dict(o.mem)
            )
            for o in result.outcomes
        )

    def test_exploration_counts_are_consistent(self):
        result = explore(get_test("corr"), GAM_MACHINE)
        assert 0 < result.terminal_states <= result.states_visited
