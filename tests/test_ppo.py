"""Unit tests for each case of Definition 6 (preserved program order)."""

from repro.core.ppo import (
    AddrSt,
    BrSt,
    FenceOrd,
    PairwiseOrder,
    PpoContext,
    RegRAW,
    SALdLd,
    SALdLdARM,
    SAMemSt,
    SAStLd,
    compute_ppo,
    project_to_memory,
    transitive_closure,
)
from repro.isa.expr import BinOp, Const, Reg
from repro.isa.instructions import Branch, Fence, Load, Nop, RegOp, Store
from repro.isa.program import Program

A, B = 0x100, 0x200


def _ctx(*instrs, load_values=None, labels=None):
    program = Program(list(instrs), labels=labels)
    values = dict(load_values or {})
    for index in program.load_indices():
        values.setdefault(index, 0)
    return PpoContext.from_run(program.execute(values))


class TestSAMemSt:
    def test_load_then_store_same_address(self):
        ctx = _ctx(Load("r1", Const(A)), Store(Const(A), Const(1)))
        assert (0, 1) in set(SAMemSt().edges(ctx))

    def test_store_then_store_same_address(self):
        ctx = _ctx(Store(Const(A), Const(1)), Store(Const(A), Const(2)))
        assert (0, 1) in set(SAMemSt().edges(ctx))

    def test_different_address_not_ordered(self):
        ctx = _ctx(Load("r1", Const(A)), Store(Const(B), Const(1)))
        assert set(SAMemSt().edges(ctx)) == set()

    def test_store_then_load_not_ordered_by_this_clause(self):
        ctx = _ctx(Store(Const(A), Const(1)), Load("r1", Const(A)))
        assert set(SAMemSt().edges(ctx)) == set()


class TestSAStLd:
    def test_producer_of_forwarding_store_orders_load(self):
        # Figure 8 shape: the load is ordered after the producer of S's data.
        ctx = _ctx(
            Load("r0", Const(B)),            # I0 produces r0
            Store(Const(A), Const(1)),       # I1: older store (not forwarding)
            Store(Const(A), Reg("r0")),      # I2 = S, forwards to I3
            Load("r2", Const(A)),            # I3
        )
        edges = set(SAStLd().edges(ctx))
        assert (0, 3) in edges

    def test_only_immediately_preceding_store_counts(self):
        ctx = _ctx(
            Load("r0", Const(B)),            # I0
            Store(Const(A), Reg("r0")),      # I1: masked by I2
            Store(Const(A), Const(5)),       # I2 = S (no register producers)
            Load("r2", Const(A)),            # I3
        )
        assert set(SAStLd().edges(ctx)) == set()

    def test_no_same_address_store_no_edges(self):
        ctx = _ctx(Load("r0", Const(B)), Load("r2", Const(A)))
        assert set(SAStLd().edges(ctx)) == set()


class TestSALdLd:
    def test_consecutive_same_address_loads_ordered(self):
        ctx = _ctx(Load("r1", Const(A)), Load("r2", Const(A)))
        assert (0, 1) in set(SALdLd().edges(ctx))

    def test_intervening_store_exempts_pair(self):
        # Figure 14b: I4 and I6 are not ordered because I5 intervenes.
        ctx = _ctx(
            Load("r1", Const(B)),
            Store(Const(B), Const(2)),
            Load("r2", Const(B)),
        )
        edges = set(SALdLd().edges(ctx))
        assert (0, 2) not in edges

    def test_different_addresses_not_ordered(self):
        ctx = _ctx(Load("r1", Const(A)), Load("r2", Const(B)))
        assert set(SALdLd().edges(ctx)) == set()

    def test_store_to_other_address_does_not_exempt(self):
        ctx = _ctx(
            Load("r1", Const(A)),
            Store(Const(B), Const(1)),
            Load("r2", Const(A)),
        )
        assert (0, 2) in set(SALdLd().edges(ctx))


class TestRegRAWAndBrSt:
    def test_regraw_is_ddep(self):
        ctx = _ctx(Load("r1", Const(A)), RegOp("r2", Reg("r1")))
        assert (0, 1) in set(RegRAW().edges(ctx))

    def test_branch_orders_younger_stores_only(self):
        ctx = _ctx(
            Branch(Const(0), "end"),
            Store(Const(A), Const(1)),
            Load("r1", Const(B)),
            labels={"end": 3},
        )
        edges = set(BrSt().edges(ctx))
        assert (0, 1) in edges
        assert (0, 2) not in edges  # loads are NOT ordered after branches

    def test_store_before_branch_unordered(self):
        ctx = _ctx(
            Store(Const(A), Const(1)),
            Branch(Const(0), "end"),
            labels={"end": 2},
        )
        assert set(BrSt().edges(ctx)) == set()


class TestAddrSt:
    def test_address_producer_of_older_access_orders_store(self):
        ctx = _ctx(
            Load("r1", Const(A)),       # I0: produces the address below
            Load("r2", Reg("r1")),      # I1: older memory access
            Store(Const(B), Const(1)),  # I2: must wait for I0
        )
        assert (0, 2) in set(AddrSt().edges(ctx))

    def test_no_edge_when_store_is_older(self):
        ctx = _ctx(
            Store(Const(B), Const(1)),
            Load("r1", Const(A)),
            Load("r2", Reg("r1")),
        )
        assert set(AddrSt().edges(ctx)) == set()

    def test_data_producer_does_not_trigger_addrst(self):
        ctx = _ctx(
            Load("r1", Const(A)),        # produces data of I1, not address
            Store(Const(B), Reg("r1")),  # I1
            Store(Const(A), Const(2)),   # I2
        )
        assert set(AddrSt().edges(ctx)) == set()


class TestFenceOrd:
    def test_fence_ss_orders_stores_both_sides(self):
        ctx = _ctx(
            Store(Const(A), Const(1)),
            Fence("S", "S"),
            Store(Const(B), Const(1)),
            Load("r1", Const(A)),
        )
        edges = set(FenceOrd().edges(ctx))
        assert (0, 1) in edges
        assert (1, 2) in edges
        assert (1, 3) not in edges  # FenceSS does not order younger loads
        assert (0, 2) not in edges  # store-store ordering only via closure

    def test_fence_ll_ignores_stores(self):
        ctx = _ctx(
            Store(Const(A), Const(1)),
            Fence("L", "L"),
            Load("r1", Const(B)),
        )
        edges = set(FenceOrd().edges(ctx))
        assert (0, 1) not in edges
        assert (1, 2) in edges


class TestPairwiseOrder:
    def test_sc_pairs(self):
        ctx = _ctx(Load("r1", Const(A)), Store(Const(B), Const(1)))
        assert (0, 1) in set(PairwiseOrder("L", "S").edges(ctx))
        assert set(PairwiseOrder("S", "L").edges(ctx)) == set()

    def test_name_includes_types(self):
        assert PairwiseOrder("S", "L").name == "OrderSL"


class TestSALdLdARM:
    def test_loads_reading_different_stores_ordered(self):
        ctx = _ctx(Load("r1", Const(A)), Load("r2", Const(A)))
        rf = {0: (1, 0), 1: (-1, 0)}  # different sources
        assert (0, 1) in set(SALdLdARM().edges(ctx, rf))

    def test_loads_reading_same_store_not_ordered(self):
        ctx = _ctx(Load("r1", Const(A)), Load("r2", Const(A)))
        rf = {0: (-1, 0), 1: (-1, 0)}
        assert set(SALdLdARM().edges(ctx, rf)) == set()

    def test_intervening_store_exempts(self):
        ctx = _ctx(
            Load("r1", Const(A)),
            Store(Const(A), Const(2)),
            Load("r2", Const(A)),
        )
        rf = {0: (-1, 0), 2: (0, 1)}
        assert (0, 2) not in set(SALdLdARM().edges(ctx, rf))


class TestClosureAndProjection:
    def test_transitivity_through_regop(self):
        # MP+artificial-addr: load -> regop -> load must close to load -> load.
        ctx = _ctx(
            Load("r1", Const(B)),
            RegOp("r2", Const(A) + Reg("r1") - Reg("r1")),
            Load("r3", Reg("r2")),
            load_values={0: 1, 2: 0},
        )
        ppo = compute_ppo(ctx, (RegRAW(),))
        assert (0, 2) in ppo

    def test_transitivity_through_fence(self):
        ctx = _ctx(
            Load("r1", Const(A)),
            Fence("L", "L"),
            Load("r2", Const(B)),
        )
        ppo = compute_ppo(ctx, (FenceOrd(),))
        assert (0, 2) in ppo

    def test_projection_drops_non_memory(self):
        ctx = _ctx(
            Load("r1", Const(B)),
            RegOp("r2", Reg("r1")),
            Load("r3", Reg("r2")),
            load_values={0: A, 2: 0},
        )
        ppo = compute_ppo(ctx, (RegRAW(),))
        projected = project_to_memory(ctx, ppo)
        assert (0, 2) in projected
        assert all(a != 1 and b != 1 for a, b in projected)

    def test_closure_idempotent(self):
        ctx = _ctx(
            Load("r1", Const(A)),
            RegOp("r2", Reg("r1")),
            Store(Const(B), Reg("r2")),
        )
        once = compute_ppo(ctx, (RegRAW(),))
        assert transitive_closure(ctx, once) == once

    def test_all_edges_go_forward_in_program_order(self):
        ctx = _ctx(
            Load("r1", Const(A)),
            Store(Const(A), Reg("r1")),
            Load("r2", Const(A)),
            Fence("S", "S"),
            Store(Const(B), Const(1)),
        )
        clauses = (SAMemSt(), SAStLd(), SALdLd(), RegRAW(), BrSt(), AddrSt(), FenceOrd())
        ppo = compute_ppo(ctx, clauses)
        position = {e.index: i for i, e in enumerate(ctx.executed)}
        assert all(position[a] < position[b] for a, b in ppo)
