"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_tests(self, capsys):
        assert main(["list", "tests"]) == 0
        out = capsys.readouterr().out
        assert "dekker" in out and "rnsw" in out

    def test_list_tests_suite_filter(self, capsys):
        assert main(["list", "tests", "--suite", "paper"]) == 0
        out = capsys.readouterr().out
        assert "dekker" in out and "iriw" not in out
        assert main(["list", "tests", "--suite", "standard"]) == 0
        out = capsys.readouterr().out
        assert "iriw" in out and "rnsw" not in out

    def test_list_tests_generated_suite(self, capsys):
        assert main(["list", "tests", "--suite", "gen:edges=4,size=3"]) == 0
        assert "Critical cycle" in capsys.readouterr().out

    def test_list_tests_unknown_suite(self, capsys):
        assert main(["list", "tests", "--suite", "nope"]) == 2

    def test_list_models(self, capsys):
        assert main(["list", "models"]) == 0
        out = capsys.readouterr().out
        assert "gam" in out and "alpha_like" in out

    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "zeusmp" in out


class TestShowAndCheck:
    def test_show(self, capsys):
        assert main(["show", "dekker"]) == 0
        out = capsys.readouterr().out
        assert "St" in out and "Ld" in out and "asked" in out

    def test_show_litmus_format(self, capsys):
        assert main(["show", "dekker", "--format", "litmus"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("GAM dekker\n")
        assert "exists (0:r1=0 /\\ 1:r2=0)" in out
        from repro.litmus.frontend.parser import parse_litmus
        from repro.litmus.registry import get_test

        assert parse_litmus(out) == get_test("dekker")

    def test_check_allowed(self, capsys):
        assert main(["check", "dekker", "-m", "gam"]) == 0
        assert "ALLOWED" in capsys.readouterr().out

    def test_check_forbidden(self, capsys):
        assert main(["check", "dekker", "-m", "sc"]) == 0
        assert "FORBIDDEN" in capsys.readouterr().out

    def test_check_operational(self, capsys):
        assert main(["check", "corr", "-m", "gam", "--operational"]) == 0
        out = capsys.readouterr().out
        assert "FORBIDDEN" in out and "abstract machine" in out

    def test_check_operational_reference_machines(self, capsys):
        # sc/tso gained machines with the oracle abstraction; they run
        # through the same engine path as gam/gam0.
        assert main(["check", "dekker", "-m", "sc", "--operational"]) == 0
        out = capsys.readouterr().out
        assert "FORBIDDEN" in out and "abstract machine" in out

    def test_check_operational_rejects_machineless_models(self, capsys):
        assert main(["check", "corr", "-m", "arm", "--operational"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert (
            captured.err
            == "error: --operational supports models: gam, gam0, sc, tso\n"
        )

    def test_check_unknown_test(self, capsys):
        assert main(["check", "not-a-test"]) == 2

    def test_outcomes(self, capsys):
        assert main(["outcomes", "dekker", "-m", "sc"]) == 0
        out = capsys.readouterr().out
        assert "3 outcome(s)" in out


class TestWitnessDiff:
    def test_witness_allowed(self, capsys):
        assert main(["witness", "dekker", "-m", "gam"]) == 0
        out = capsys.readouterr().out
        assert "global memory order" in out

    def test_witness_forbidden(self, capsys):
        assert main(["witness", "oota", "-m", "gam"]) == 1
        assert "no witness" in capsys.readouterr().out

    def test_diff(self, capsys):
        assert main(["diff", "corr", "gam0", "gam"]) == 0
        assert "only gam0" in capsys.readouterr().out


class TestSynthStrength:
    def test_synth_dekker(self, capsys):
        assert main(["synth", "dekker", "-m", "gam"]) == 0
        out = capsys.readouterr().out
        assert "FenceSL" in out and "2 fences" in out

    def test_synth_already_sc(self, capsys):
        assert main(["synth", "mp+fences", "-m", "gam"]) == 0
        assert "no fences needed" in capsys.readouterr().out

    def test_synth_unfixable_budget(self, capsys):
        assert main(["synth", "dekker", "-m", "gam", "--max-fences", "0"]) == 1

    def test_strength_paper(self, capsys):
        assert main(["strength", "--suite", "paper"]) == 0
        out = capsys.readouterr().out
        assert "strength" in out.lower() and "<=" in out


class TestMatrixEquivSim:
    def test_matrix_paper(self, capsys):
        assert main(["matrix", "--suite", "paper"]) == 0
        out = capsys.readouterr().out
        assert "rsw" in out and "all verdicts agree" in out

    def test_equiv_on_named_tests(self, capsys):
        assert main(["equiv", "dekker", "corr", "--pairs", "gam"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 2

    def test_matrix_generated_suite(self, capsys):
        assert main(["matrix", "--suite", "gen:edges=4,size=4"]) == 0
        out = capsys.readouterr().out
        assert "gen:edges=4,size=4 suite" in out
        assert "paper is silent on this suite" in out

    def test_equiv_suite_flag(self, capsys):
        assert main(
            ["equiv", "--suite", "gen:edges=4,size=2", "--pairs", "gam"]
        ) == 0
        assert capsys.readouterr().out.count("ok ") == 2

    def test_sim_small(self, capsys):
        assert main(["sim", "--workloads", "namd", "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "Figure 18" in out and "Table II" in out and "Table III" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestGenImportExport:
    @pytest.fixture(autouse=True)
    def _restore_registry(self):
        """Undo the global registrations ``repro gen`` makes in-process."""
        from repro.litmus import registry

        before = set(registry.test_names())
        yield
        for name in set(registry.test_names()) - before:
            registry.unregister(name)

    def test_gen_summary(self, capsys):
        assert main(["gen", "--edges", "4", "--quiet"]) == 0
        out = capsys.readouterr().out
        count = int(out.split("generated ")[1].split()[0])
        assert count >= 50

    def test_gen_is_idempotent_in_process(self, capsys):
        assert main(["gen", "--edges", "4", "--size", "1", "--quiet"]) == 0
        assert main(["gen", "--edges", "4", "--size", "1", "--quiet"]) == 0
        capsys.readouterr()

    def test_gen_registers_tests_in_process(self, capsys):
        assert main(["gen", "--edges", "4", "--size", "1", "--quiet"]) == 0
        capsys.readouterr()
        from repro.litmus.frontend.gen import generate_suite

        name = generate_suite(4, size=1)[0].name
        assert main(["show", name, "--format", "litmus"]) == 0
        assert f"GAM {name}" in capsys.readouterr().out

    def test_gen_writes_files(self, capsys, tmp_path):
        out_dir = tmp_path / "generated"
        assert main(
            ["gen", "--edges", "4", "--size", "3", "--seed", "1",
             "--quiet", "-o", str(out_dir)]
        ) == 0
        files = sorted(p.name for p in out_dir.glob("*.litmus"))
        assert len(files) == 3

    def test_export_import_round_trip(self, capsys, tmp_path):
        out_dir = tmp_path / "suite"
        assert main(["export", "--suite", "paper", "-o", str(out_dir)]) == 0
        capsys.readouterr()
        files = sorted(str(p) for p in out_dir.glob("*.litmus"))
        assert len(files) == 12
        assert main(["import", *files]) == 0
        out = capsys.readouterr().out
        assert "12 test(s) imported" in out and "imported dekker" in out

    def test_export_stdout(self, capsys):
        assert main(["export", "--suite", "paper"]) == 0
        out = capsys.readouterr().out
        headers = [l for l in out.splitlines() if l.startswith("GAM ")]
        assert len(headers) == 12

    def test_matrix_from_exported_directory(self, capsys, tmp_path):
        out_dir = tmp_path / "suite"
        assert main(["export", "--suite", "paper", "-o", str(out_dir)]) == 0
        capsys.readouterr()
        assert main(["matrix", "--suite", str(out_dir)]) == 0
        assert "all verdicts agree with the paper" in capsys.readouterr().out

    def test_import_parse_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.litmus"
        bad.write_text("GAM broken\n{ a; }\n P0 ;\n Wat ;\n")
        assert main(["import", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 4" in err

    def test_import_duplicate_names(self, capsys, tmp_path):
        from repro.litmus.frontend.printer import print_litmus
        from repro.litmus.registry import get_test

        text = print_litmus(get_test("mp"))
        one = tmp_path / "one.litmus"
        two = tmp_path / "two.litmus"
        one.write_text(text)
        two.write_text(text)
        assert main(["import", str(one), str(two)]) == 2
        assert "collision" in capsys.readouterr().err
