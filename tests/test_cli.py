"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_list_tests(self, capsys):
        assert main(["list", "tests"]) == 0
        out = capsys.readouterr().out
        assert "dekker" in out and "rnsw" in out

    def test_list_models(self, capsys):
        assert main(["list", "models"]) == 0
        out = capsys.readouterr().out
        assert "gam" in out and "alpha_like" in out

    def test_list_workloads(self, capsys):
        assert main(["list", "workloads"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "zeusmp" in out


class TestShowAndCheck:
    def test_show(self, capsys):
        assert main(["show", "dekker"]) == 0
        out = capsys.readouterr().out
        assert "St" in out and "Ld" in out and "asked" in out

    def test_check_allowed(self, capsys):
        assert main(["check", "dekker", "-m", "gam"]) == 0
        assert "ALLOWED" in capsys.readouterr().out

    def test_check_forbidden(self, capsys):
        assert main(["check", "dekker", "-m", "sc"]) == 0
        assert "FORBIDDEN" in capsys.readouterr().out

    def test_check_operational(self, capsys):
        assert main(["check", "corr", "-m", "gam", "--operational"]) == 0
        out = capsys.readouterr().out
        assert "FORBIDDEN" in out and "abstract machine" in out

    def test_check_operational_rejects_other_models(self, capsys):
        assert main(["check", "corr", "-m", "sc", "--operational"]) == 2

    def test_check_unknown_test(self, capsys):
        assert main(["check", "not-a-test"]) == 2

    def test_outcomes(self, capsys):
        assert main(["outcomes", "dekker", "-m", "sc"]) == 0
        out = capsys.readouterr().out
        assert "3 outcome(s)" in out


class TestWitnessDiff:
    def test_witness_allowed(self, capsys):
        assert main(["witness", "dekker", "-m", "gam"]) == 0
        out = capsys.readouterr().out
        assert "global memory order" in out

    def test_witness_forbidden(self, capsys):
        assert main(["witness", "oota", "-m", "gam"]) == 1
        assert "no witness" in capsys.readouterr().out

    def test_diff(self, capsys):
        assert main(["diff", "corr", "gam0", "gam"]) == 0
        assert "only gam0" in capsys.readouterr().out


class TestSynthStrength:
    def test_synth_dekker(self, capsys):
        assert main(["synth", "dekker", "-m", "gam"]) == 0
        out = capsys.readouterr().out
        assert "FenceSL" in out and "2 fences" in out

    def test_synth_already_sc(self, capsys):
        assert main(["synth", "mp+fences", "-m", "gam"]) == 0
        assert "no fences needed" in capsys.readouterr().out

    def test_synth_unfixable_budget(self, capsys):
        assert main(["synth", "dekker", "-m", "gam", "--max-fences", "0"]) == 1

    def test_strength_paper(self, capsys):
        assert main(["strength", "--suite", "paper"]) == 0
        out = capsys.readouterr().out
        assert "strength" in out.lower() and "<=" in out


class TestMatrixEquivSim:
    def test_matrix_paper(self, capsys):
        assert main(["matrix", "--suite", "paper"]) == 0
        out = capsys.readouterr().out
        assert "rsw" in out and "all verdicts agree" in out

    def test_equiv_on_named_tests(self, capsys):
        assert main(["equiv", "dekker", "corr", "--pairs", "gam"]) == 0
        out = capsys.readouterr().out
        assert out.count("ok ") == 2

    def test_sim_small(self, capsys):
        assert main(["sim", "--workloads", "namd", "--length", "800"]) == 0
        out = capsys.readouterr().out
        assert "Figure 18" in out and "Table II" in out and "Table III" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
