"""White-box tests for the event layer and simulator statistics."""

import pytest

from repro.core.axiomatic import enumerate_executions
from repro.core.events import (
    INIT_PROC,
    MemEvent,
    build_events,
    init_events,
)
from repro.isa.expr import Const
from repro.isa.instructions import Load, Store
from repro.isa.program import Program
from repro.litmus.registry import get_test
from repro.models.registry import get_model
from repro.sim.stats import SimStats


def _runs(*programs_and_values):
    runs = []
    for instrs, values in programs_and_values:
        program = Program(instrs)
        runs.append(program.execute(values))
    return tuple(runs)


class TestMemEvent:
    def test_eid_and_repr(self):
        event = MemEvent(proc=1, index=2, is_store=True, addr=0x100, value=7)
        assert event.eid == (1, 2)
        assert "St" in repr(event) and "0x100" in repr(event)

    def test_init_repr(self):
        event = MemEvent(INIT_PROC, 0, True, 0x100, 0, is_init=True)
        assert "Init" in repr(event)


class TestBuildEvents:
    def test_one_event_per_access(self):
        runs = _runs(
            ([Store(Const(0x100), Const(1)), Load("r1", Const(0x100))], {1: 1}),
        )
        events = build_events(runs)
        assert len(events) == 2
        assert events[0].is_store and not events[1].is_store

    def test_init_events_cover_touched_and_declared(self):
        runs = _runs(([Load("r1", Const(0x200))], {0: 0}),)
        events = build_events(runs)
        inits = init_events(events, {0x300: 9})
        addrs = {e.addr for e in inits}
        assert addrs == {0x200, 0x300}
        by_addr = {e.addr: e.value for e in inits}
        assert by_addr[0x300] == 9 and by_addr[0x200] == 0
        assert all(e.is_init and e.proc == INIT_PROC for e in inits)


class TestExecutionAccessors:
    def test_event_lookup_and_positions(self):
        test = get_test("dekker")
        execution = next(iter(enumerate_executions(test, get_model("gam"))))
        for eid in execution.mo:
            event = execution.event(eid)
            assert execution.mo_position(eid) == execution.mo.index(eid)
            assert event.eid == eid
        with pytest.raises(KeyError):
            execution.event((9, 9))

    def test_loads_and_stores_partition(self):
        test = get_test("dekker")
        execution = next(iter(enumerate_executions(test, get_model("gam"))))
        loads = execution.loads()
        stores = execution.stores()
        assert len(loads) == 2 and len(stores) == 2
        assert len(execution.stores(include_init=True)) == 4  # + two inits


class TestSimStats:
    def test_upc(self):
        stats = SimStats(cycles=200, committed_uops=100)
        assert stats.upc == pytest.approx(0.5)

    def test_upc_zero_cycles(self):
        assert SimStats().upc == 0.0

    def test_per_1k(self):
        stats = SimStats(committed_uops=4000, saldld_kills=2)
        assert stats.kills_per_1k == pytest.approx(0.5)

    def test_per_1k_no_commits(self):
        assert SimStats(saldld_kills=5).kills_per_1k == 0.0

    def test_summary_contains_key_rates(self):
        stats = SimStats(
            workload="w", policy="GAM", cycles=10, committed_uops=10,
            saldld_kills=1, saldld_stalls=2, ldld_forwards=3, l1_load_misses=4,
        )
        text = stats.summary()
        assert "w/GAM" in text and "uPC=" in text and "kills/1k" in text
