"""Tests for witness extraction and model diffing (repro.analysis)."""

import pytest

from repro.analysis import diff_models, find_witness, render_diff, render_execution
from repro.litmus.registry import get_test
from repro.models.registry import get_model


class TestWitness:
    def test_allowed_outcome_has_witness(self):
        test = get_test("dekker")
        witness = find_witness(test, get_model("gam"))
        assert witness is not None
        assert test.asked.matches(witness.final_regs, witness.final_mem)

    def test_forbidden_outcome_has_none(self):
        assert find_witness(get_test("dekker"), get_model("sc")) is None
        assert find_witness(get_test("oota"), get_model("gam")) is None

    def test_explicit_outcome(self):
        test = get_test("dekker")
        sc_ok = test.parse_outcome({"P0.r1": 1, "P1.r2": 1})
        assert find_witness(test, get_model("sc"), sc_ok) is not None

    def test_witness_requires_asked(self):
        from repro.litmus.dsl import LitmusBuilder

        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1)
        with pytest.raises(ValueError):
            find_witness(b.build(), get_model("gam"))

    def test_render_contains_mo_and_rf(self):
        test = get_test("dekker")
        witness = find_witness(test, get_model("gam"))
        rendered = render_execution(test, witness)
        assert "global memory order" in rendered
        assert "read-from" in rendered
        assert "init" in rendered
        assert "P0.r1" in rendered

    def test_render_rmw_halves(self):
        test = get_test("rmw-swap")
        outcome = test.parse_outcome({"P0.r1": 0, "P1.r2": 1})
        witness = find_witness(test, get_model("gam"), outcome)
        rendered = render_execution(test, witness)
        assert "load half" in rendered and "store half" in rendered


class TestDiff:
    def test_gam0_minus_gam_is_the_corr_read(self):
        test = get_test("corr")
        weak_only, strong_only = diff_models(
            test, get_model("gam0"), get_model("gam")
        )
        assert strong_only == frozenset()
        assert len(weak_only) == 1
        (outcome,) = weak_only
        bindings = outcome.reg_bindings()
        assert bindings[(1, "r1")] == 1 and bindings[(1, "r2")] == 0

    def test_identical_models_diff_empty(self):
        test = get_test("dekker")
        weak_only, strong_only = diff_models(
            test, get_model("gam"), get_model("gam")
        )
        assert not weak_only and not strong_only

    def test_arm_between_gam0_and_gam_on_rsw(self):
        test = get_test("rsw")
        arm_only, gam_only = diff_models(test, get_model("arm"), get_model("gam"))
        assert gam_only == frozenset()
        assert arm_only  # the RSW behaviour survives under ARM

    def test_render_diff(self):
        rendered = render_diff(
            get_test("corr"), get_model("gam0"), get_model("gam")
        )
        assert "only gam0" in rendered

    def test_render_diff_identical(self):
        rendered = render_diff(
            get_test("oota"), get_model("gam"), get_model("gam")
        )
        assert "identical" in rendered
