"""Every paper verdict, asserted: the executable version of Figs. 2-14.

This is the central conformance suite: for each litmus test in the
catalogue and each model the paper (or its direct implications) gives a
verdict for, the axiomatic engine must agree.
"""

import pytest

from repro.core.axiomatic import is_allowed
from repro.litmus.registry import all_tests
from repro.models.registry import get_model

_CASES = [
    (test.name, model_name, expected)
    for test in all_tests()
    for model_name, expected in sorted(test.expect.items())
]


@pytest.mark.parametrize(
    "test_name,model_name,expected",
    _CASES,
    ids=[f"{t}-{m}" for t, m, _ in _CASES],
)
def test_verdict_matches_paper(test_name, model_name, expected):
    from repro.litmus.registry import get_test

    test = get_test(test_name)
    model = get_model(model_name)
    allowed = is_allowed(test, model)
    verdict = "allows" if expected else "forbids"
    assert allowed == expected, (
        f"paper says {model_name} {verdict} {test_name!r} "
        f"({test.source}), implementation disagrees"
    )


def test_every_test_has_gam_verdict():
    """GAM is the paper's model: every catalogued test must pin it down."""
    for test in all_tests():
        assert "gam" in test.expect, test.name


def test_rsw_rnsw_asymmetry():
    """The paper's Section III-E2 argument in one assertion: ARM treats the
    nearly identical RSW and RNSW tests differently; GAM treats them alike."""
    from repro.litmus.registry import get_test

    arm = get_model("arm")
    gam = get_model("gam")
    rsw, rnsw = get_test("rsw"), get_test("rnsw")
    assert is_allowed(rsw, arm) and not is_allowed(rnsw, arm)
    assert not is_allowed(rsw, gam) and not is_allowed(rnsw, gam)


def test_saldldarm_strictly_weaker_than_saldld():
    """SALdLdARM admits every GAM behaviour (strict-weakness, III-E2)."""
    from repro.core.axiomatic import enumerate_outcomes
    from repro.litmus.registry import get_test

    arm = get_model("arm")
    gam = get_model("gam")
    for name in ("corr", "corr+intervening-store", "rsw", "rnsw", "dekker"):
        test = get_test(name)
        gam_outcomes = enumerate_outcomes(test, gam, project="full")
        arm_outcomes = enumerate_outcomes(test, arm, project="full")
        assert gam_outcomes <= arm_outcomes, name


def test_rnsw_read_pattern_forbidden_by_coherence():
    """The paper's per-location SC claim about RNSW (Section III-E2).

    No coherent execution lets I7 read the initialization of ``c`` while I6
    reads ``St [c] 0`` — I10 is coherence-after the initialization.  The
    claim is about the read-from pattern, so we inspect rf directly under
    the weakest coherent model.
    """
    from repro.core.axiomatic import enumerate_executions
    from repro.core.events import INIT_PROC
    from repro.litmus.registry import get_test

    test = get_test("rnsw")
    plsc = get_model("plsc")
    store_c_index = 2  # P0: St a; FenceSS; St c; FenceSS; St b
    load_i6_index, load_i7_index = 2, 3  # P1: ld, op, ld[c], ld c, op, ld
    seen_pattern = False
    for execution in enumerate_executions(test, plsc):
        rf_i6 = execution.rf.get((1, load_i6_index))
        rf_i7 = execution.rf.get((1, load_i7_index))
        if rf_i6 is None or rf_i7 is None:
            continue
        i6_from_store = rf_i6 == (0, store_c_index)
        i7_from_init = rf_i7[0] == INIT_PROC
        assert not (i6_from_store and i7_from_init)
        seen_pattern = True
    assert seen_pattern  # the enumeration actually exercised the loads
