"""Tests for the batch evaluation engine (repro.engine).

Covers the three tentpole properties: shared candidate prefixes produce
exactly the serial results, the on-disk cache round-trips verdicts
byte-identically, and multi-process fan-out changes nothing but
wall-time.  Worker error reporting (DomainOverflowError with the
offending test's name) is exercised in both serial and pooled modes.
"""

import json

import pytest

from repro.core.axiomatic import (
    CandidatePrefix,
    DomainOverflowError,
    enumerate_outcomes,
    is_allowed,
)
from repro.engine import (
    OutcomeSpec,
    ResultCache,
    VerdictSpec,
    cell_cache_key,
    evaluate_cells,
)
from repro.equivalence.checker import check_suite
from repro.eval.litmus_matrix import litmus_matrix, render_matrix
from repro.eval.strength import render_strength, strength_matrix
from repro.isa.expr import BinOp, Const, Reg
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.registry import get_test
from repro.models.registry import get_model

_ZOO = ("sc", "tso", "gam", "gam0", "arm", "wmm", "alpha_like", "plsc")


def _overflow_test(name="feedback-overflow"):
    """A non-litmus-style program whose value domain exceeds the cap.

    Each load feeds a store of ``3*r + 1``: the abstract domain roughly
    triples per closure round, crossing the 64-value cap well before the
    per-store round bound.
    """
    builder = LitmusBuilder(name, locations=("a",))
    proc = builder.proc()
    for i in range(8):
        reg = f"r{i}"
        proc.ld(reg, "a")
        proc.st("a", BinOp("+", BinOp("*", Reg(reg), Const(3)), Const(1)))
    return builder.build(asked={"P0.r0": 0})


class TestSharedPrefix:
    @pytest.mark.parametrize("test_name", ["dekker", "mp+addr", "corr", "iriw"])
    def test_shared_prefix_matches_fresh_verdicts(self, test_name):
        test = get_test(test_name)
        prefix = CandidatePrefix(test)
        for name in _ZOO:
            model = get_model(name)
            assert is_allowed(test, model, prefix=prefix) == is_allowed(test, model)

    @pytest.mark.parametrize("test_name", ["dekker", "lb"])
    def test_shared_prefix_matches_fresh_outcome_sets(self, test_name):
        test = get_test(test_name)
        prefix = CandidatePrefix(test)
        for name in ("sc", "gam", "alpha_like", "plsc"):
            model = get_model(name)
            shared = enumerate_outcomes(test, model, project="full", prefix=prefix)
            fresh = enumerate_outcomes(test, model, project="full")
            assert shared == fresh

    def test_partial_consumption_then_full_enumeration(self):
        # is_allowed short-circuits; a later full enumeration over the same
        # memoized order stream must still see every execution.
        test = get_test("dekker")
        prefix = CandidatePrefix(test)
        gam = get_model("gam")
        assert is_allowed(test, gam, prefix=prefix)  # consumes a prefix
        shared = enumerate_outcomes(test, gam, project="full", prefix=prefix)
        assert shared == enumerate_outcomes(test, gam, project="full")

    def test_uncovered_extra_values_fall_back(self):
        # A prefix that does not cover the requested extra values must be
        # rebuilt, not silently reused.
        test = get_test("dekker")
        prefix = CandidatePrefix(test)
        assert not prefix.covers({41})
        outcome = test.parse_outcome({"P0.r1": 41})
        gam = get_model("gam")
        assert is_allowed(test, gam, outcome=outcome, prefix=prefix) is False

    def test_engine_cells_match_direct_calls(self):
        tests = [get_test("dekker"), get_test("mp")]
        cells = [VerdictSpec(t, m) for t in tests for m in _ZOO]
        results = evaluate_cells(cells)
        for cell, result in zip(cells, results):
            assert result == is_allowed(cell.test, get_model(cell.model_name))


class TestCache:
    def test_miss_then_hit_round_trips(self, tmp_path):
        cache = str(tmp_path / "cache")
        test = get_test("dekker")
        cells = [
            VerdictSpec(test, "gam"),
            OutcomeSpec(test, "sc", project="full"),
            OutcomeSpec(test, "gam", project="full", oracle="operational:gam"),
        ]
        fresh = evaluate_cells(cells, cache_dir=cache)
        assert len(list((tmp_path / "cache").glob("*.json"))) == 3
        cached = evaluate_cells(cells, cache_dir=cache)
        assert cached == fresh

    def test_cached_matrix_renders_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        tests = [get_test("dekker"), get_test("mp+fences")]
        first = render_matrix(litmus_matrix(tests=tests, cache_dir=cache))
        second = render_matrix(litmus_matrix(tests=tests, cache_dir=cache))
        baseline = render_matrix(litmus_matrix(tests=tests))
        assert first == second == baseline

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        test = get_test("dekker")
        cell = VerdictSpec(test, "gam")
        cache = ResultCache(tmp_path)
        path = tmp_path / f"{cell_cache_key(cell)}.json"
        path.write_text("{ not json")
        assert cache.load(cell) is None
        cache.store(cell, True)
        assert cache.load(cell) is True

    def test_key_ignores_name_but_not_content(self):
        dekker = get_test("dekker")
        assert cell_cache_key(VerdictSpec(dekker, "gam")) != cell_cache_key(
            VerdictSpec(dekker, "sc")
        )
        assert cell_cache_key(VerdictSpec(dekker, "gam")) != cell_cache_key(
            VerdictSpec(get_test("mp"), "gam")
        )

    def test_cache_payload_is_json(self, tmp_path):
        test = get_test("dekker")
        cell = OutcomeSpec(test, "sc", project="full")
        evaluate_cells([cell], cache_dir=str(tmp_path))
        (payload_file,) = tmp_path.glob("*.json")
        payload = json.loads(payload_file.read_text())
        assert payload["kind"] == "outcomes"
        assert payload["outcomes"]  # non-empty, sorted canonical form


class TestErrorReporting:
    def test_domain_overflow_names_test_serially(self):
        with pytest.raises(DomainOverflowError, match="feedback-overflow"):
            evaluate_cells([VerdictSpec(_overflow_test(), "gam")])

    @pytest.mark.slow
    def test_domain_overflow_names_test_from_worker(self):
        cells = [
            VerdictSpec(get_test("dekker"), "gam"),
            VerdictSpec(_overflow_test(), "gam"),
        ]
        with pytest.raises(DomainOverflowError, match="feedback-overflow"):
            evaluate_cells(cells, jobs=2)


class TestOnBatchHook:
    """The streaming hook drivers (campaign, progress) plug into."""

    def test_serial_hook_fires_per_test_in_order(self):
        tests = [get_test("dekker"), get_test("mp"), get_test("corr")]
        cells = [VerdictSpec(t, m) for t in tests for m in ("sc", "gam")]
        seen = []
        results = evaluate_cells(
            cells, on_batch=lambda test, batch: seen.append((test.name, list(batch)))
        )
        assert [name for name, _ in seen] == ["dekker", "mp", "corr"]
        # The streamed batches are exactly the ordered results, chunked.
        flattened = [result for _, batch in seen for result in batch]
        assert flattened == results

    def test_hook_sees_cached_results_too(self, tmp_path):
        cell = VerdictSpec(get_test("dekker"), "gam")
        first = []
        evaluate_cells(
            [cell], cache_dir=str(tmp_path), on_batch=lambda t, b: first.extend(b)
        )
        second = []
        evaluate_cells(
            [cell], cache_dir=str(tmp_path), on_batch=lambda t, b: second.extend(b)
        )
        assert first == second

    @pytest.mark.slow
    def test_pooled_hook_fires_per_test_in_order(self):
        tests = [get_test("dekker"), get_test("mp"), get_test("corr")]
        cells = [VerdictSpec(t, m) for t in tests for m in ("sc", "gam")]
        seen = []
        results = evaluate_cells(
            cells,
            jobs=2,
            on_batch=lambda test, batch: seen.append((test.name, list(batch))),
        )
        assert [name for name, _ in seen] == ["dekker", "mp", "corr"]
        assert [r for _, batch in seen for r in batch] == results


@pytest.mark.slow
class TestParallelParity:
    def test_matrix_jobs2_identical(self):
        tests = [get_test("dekker"), get_test("mp"), get_test("corr")]
        serial = render_matrix(litmus_matrix(tests=tests, jobs=1))
        parallel = render_matrix(litmus_matrix(tests=tests, jobs=2))
        assert serial == parallel

    def test_strength_jobs2_identical(self):
        tests = [get_test("dekker"), get_test("mp")]
        names = ("sc", "gam", "gam0")
        serial = render_strength(strength_matrix(tests=tests, model_names=names))
        parallel = render_strength(
            strength_matrix(tests=tests, model_names=names, jobs=2)
        )
        assert serial == parallel

    def test_equiv_jobs2_identical(self):
        tests = [get_test("dekker"), get_test("corr")]
        serial = check_suite(tests, pair_names=("gam",), jobs=1)
        parallel = check_suite(tests, pair_names=("gam",), jobs=2)
        assert [(r.test_name, r.pair_name, r.axiomatic, r.operational) for r in serial] == [
            (r.test_name, r.pair_name, r.axiomatic, r.operational) for r in parallel
        ]


class TestEngineVersion:
    """The kernel change bumped ENGINE_VERSION: stale entries must miss."""

    def test_version_is_post_kernel(self):
        from repro.engine import cells

        assert cells.ENGINE_VERSION >= 2

    def test_version_changes_cache_key(self, monkeypatch):
        from repro.engine import cells

        cell = VerdictSpec(get_test("dekker"), "gam")
        key_now = cell_cache_key(cell)
        monkeypatch.setattr(cells, "ENGINE_VERSION", 1)
        assert cell_cache_key(cell) != key_now

    def test_pre_kernel_cache_entries_miss(self, tmp_path, monkeypatch):
        """A verdict stored under engine version 1 must never be served."""
        from repro.engine import cells

        cell = VerdictSpec(get_test("dekker"), "gam")
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(cells, "ENGINE_VERSION", 1)
        cache.store(cell, True)
        assert cache.load(cell) is True  # hit while the old version reigns
        monkeypatch.setattr(cells, "ENGINE_VERSION", 2)
        assert cache.load(cell) is None  # post-kernel engine never sees it

    def test_outcome_cells_also_keyed_by_version(self, tmp_path, monkeypatch):
        from repro.engine import cells

        cell = OutcomeSpec(get_test("corr"), "gam", project="full")
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(cells, "ENGINE_VERSION", 1)
        cache.store(cell, frozenset())
        monkeypatch.undo()
        assert cache.load(cell) is None
