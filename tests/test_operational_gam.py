"""Unit tests for the Figure 17 abstract machine (repro.core.operational)."""

import pytest

from repro.core.operational import (
    GAM0_MACHINE,
    GAM_MACHINE,
    MachineVariant,
    explore,
    operational_allows,
    operational_outcomes,
)
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.registry import get_test


class TestVariants:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MachineVariant("bad", same_address_loads="sometimes")

    def test_canonical_variants(self):
        assert GAM_MACHINE.same_address_loads == "saldld"
        assert GAM0_MACHINE.same_address_loads == "none"


class TestFigure17Behaviours:
    def test_dekker_all_four_outcomes(self):
        result = explore(get_test("dekker"), GAM_MACHINE)
        assert len(result.outcomes) == 4
        assert result.terminal_states > 0
        assert result.states_visited >= result.terminal_states

    def test_oota_forbidden(self):
        assert not operational_allows(get_test("oota"), GAM_MACHINE)

    def test_store_forwarding_forced(self):
        # Figure 8: the machine can only produce r2 = 0.
        outcomes = operational_outcomes(get_test("store-forwarding"), GAM_MACHINE)
        assert len(outcomes) == 1
        (outcome,) = outcomes
        assert outcome.reg_bindings()[(0, "r2")] == 0

    def test_load_speculation_repaired(self):
        # Figure 9: speculative load execution must be squashed and redone.
        outcomes = operational_outcomes(get_test("load-speculation"), GAM_MACHINE)
        assert {o.reg_bindings()[(0, "r2")] for o in outcomes} == {1}

    def test_corr_forbidden_by_gam_machine(self):
        assert not operational_allows(get_test("corr"), GAM_MACHINE)

    def test_corr_allowed_by_gam0_machine(self):
        assert operational_allows(get_test("corr"), GAM0_MACHINE)

    def test_mp_addr_dependency_ordering(self):
        assert not operational_allows(get_test("mp+addr"), GAM_MACHINE)
        assert not operational_allows(get_test("mp+addr"), GAM0_MACHINE)

    def test_fences_respected(self):
        assert not operational_allows(get_test("mp+fences"), GAM_MACHINE)

    def test_branch_misprediction_recovers(self):
        # Control dependency does not order loads: both r2 outcomes possible,
        # which requires speculating through the branch and squashing.
        test = get_test("mp+ctrl")
        assert operational_allows(test, GAM_MACHINE)

    def test_brst_enforced(self):
        assert not operational_allows(get_test("lb+ctrls"), GAM_MACHINE)


class TestExploration:
    def test_state_cap_enforced(self):
        with pytest.raises(RuntimeError):
            explore(get_test("dekker"), GAM_MACHINE, max_states=3)

    def test_outcome_without_asked_raises(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1)
        test = b.build()
        with pytest.raises(ValueError):
            operational_allows(test, GAM_MACHINE)

    def test_single_instruction_program(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 7)
        test = b.build(asked={"a": 7})
        assert operational_allows(test, GAM_MACHINE)

    def test_empty_program(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc()
        test = b.build(asked={"a": 0})
        assert operational_allows(test, GAM_MACHINE)

    def test_initial_memory_respected(self):
        b = LitmusBuilder("t", locations=("a",))
        b.init("a", 5)
        b.proc().ld("r1", "a")
        test = b.build(asked={"P0.r1": 5})
        assert operational_allows(test, GAM_MACHINE)

    def test_machine_outcomes_deterministic(self):
        test = get_test("lb")
        first = operational_outcomes(test, GAM_MACHINE)
        second = operational_outcomes(test, GAM_MACHINE)
        assert first == second
