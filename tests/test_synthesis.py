"""Tests for fence synthesis (repro.synthesis)."""

import pytest

from repro.core.axiomatic import enumerate_outcomes, is_allowed
from repro.litmus.registry import get_test
from repro.models.registry import get_model
from repro.synthesis import (
    FencePlacement,
    apply_placements,
    restores_sc,
    synthesize_fences,
)


class TestApplyPlacements:
    def test_insert_one_fence(self):
        test = get_test("mp")
        fenced = apply_placements(test, [FencePlacement(0, 1, "SS")])
        assert len(fenced.programs[0]) == len(test.programs[0]) + 1
        assert fenced.programs[0][1].is_fence

    def test_labels_shift_past_inserted_fences(self):
        test = get_test("mp+ctrl")  # P1 has a branch with an 'end' label
        fenced = apply_placements(test, [FencePlacement(1, 1, "LL")])
        program = fenced.programs[1]
        # The branch target must still point past the last load.
        assert program.labels["end"] == len(program)

    def test_original_test_untouched(self):
        test = get_test("mp")
        before = len(test.programs[0])
        apply_placements(test, [FencePlacement(0, 1, "SS")])
        assert len(test.programs[0]) == before


class TestRestoresSc:
    def test_already_sc_program(self):
        assert restores_sc(get_test("mp+fences"), get_model("gam"))

    def test_weak_program(self):
        assert not restores_sc(get_test("mp"), get_model("gam"))


class TestSynthesis:
    def test_mp_needs_ss_plus_ll(self):
        result = synthesize_fences(get_test("mp"), get_model("gam"))
        assert result is not None
        kinds = sorted(p.kind for p in result.placements)
        assert kinds == ["LL", "SS"]
        procs = sorted(p.proc for p in result.placements)
        assert procs == [0, 1]  # one fence on the writer, one on the reader

    def test_dekker_needs_store_to_load_fences(self):
        result = synthesize_fences(get_test("dekker"), get_model("gam"))
        assert result is not None
        assert all(p.kind == "SL" for p in result.placements)
        assert len(result.placements) == 2

    def test_dekker_unfixable_without_fence_sl(self):
        result = synthesize_fences(
            get_test("dekker"),
            get_model("gam"),
            kinds=("LL", "LS", "SS"),
        )
        assert result is None

    def test_fenced_program_forbids_the_asked_outcome(self):
        test = get_test("mp")
        result = synthesize_fences(test, get_model("gam"))
        assert not is_allowed(result.fenced_test, get_model("gam"))

    def test_already_sc_needs_nothing(self):
        result = synthesize_fences(get_test("mp+fences"), get_model("gam"))
        assert result is not None and result.placements == ()

    def test_deterministic(self):
        a = synthesize_fences(get_test("mp"), get_model("gam"))
        b = synthesize_fences(get_test("mp"), get_model("gam"))
        assert a.placements == b.placements

    def test_wmm_mp_needs_fewer_or_equal_fences_than_gam(self):
        # WMM is stronger on load-store ordering, never weaker on MP.
        gam_result = synthesize_fences(get_test("mp"), get_model("gam"))
        wmm_result = synthesize_fences(get_test("mp"), get_model("wmm"))
        assert len(wmm_result.placements) <= len(gam_result.placements)

    def test_synthesized_outcomes_equal_sc(self):
        test = get_test("lb")
        result = synthesize_fences(test, get_model("gam"))
        assert result is not None
        weak = enumerate_outcomes(result.fenced_test, get_model("gam"), project="full")
        strong = enumerate_outcomes(result.fenced_test, get_model("sc"), project="full")
        assert weak == strong
