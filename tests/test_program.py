"""Unit tests for programs and deterministic replay (repro.isa.program)."""

import pytest

from repro.isa.expr import BinOp, Const, Reg
from repro.isa.instructions import Branch, Fence, Load, Nop, RegOp, Store
from repro.isa.program import Program, ProgramError


def _mp_reader():
    """P1 of MP+addr: r1 = Ld [b]; r2 = Ld [r1]."""
    return Program([Load("r1", Const(0x200)), Load("r2", Reg("r1"))])


class TestValidation:
    def test_empty_program_is_valid(self):
        assert len(Program([])) == 0

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            Program([Nop()], labels={"end": 5})

    def test_label_at_end_allowed(self):
        Program([Nop()], labels={"end": 1})

    def test_undefined_branch_target_rejected(self):
        with pytest.raises(ProgramError):
            Program([Branch(Const(1), "nowhere"), Nop()])

    def test_backward_branch_rejected(self):
        with pytest.raises(ProgramError):
            Program(
                [Nop(), Branch(Const(1), "loop")],
                labels={"loop": 0},
            )

    def test_forward_branch_accepted(self):
        program = Program(
            [Branch(Const(1), "end"), Nop()],
            labels={"end": 2},
        )
        assert program.has_branches()


class TestAccessors:
    def test_load_store_indices(self):
        program = Program(
            [Store(Const(0), Const(1)), Load("r1", Const(0)), Store(Const(4), Const(2))]
        )
        assert program.load_indices() == (1,)
        assert program.store_indices() == (0, 2)

    def test_registers_union(self):
        program = Program([Load("r1", Reg("r0")), RegOp("r2", Reg("r1"))])
        assert program.registers() == frozenset({"r0", "r1", "r2"})

    def test_iteration_and_indexing(self):
        program = _mp_reader()
        assert list(program)[0] == program[0]

    def test_repr_contains_instructions(self):
        assert "Ld" in repr(_mp_reader())


class TestReplay:
    def test_straightline_replay(self):
        run = _mp_reader().execute({0: 0x100, 1: 7})
        assert run.final_regs["r1"] == 0x100
        assert run.final_regs["r2"] == 7
        loads = run.loads()
        assert loads[0].addr == 0x200
        assert loads[1].addr == 0x100  # the dependent address

    def test_unassigned_load_raises(self):
        with pytest.raises(KeyError):
            _mp_reader().execute({0: 0x100})

    def test_registers_default_to_zero(self):
        program = Program([Store(Const(0), Reg("r1"))])
        run = program.execute({})
        assert run.stores()[0].value == 0

    def test_initial_regs_respected(self):
        program = Program([Store(Const(0), Reg("r1"))])
        run = program.execute({}, initial_regs={"r1": 9})
        assert run.stores()[0].value == 9

    def test_regop_updates_register(self):
        program = Program(
            [RegOp("r1", Const(5)), RegOp("r2", Reg("r1") + 1)]
        )
        run = program.execute({})
        assert run.final_regs["r2"] == 6

    def test_taken_branch_skips_instructions(self):
        program = Program(
            [
                Branch(Const(1), "end"),
                Store(Const(0), Const(1)),
                Nop(),
            ],
            labels={"end": 2},
        )
        run = program.execute({})
        assert run.stores() == ()
        assert run.executed[0].taken is True
        assert [e.index for e in run.executed] == [0, 2]

    def test_not_taken_branch_falls_through(self):
        program = Program(
            [Branch(Const(0), "end"), Store(Const(0), Const(1))],
            labels={"end": 2},
        )
        run = program.execute({})
        assert len(run.stores()) == 1
        assert run.executed[0].taken is False

    def test_branch_condition_from_load(self):
        program = Program(
            [
                Load("r1", Const(0x100)),
                Branch(BinOp("==", Reg("r1"), Const(0)), "end"),
                Store(Const(0x200), Const(1)),
            ],
            labels={"end": 3},
        )
        taken = program.execute({0: 0})
        fallthrough = program.execute({0: 1})
        assert taken.stores() == ()
        assert len(fallthrough.stores()) == 1

    def test_fence_and_nop_appear_in_stream(self):
        program = Program([Fence("S", "S"), Nop()])
        run = program.execute({})
        assert len(run.executed) == 2

    def test_memory_accesses_ordering(self):
        program = Program(
            [Store(Const(0), Const(1)), Nop(), Load("r1", Const(0))]
        )
        run = program.execute({2: 1})
        accesses = run.memory_accesses()
        assert [e.index for e in accesses] == [0, 2]
