"""The declarative model-spec API: .model format, registry, resolution.

Covers the PR-5 redesign end to end:

* parse∘print byte-stability across the full zoo, and parser error paths
  carrying line numbers;
* the mutable ``ModelRegistry`` (collisions, aliases, unregistration);
* ``resolve_model``/``resolve_models`` over every spec form (names,
  files, directories, ``ctor:``, ``space:``);
* engine-cache behaviour: an edited ``.model`` file changes the cache
  key, a renamed-but-identical one still hits;
* ``hunt --pair space:...`` — differential hunts over an enumerated
  family, with content digests refusing stale resumes.
"""

import pytest

from repro.core.axiomatic import MemoryModel
from repro.core.construction import CTOR_KNOBS, assemble
from repro.core.ppo import build_clause, clause_spec
from repro.engine import (
    ResultCache,
    VerdictSpec,
    cell_cache_key,
    evaluate_cells,
)
from repro.engine.cells import model_descriptor
from repro.litmus.registry import get_test
from repro.models import (
    ModelRegistry,
    ModelSpecError,
    get_model,
    load_model_path,
    model_names,
    parse_model,
    parse_model_file,
    print_model,
    resolve_model,
    resolve_models,
    split_pair_spec,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", list(model_names()))
    def test_zoo_round_trips_byte_stably(self, name):
        model = get_model(name)
        text = print_model(model)
        assert print_model(parse_model(text)) == text

    @pytest.mark.parametrize("name", list(model_names()))
    def test_round_trip_preserves_content(self, name):
        model = get_model(name)
        reparsed = parse_model(print_model(model))
        assert reparsed.name == model.name
        assert reparsed.clause_names() == model.clause_names()
        assert reparsed.load_value == model.load_value
        assert reparsed.requires_coherence == model.requires_coherence
        assert reparsed.description == model.description
        assert model_descriptor(reparsed) == model_descriptor(model)

    def test_to_spec_from_spec_on_memory_model(self):
        gam = get_model("gam")
        text = gam.to_spec()
        assert text.startswith("model gam\n")
        assert MemoryModel.from_spec(text).to_spec() == text

    def test_description_escaping_round_trips(self):
        model = assemble("esc", description='say "hi" \\ bye')
        reparsed = parse_model(print_model(model))
        assert reparsed.description == 'say "hi" \\ bye'
        assert print_model(reparsed) == print_model(model)

    def test_hash_in_description_round_trips(self):
        model = assemble("hashy", description="issue #5 regression")
        text = print_model(model)
        reparsed = parse_model(text)
        assert reparsed.description == "issue #5 regression"
        assert print_model(reparsed) == text

    def test_unprintable_models_are_rejected(self):
        with pytest.raises(ModelSpecError, match="multi-line description"):
            print_model(assemble("m", description="two\nlines"))
        with pytest.raises(ModelSpecError, match="whitespace-free"):
            print_model(assemble("two words"))

    def test_comments_and_blank_lines_are_ignored(self):
        text = print_model(get_model("tso"))
        noisy = "# leading comment\n\n" + text.replace(
            "loadvalue gam", "loadvalue gam  # forwarding"
        )
        assert print_model(parse_model(noisy)) == text


class TestParserErrors:
    def _error(self, text):
        with pytest.raises(ModelSpecError) as excinfo:
            parse_model(text)
        return str(excinfo.value)

    def test_missing_model_header(self):
        message = self._error("loadvalue gam\n")
        assert "line 1" in message and "model <name>" in message

    def test_unknown_directive_with_line(self):
        message = self._error("model m\nppo SAMemSt\nfrobnicate x\n")
        assert "line 3" in message and "frobnicate" in message

    def test_unknown_clause_lists_vocabulary(self):
        message = self._error("model m\nppo NotAClause\n")
        assert "line 2" in message and "SAMemSt" in message

    def test_bad_pairwise_args(self):
        message = self._error("model m\nppo PairwiseOrder(L)\n")
        assert "line 2" in message and "two access kinds" in message

    def test_dynamic_clause_on_ppo_line(self):
        message = self._error("model m\nppo SALdLdARM\n")
        assert "line 2" in message and "dynamic" in message

    def test_static_clause_on_dynamic_line(self):
        message = self._error("model m\ndynamic SAMemSt\n")
        assert "line 2" in message and "ppo" in message

    def test_duplicate_scalar_directive(self):
        message = self._error("model m\nloadvalue gam\nloadvalue sc\n")
        assert "line 3" in message and "duplicate" in message

    def test_duplicate_clause(self):
        message = self._error("model m\nppo SAMemSt\nppo SAMemSt\n")
        assert "line 3" in message and "duplicate" in message

    def test_bad_loadvalue(self):
        message = self._error("model m\nloadvalue tso\n")
        assert "line 2" in message and "gam, sc" in message

    def test_model_invariant_reported_on_model_line(self):
        # A model without SAMemSt/OrderSS violates the engine invariant.
        message = self._error("model weird\nppo FenceOrd\n")
        assert "line 1" in message and "same-address stores" in message

    def test_empty_input(self):
        assert "empty model definition" in self._error("# nothing here\n")

    def test_file_errors_carry_the_path(self, tmp_path):
        bad = tmp_path / "bad.model"
        bad.write_text("model m\nppo Nope\n", encoding="utf-8")
        with pytest.raises(ModelSpecError) as excinfo:
            parse_model_file(bad)
        assert str(bad) in str(excinfo.value)
        assert "line 2" in str(excinfo.value)


class TestClauseCatalog:
    def test_build_clause_round_trips_spec(self):
        for spec in ("SAMemSt", "FenceOrd", "SALdLdARM"):
            assert clause_spec(build_clause(spec)) == spec
        pairwise = build_clause("PairwiseOrder", ("S", "L"))
        assert clause_spec(pairwise) == "PairwiseOrder(S,L)"
        assert pairwise.name == "OrderSL"

    def test_build_clause_rejects_args_on_plain_clauses(self):
        with pytest.raises(ValueError, match="takes no arguments"):
            build_clause("SAMemSt", ("L",))


class TestModelRegistry:
    def _registry(self):
        registry = ModelRegistry()
        registry.register(get_model("gam"))
        registry.register(get_model("gam0"), aliases=("rmo",))
        return registry

    def test_collision_raises(self):
        registry = self._registry()
        with pytest.raises(ValueError, match="collision"):
            registry.register(get_model("gam"))
        registry.register(get_model("gam"), replace=True)  # explicit wins

    def test_alias_resolves_and_annotates_errors(self):
        registry = self._registry()
        assert registry.get("rmo").name == "gam0"
        assert registry.canonical_name("rmo") == "gam0"
        with pytest.raises(KeyError) as excinfo:
            registry.get("nope")
        message = str(excinfo.value)
        assert "rmo (= gam0)" in message
        # sorted listing
        assert message.index("gam") < message.index("rmo")

    def test_alias_collision_raises(self):
        registry = self._registry()
        with pytest.raises(ValueError, match="collision"):
            registry.alias("rmo", "gam")

    def test_unregister_alias_keeps_target(self):
        registry = self._registry()
        registry.unregister("rmo")
        assert "rmo" not in registry
        assert registry.get("gam0").name == "gam0"

    def test_unregister_canonical_drops_aliases(self):
        registry = self._registry()
        registry.unregister("gam0")
        assert "rmo" not in registry and "gam0" not in registry
        assert registry.names() == ("gam",)

    def test_names_vs_all_names(self):
        registry = self._registry()
        assert registry.names() == ("gam", "gam0")
        assert registry.all_names() == ("gam", "gam0", "rmo")
        assert registry.aliases() == {"rmo": "gam0"}

    def test_register_factory_and_empty_name(self):
        registry = ModelRegistry()
        assert registry.register(lambda: get_model("sc")) == "sc"
        with pytest.raises(TypeError):
            registry.register(lambda: "not a model")

    def test_replace_over_alias_does_not_duplicate_listing(self):
        registry = self._registry()
        registry.register(get_model("tso"), name="rmo", replace=True)
        assert registry.all_names() == ("gam", "gam0", "rmo")
        assert registry.names() == ("gam", "gam0", "rmo")
        assert registry.get("rmo").name == "tso"


class TestResolve:
    def test_registry_names_and_aliases(self):
        assert resolve_model("gam").name == "gam"
        assert resolve_model("rmo").name == "gam0"

    def test_built_model_passes_through(self):
        gam = get_model("gam")
        assert resolve_models(gam) == [gam]

    def test_file_and_directory(self, tmp_path):
        (tmp_path / "a.model").write_text(
            print_model(get_model("gam")), encoding="utf-8"
        )
        (tmp_path / "b.model").write_text(
            print_model(get_model("tso")), encoding="utf-8"
        )
        assert resolve_model(str(tmp_path / "a.model")).name == "gam"
        family = resolve_models(str(tmp_path))
        assert [model.name for model in family] == ["gam", "tso"]
        with pytest.raises(ModelSpecError, match="family of 2"):
            resolve_model(str(tmp_path))

    def test_directory_duplicate_names_raise(self, tmp_path):
        (tmp_path / "a.model").write_text(
            print_model(get_model("gam")), encoding="utf-8"
        )
        (tmp_path / "b.model").write_text(
            print_model(get_model("gam")), encoding="utf-8"
        )
        with pytest.raises(ModelSpecError, match="duplicate model name"):
            load_model_path(str(tmp_path))

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(ModelSpecError, match="no .model files"):
            resolve_models(str(tmp_path))

    def test_ctor_defaults_equal_gam0(self):
        model = resolve_model("ctor:")
        assert model.name == "ctor()"
        assert model.clause_names() == get_model("gam0").clause_names()
        assert model_descriptor(model) == model_descriptor("gam0")

    def test_bare_ctor_and_space_are_unknown_names(self):
        # a truncated "ctor:..." spec must error, not silently resolve to
        # the all-defaults construction
        for bare in ("ctor", "space"):
            with pytest.raises(KeyError, match="unknown model"):
                resolve_model(bare)

    def test_ctor_knobs_and_name_override(self):
        model = resolve_model("ctor:same_address_loads=saldld,name=mygam")
        assert model.name == "mygam"
        assert model.clause_names() == get_model("gam").clause_names()

    def test_ctor_bad_knob_and_value(self):
        with pytest.raises(ModelSpecError, match="unknown construction knob"):
            resolve_model("ctor:frobnicate=1")
        with pytest.raises(ModelSpecError, match="bad value"):
            resolve_model("ctor:same_address_loads=maybe")

    def test_space_enumerates_declared_order(self):
        family = resolve_models("space:same_address_loads=*")
        assert [model.name for model in family] == [
            "ctor(same_address_loads=none)",
            "ctor(same_address_loads=saldld)",
            "ctor(same_address_loads=arm)",
        ]

    def test_space_pins_and_stars_combine(self):
        family = resolve_models(
            "space:dependency_ordering=0,same_address_loads=*"
        )
        assert len(family) == len(CTOR_KNOBS["same_address_loads"])
        assert all("dependency_ordering=0" in model.name for model in family)

    def test_space_without_star_raises(self):
        with pytest.raises(ModelSpecError, match="enumerates nothing"):
            resolve_models("space:same_address_loads=arm")

    def test_space_is_single_model_error_for_resolve_model(self):
        with pytest.raises(ModelSpecError, match="family of 3"):
            resolve_model("space:same_address_loads=*")

    def test_registry_name_wins_over_a_path(self, tmp_path, monkeypatch):
        # a stray directory called "gam" in the cwd must not shadow the zoo
        (tmp_path / "gam").mkdir()
        monkeypatch.chdir(tmp_path)
        assert resolve_model("gam").clause_names() == get_model(
            "gam"
        ).clause_names()

    def test_unknown_name_mentions_spec_forms(self):
        with pytest.raises(KeyError) as excinfo:
            resolve_model("not-a-model")
        message = str(excinfo.value)
        assert "ctor:" in message and "space:" in message and ".model" in message


class TestPairSpecs:
    def test_plain_pair(self):
        assert split_pair_spec("wmm:arm") == ("wmm", "arm")

    def test_space_side_consumes_its_colon(self):
        assert split_pair_spec("space:same_address_loads=*:gam") == (
            "space:same_address_loads=*",
            "gam",
        )
        assert split_pair_spec("gam:space:same_address_loads=*") == (
            "gam",
            "space:same_address_loads=*",
        )

    def test_ctor_both_sides(self):
        assert split_pair_spec(
            "ctor:dependency_ordering=0:ctor:same_address_loads=arm"
        ) == ("ctor:dependency_ordering=0", "ctor:same_address_loads=arm")

    def test_bad_shapes(self):
        for bad in ("gam", "gam:", ":gam", "a:b:c", "gam:gam"):
            with pytest.raises(ValueError):
                split_pair_spec(bad)


class TestEngineCacheKeys:
    def _write(self, path, model):
        path.write_text(print_model(model), encoding="utf-8")

    def test_file_spec_key_matches_registry_content(self, tmp_path):
        test = get_test("dekker")
        path = tmp_path / "mine.model"
        self._write(path, get_model("gam"))
        assert cell_cache_key(VerdictSpec(test, str(path))) == cell_cache_key(
            VerdictSpec(test, "gam")
        )

    def test_editing_file_content_changes_the_key(self, tmp_path):
        test = get_test("dekker")
        path = tmp_path / "mine.model"
        self._write(path, get_model("gam"))
        before = cell_cache_key(VerdictSpec(test, str(path)))
        # drop the SALdLd clause: same name, different content
        text = path.read_text(encoding="utf-8").replace("ppo SALdLd\n", "")
        path.write_text(text, encoding="utf-8")
        assert cell_cache_key(VerdictSpec(test, str(path))) != before

    def test_renaming_the_model_keeps_the_key(self, tmp_path):
        test = get_test("dekker")
        path = tmp_path / "mine.model"
        self._write(path, get_model("gam"))
        before = cell_cache_key(VerdictSpec(test, str(path)))
        text = path.read_text(encoding="utf-8").replace(
            "model gam", "model renamed"
        )
        path.write_text(text, encoding="utf-8")
        assert cell_cache_key(VerdictSpec(test, str(path))) == before

    def test_cache_hits_across_rename_and_misses_across_edit(self, tmp_path):
        test = get_test("dekker")
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "mine.model"
        self._write(path, get_model("gam"))
        cell = VerdictSpec(test, str(path))
        (result,) = evaluate_cells([cell], cache_dir=str(tmp_path / "cache"))
        assert cache.load(cell) == result
        # rename: identical content -> hit
        path.write_text(
            path.read_text(encoding="utf-8").replace("model gam", "model other"),
            encoding="utf-8",
        )
        assert cache.load(cell) == result
        # edit: different content -> miss
        path.write_text(
            path.read_text(encoding="utf-8").replace("ppo SALdLd\n", ""),
            encoding="utf-8",
        )
        assert cache.load(cell) is None

    def test_built_model_cells_evaluate_and_key_by_content(self):
        test = get_test("corr")
        member = resolve_model("ctor:same_address_loads=saldld")
        assert cell_cache_key(VerdictSpec(test, member)) == cell_cache_key(
            VerdictSpec(test, "gam")
        )
        (allowed,) = evaluate_cells([VerdictSpec(test, member)])
        assert allowed is False  # SALdLd restores per-location SC


class TestMatrixWithSpecs:
    def test_litmus_matrix_accepts_model_objects_and_paths(self, tmp_path):
        from repro.eval.litmus_matrix import litmus_matrix, render_matrix

        path = tmp_path / "mine.model"
        path.write_text(print_model(get_model("gam")), encoding="utf-8")
        test = get_test("corr")
        cells = litmus_matrix(
            tests=[test],
            model_names=["gam0", str(path), resolve_model("ctor:")],
        )
        by_model = {cell.model_name: cell.allowed for cell in cells}
        assert by_model["gam0"] is True
        assert by_model[str(path)] is False  # the file holds gam
        assert by_model["ctor()"] is True
        render_matrix(cells)  # non-zoo columns render fine

    def test_strength_matrix_accepts_model_objects(self):
        from repro.eval.strength import strength_matrix

        members = resolve_models("space:same_address_loads=*")
        matrix = strength_matrix(
            tests=[get_test("corr"), get_test("rsw")],
            model_names=[*members, "gam"],
        )
        assert matrix.is_stronger_or_equal("gam", "ctor(same_address_loads=none)")

    def test_strength_matrix_rejects_duplicate_display_names(self):
        from repro.eval.strength import strength_matrix

        with pytest.raises(ValueError, match="duplicate"):
            strength_matrix(tests=[get_test("corr")], model_names=["gam", "gam"])


@pytest.mark.slow
class TestParallelSpecCells:
    def test_file_specs_cross_the_pool(self, tmp_path):
        path = tmp_path / "mine.model"
        path.write_text(print_model(get_model("gam")), encoding="utf-8")
        tests = [get_test("dekker"), get_test("corr")]
        cells = [VerdictSpec(test, spec) for test in tests for spec in
                 (str(path), resolve_model("ctor:"))]
        assert evaluate_cells(cells, jobs=2) == evaluate_cells(cells, jobs=1)


class TestHuntSpace:
    def test_space_pair_hunt_completes(self, tmp_path):
        from repro.campaign import run_hunt

        report = run_hunt(
            out=str(tmp_path / "hunt"),
            suite="gen:edges=3",
            pairs=[("space:same_address_loads=*", "gam")],
            num_shards=2,
        )
        pairs = {disc.pair for disc in report.discrepancies}
        # the none-member loses per-location SC and splits from gam
        assert ("ctor(same_address_loads=none)", "gam") in pairs
        assert report.witnesses  # minimized, re-verified .litmus files exist
        # identical re-run resumes to a byte-identical report
        again = run_hunt(out=str(tmp_path / "hunt"), resume=True)
        assert again.text == report.text

    def test_member_content_change_refuses_resume(self, tmp_path):
        from repro.campaign import run_hunt
        from repro.campaign.state import CampaignError

        family = tmp_path / "family"
        family.mkdir()
        (family / "a.model").write_text(
            print_model(get_model("wmm")), encoding="utf-8"
        )
        run_hunt(
            out=str(tmp_path / "hunt"),
            suite="paper",
            pairs=[(str(family), "arm")],
            num_shards=1,
        )
        # editing a member's content changes the campaign digest
        text = (family / "a.model").read_text(encoding="utf-8")
        assert "ppo PairwiseOrder(L,S)\n" in text
        (family / "a.model").write_text(
            text.replace("ppo PairwiseOrder(L,S)\n", ""), encoding="utf-8"
        )
        with pytest.raises(CampaignError, match="different spec"):
            run_hunt(out=str(tmp_path / "hunt"), resume=True)

    def test_name_collision_across_specs_raises(self, tmp_path):
        from repro.campaign.state import CampaignError, expand_pair_specs

        family = tmp_path / "family"
        family.mkdir()
        renamed = print_model(get_model("wmm")).replace("model wmm", "model gam2")
        (family / "a.model").write_text(renamed, encoding="utf-8")
        other = tmp_path / "other"
        other.mkdir()
        renamed_tso = print_model(get_model("tso")).replace(
            "model tso", "model gam2"
        )
        (other / "b.model").write_text(renamed_tso, encoding="utf-8")
        with pytest.raises(CampaignError, match="collides"):
            expand_pair_specs([(str(family), "gam"), (str(other), "gam")])

    def test_registry_name_collides_with_earlier_file_member(self, tmp_path):
        # a file member named like a registry model must not be conflated
        # with a later registry-name pair side (order-independent guard)
        from repro.campaign.state import CampaignError, expand_pair_specs

        family = tmp_path / "family"
        family.mkdir()
        renamed = print_model(get_model("tso")).replace("model tso", "model gam")
        (family / "a.model").write_text(renamed, encoding="utf-8")
        with pytest.raises(CampaignError, match="collides"):
            expand_pair_specs([(str(family), "wmm"), ("gam", "arm")])
        with pytest.raises(CampaignError, match="collides"):
            expand_pair_specs([("gam", "arm"), (str(family), "wmm")])


class TestCliModelSpecs:
    def test_list_models_marks_aliases_once(self, capsys):
        from repro.cli import main

        assert main(["list", "models"]) == 0
        out = capsys.readouterr().out
        assert "rmo          -> gam0" in out
        # gam0's description appears exactly once (no duplicate row)
        assert out.count("corrected RMO") == 1

    def test_model_show_and_family(self, capsys):
        from repro.cli import main

        assert main(["model", "show", "gam"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("model gam\n")
        assert main(["model", "show", "space:same_address_loads=*"]) == 0
        out = capsys.readouterr().out
        assert "family of 3 models" in out

    def test_model_export_import_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "models"
        assert main(["model", "export", "-o", str(out_dir)]) == 0
        capsys.readouterr()
        files = sorted(out_dir.glob("*.model"))
        assert len(files) == 9  # canonical zoo, aliases not duplicated
        assert main(["model", "import", str(out_dir)]) == 0
        assert "9 model(s) imported" in capsys.readouterr().out

    def test_model_import_duplicate_within_import_fails(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.model"
        path.write_text(print_model(get_model("gam")), encoding="utf-8")
        assert main(["model", "import", str(path), str(path)]) == 2
        assert "duplicate model name" in capsys.readouterr().err

    def test_check_with_model_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["check", "lb+addrpo-st", "-m", "examples/no_addrst.model"]
        ) == 0
        assert "ALLOWED" in capsys.readouterr().out

    def test_check_operational_accepts_alias(self, capsys):
        from repro.cli import main

        assert main(["check", "corr", "-m", "rmo", "--operational"]) == 0
        assert "abstract machine" in capsys.readouterr().out

    def test_diff_with_ctor_spec(self, capsys):
        from repro.cli import main

        assert main(["diff", "corr", "ctor:", "gam"]) == 0
        assert "only ctor()" in capsys.readouterr().out

    def test_bad_model_spec_reports_cleanly(self, capsys):
        from repro.cli import main

        assert main(["check", "dekker", "-m", "ctor:bogus=1"]) == 2
        assert "unknown construction knob" in capsys.readouterr().err

    def test_unknown_model_lists_aliases(self, capsys):
        from repro.cli import main

        assert main(["check", "dekker", "-m", "nope"]) == 2
        assert "rmo (= gam0)" in capsys.readouterr().err
