"""Chaos suite for the fault-tolerance layer (see ``docs/robustness.md``).

Every recovery path the engine and campaign stack advertise is driven
here by *planned* faults (:mod:`repro.engine.faults`): exceptions raised
mid-batch, workers SIGKILLed under the pool, batches hung past their
deadline, cache entries corrupted after the store.  The assertions pin
the contract: failures cost exactly the faulted test, quarantine records
say why and how many attempts were spent, recovered runs are
byte-identical to fault-free ones, and the default policy reproduces
historical raising behaviour.
"""

import json

import pytest

from repro.engine import (
    FAULT_KINDS,
    CellFailure,
    EngineWorkerError,
    ExecutionPolicy,
    FaultAction,
    FaultPlan,
    InjectedFault,
    OutcomeSpec,
    ResultCache,
    VerdictSpec,
    evaluate_cells,
    fault_plan_from_env,
    parse_fault_plan,
)
from repro.engine.faults import FAULTS_ENV_VAR
from repro.litmus.registry import get_test
from repro.obs import collecting

QUIET = ExecutionPolicy(backoff=0.0, on_error="skip")
QUARANTINE = ExecutionPolicy(backoff=0.0, on_error="quarantine")


def _verdict_cells(*names):
    tests = [get_test(name) for name in names]
    return [VerdictSpec(test, model) for test in tests for model in ("sc", "gam")]


class TestExecutionPolicy:
    def test_default_policy_is_seed_behaviour(self):
        policy = ExecutionPolicy()
        assert policy.raises
        assert not policy.needs_pool
        assert policy.retries == 0

    def test_deadline_requires_pool(self):
        assert ExecutionPolicy(timeout=5.0).needs_pool

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"on_error": "explode"},
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"retries": -1},
            {"backoff": -0.5},
        ],
    )
    def test_validation_is_eager(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionPolicy(**kwargs)

    def test_policy_is_picklable(self):
        import pickle

        policy = ExecutionPolicy(timeout=2.0, retries=3, on_error="quarantine")
        assert pickle.loads(pickle.dumps(policy)) == policy

    def test_cell_failure_describe(self):
        failure = CellFailure("mp", "timeout", "deadline", attempts=2)
        assert failure.describe() == "mp: timeout after 2 attempts — deadline"


class TestFaultPlanParsing:
    def test_round_trip_describe(self):
        spec = "crash:test=lb,attempts=1;hang:batch=0,seconds=12;raise"
        plan = parse_fault_plan(spec)
        assert plan.describe() == spec
        assert parse_fault_plan(plan.describe()) == plan

    def test_selectors_scope_matches(self):
        action = FaultAction(kind="raise", test="mp", attempts=2)
        assert action.matches(0, "mp", 1)
        assert action.matches(5, "mp", 2)
        assert not action.matches(0, "mp", 3)  # recovers on attempt 3
        assert not action.matches(0, "lb", 1)

    def test_empty_spec_is_empty_plan(self):
        assert not parse_fault_plan("")
        assert not parse_fault_plan(" ; ")

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:test=mp",        # unknown kind
            "raise:test",             # not key=value
            "raise:color=red",        # unknown selector
            "raise:test=a,test=b",    # duplicate selector
            "hang:seconds=0",         # out-of-range value
            "raise:batch=-1",
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_fault_plan(spec)

    def test_env_arming(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert not fault_plan_from_env()
        monkeypatch.setenv(FAULTS_ENV_VAR, "raise:test=mp")
        assert fault_plan_from_env() == parse_fault_plan("raise:test=mp")

    def test_every_kind_is_documented(self):
        for kind in ("raise", "hang", "crash", "corrupt"):
            assert kind in FAULT_KINDS


class TestSerialFailures:
    def test_default_policy_raises_with_cause(self):
        plan = parse_fault_plan("raise:test=mp")
        with pytest.raises(EngineWorkerError, match="mp") as excinfo:
            evaluate_cells(_verdict_cells("mp"), fault_plan=plan)
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_skip_costs_only_the_faulted_test(self):
        cells = _verdict_cells("mp", "lb", "corr")
        baseline = evaluate_cells(cells)
        plan = parse_fault_plan("raise:test=lb")
        results = evaluate_cells(cells, policy=QUIET, fault_plan=plan)
        for cell, got, want in zip(cells, results, baseline):
            if cell.test.name == "lb":
                assert isinstance(got, CellFailure)
                assert got.reason == "error"
                assert got.attempts == 1
                assert "InjectedFault" in got.message
            else:
                assert got == want

    def test_quarantine_counts_batches(self):
        plan = parse_fault_plan("raise:test=mp")
        with collecting() as recorder:
            results = evaluate_cells(
                _verdict_cells("mp"), policy=QUARANTINE, fault_plan=plan
            )
            counters = recorder.snapshot().counters
        assert all(isinstance(r, CellFailure) for r in results)
        assert counters["engine.batches.quarantined"] == 1

    def test_skip_mode_does_not_count_quarantine(self):
        plan = parse_fault_plan("raise:test=mp")
        with collecting() as recorder:
            evaluate_cells(_verdict_cells("mp"), policy=QUIET, fault_plan=plan)
            counters = recorder.snapshot().counters
        assert "engine.batches.quarantined" not in counters

    def test_retry_recovers_and_is_counted(self):
        cells = _verdict_cells("mp")
        baseline = evaluate_cells(cells)
        plan = parse_fault_plan("raise:test=mp,attempts=1")
        policy = ExecutionPolicy(retries=1, backoff=0.0, on_error="fail")
        with collecting() as recorder:
            results = evaluate_cells(cells, policy=policy, fault_plan=plan)
            counters = recorder.snapshot().counters
        assert results == baseline
        assert counters["engine.retries"] == 1

    def test_retry_budget_is_bounded(self):
        plan = parse_fault_plan("raise:test=mp")  # fires on every attempt
        policy = ExecutionPolicy(retries=2, backoff=0.0, on_error="skip")
        [failure, _] = evaluate_cells(
            _verdict_cells("mp"), policy=policy, fault_plan=plan
        )
        assert failure.attempts == 3  # 1 initial + 2 retries

    def test_in_process_crash_degrades_to_exception(self):
        # A crash fault must never SIGKILL the caller's own interpreter.
        plan = parse_fault_plan("crash:test=mp")
        [failure, _] = evaluate_cells(
            _verdict_cells("mp"), policy=QUIET, fault_plan=plan
        )
        assert failure.reason == "error"
        assert "degraded from SIGKILL" in failure.message

    def test_on_batch_sees_failures(self):
        plan = parse_fault_plan("raise:test=mp")
        seen = {}

        def on_batch(test, results):
            seen[test.name] = list(results)

        evaluate_cells(
            _verdict_cells("mp", "lb"), policy=QUIET, fault_plan=plan,
            on_batch=on_batch,
        )
        assert all(isinstance(r, CellFailure) for r in seen["mp"])
        assert len(seen["mp"]) == 2  # one sentinel per cell of the batch
        assert all(isinstance(r, bool) for r in seen["lb"])


class TestPooledFailures:
    def test_pooled_skip_matches_serial(self):
        cells = _verdict_cells("mp", "lb", "corr")
        plan = parse_fault_plan("raise:test=lb")
        serial = evaluate_cells(cells, policy=QUIET, fault_plan=plan)
        pooled = evaluate_cells(cells, jobs=2, policy=QUIET, fault_plan=plan)

        def essence(result):
            # Tracebacks name the dispatch frame (serial loop vs pool
            # worker); everything the caller keys on must match.
            if isinstance(result, CellFailure):
                return (
                    result.test_name,
                    result.reason,
                    result.message,
                    result.attempts,
                )
            return result

        assert [essence(r) for r in pooled] == [essence(r) for r in serial]

    def test_worker_crash_is_quarantined_and_attributed(self):
        cells = _verdict_cells("mp", "lb", "corr")
        baseline = evaluate_cells(cells)
        plan = parse_fault_plan("crash:test=lb")
        with collecting() as recorder:
            results = evaluate_cells(
                cells, jobs=2, policy=QUARANTINE, fault_plan=plan
            )
            counters = recorder.snapshot().counters
        for cell, got, want in zip(cells, results, baseline):
            if cell.test.name == "lb":
                assert isinstance(got, CellFailure)
                assert got.reason == "crash"
            else:
                assert got == want  # innocents are never blamed
        assert counters["engine.pool.restarts"] >= 1

    def test_worker_crash_retry_recovers(self):
        cells = _verdict_cells("mp", "lb")
        baseline = evaluate_cells(cells)
        plan = parse_fault_plan("crash:test=lb,attempts=1")
        policy = ExecutionPolicy(retries=1, backoff=0.0, on_error="fail")
        results = evaluate_cells(cells, jobs=2, policy=policy, fault_plan=plan)
        assert results == baseline

    def test_timeout_kills_the_batch(self):
        cells = _verdict_cells("mp", "lb")
        baseline = evaluate_cells(cells)
        plan = parse_fault_plan("hang:test=lb,seconds=30")
        policy = ExecutionPolicy(
            timeout=1.5, backoff=0.0, on_error="quarantine"
        )
        with collecting() as recorder:
            results = evaluate_cells(
                cells, jobs=2, policy=policy, fault_plan=plan
            )
            counters = recorder.snapshot().counters
        for cell, got, want in zip(cells, results, baseline):
            if cell.test.name == "lb":
                assert isinstance(got, CellFailure)
                assert got.reason == "timeout"
            else:
                assert got == want
        assert counters["engine.timeouts"] == 1
        assert counters["engine.pool.restarts"] >= 1

    def test_deadline_alone_routes_through_pool_unchanged(self):
        # jobs=1 + timeout uses a one-worker pool; results must still be
        # byte-identical to the in-process path.
        cells = _verdict_cells("mp", "lb")
        baseline = evaluate_cells(cells)
        policy = ExecutionPolicy(timeout=120.0)
        assert evaluate_cells(cells, policy=policy) == baseline

    def test_on_stall_fires_for_slow_batches(self):
        calls = []
        plan = parse_fault_plan("hang:test=lb,seconds=1.0")
        policy = ExecutionPolicy(timeout=30.0, backoff=0.0)
        evaluate_cells(
            _verdict_cells("mp", "lb"), jobs=2, policy=policy,
            fault_plan=plan,
            on_stall=lambda test, waited: calls.append((test.name, waited)),
            stall_after=0.25,
        )
        assert any(name == "lb" and waited >= 0.25 for name, waited in calls)


class TestCorruptionRecovery:
    def test_corrupt_entry_is_recounted_as_miss(self, tmp_path):
        test = get_test("mp")
        cells = [OutcomeSpec(test, "gam", project="full")]
        baseline = evaluate_cells(cells)
        plan = parse_fault_plan("corrupt:test=mp")
        assert evaluate_cells(
            cells, cache_dir=str(tmp_path), fault_plan=plan
        ) == baseline
        entry = ResultCache(str(tmp_path)).entry_path(cells[0])
        assert b"corrupted-by-fault-injection" in entry.read_bytes()
        with collecting() as recorder:
            rerun = evaluate_cells(cells, cache_dir=str(tmp_path))
            counters = recorder.snapshot().counters
        assert rerun == baseline
        assert counters["engine.cache.stale"] == 1
        assert counters["engine.cache.store"] == 1  # recomputed + re-stored


class TestCacheMaintenance:
    def test_stats_inventory(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        test = get_test("mp")
        cells = [VerdictSpec(test, "gam")]
        evaluate_cells(cells, cache_dir=str(tmp_path))
        (tmp_path / "orphan.tmp").write_bytes(b"dead")
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.entry_bytes > 0
        assert stats.tmp_files == 1
        assert stats.tmp_bytes == 4

    def test_purge_respects_age(self, tmp_path):
        import os

        cache = ResultCache(str(tmp_path))
        old = tmp_path / "old.tmp"
        young = tmp_path / "young.tmp"
        old.write_bytes(b"xxxx")
        young.write_bytes(b"y")
        now = os.stat(old).st_mtime + 7200.0
        os.utime(young, (now - 10.0, now - 10.0))
        removed, reclaimed = cache.purge_stale_tmp(older_than=3600.0, now=now)
        assert (removed, reclaimed) == (1, 4)
        assert not old.exists() and young.exists()

    def test_cli_stats_and_purge(self, tmp_path, capsys):
        import os

        from repro.cli import main

        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        stale = cache_dir / "dead.tmp"
        stale.write_bytes(b"dead")
        past = os.stat(stale).st_mtime - 7200.0
        os.utime(stale, (past, past))
        assert main(["cache", "stats", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "stale tmp files: 1 (4 bytes)" in out
        assert main(["cache", "purge", str(cache_dir), "--stale-tmp"]) == 0
        assert "removed 1 stale tmp file(s)" in capsys.readouterr().out
        assert not stale.exists()

    def test_cli_rejects_bad_input(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["cache", "stats", str(tmp_path / "missing")]) == 2
        assert "not a cache directory" in capsys.readouterr().err
        assert main(["cache", "purge", str(tmp_path)]) == 2
        assert "--stale-tmp" in capsys.readouterr().err


class TestPolicyCli:
    def test_check_skips_on_injected_fault(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(FAULTS_ENV_VAR, "raise:test=dekker")
        status = main(["check", "dekker", "-m", "gam", "--on-error", "skip"])
        assert status == 1
        out = capsys.readouterr().out
        assert "SKIPPED" in out and "error after 1 attempt(s)" in out

    def test_policy_flags_validate(self, capsys):
        from repro.cli import main

        assert main(["check", "dekker", "-m", "gam", "--timeout", "-3"]) == 2
        assert "timeout must be > 0" in capsys.readouterr().err


class TestHarnessRendering:
    def test_matrix_renders_skips(self):
        from repro.eval.litmus_matrix import (
            conformance_failures,
            litmus_matrix,
            render_matrix,
        )

        plan = parse_fault_plan("raise:test=mp")
        cells = litmus_matrix(
            tests=[get_test("mp"), get_test("lb")],
            model_names=("sc", "gam"),
            policy=QUIET,
            fault_plan=plan,
        )
        skipped = [c for c in cells if c.failure is not None]
        assert {c.test_name for c in skipped} == {"mp"}
        assert all(c.conforms for c in skipped)  # no verdict, no failure
        assert conformance_failures(cells) == []
        rendered = render_matrix(cells)
        assert "skip" in rendered

    def test_strength_excludes_skipped_tests(self):
        from repro.eval.strength import render_strength, strength_matrix

        tests = [get_test("mp"), get_test("lb"), get_test("corr")]
        clean = strength_matrix(tests=tests, model_names=("sc", "gam"))
        assert clean.skipped == ()
        plan = parse_fault_plan("raise:test=corr")
        survived = strength_matrix(
            tests=tests, model_names=("sc", "gam"),
            policy=QUIET, fault_plan=plan,
        )
        assert survived.skipped == ("corr",)
        expected = strength_matrix(tests=tests[:2], model_names=("sc", "gam"))
        assert survived.stronger_or_equal == expected.stronger_or_equal
        assert "corr" in render_strength(survived)

    def test_equiv_reports_unanswered_pairs(self):
        from repro.equivalence.checker import check_suite

        plan = parse_fault_plan("raise:test=mp")
        reports = check_suite(
            [get_test("mp"), get_test("lb")], pair_names=("gam",),
            policy=QUIET, fault_plan=plan,
        )
        by_name = {report.test_name: report for report in reports}
        assert by_name["mp"].failure == "error"
        assert not by_name["mp"].equivalent  # unanswered, not equivalent
        assert by_name["lb"].failure is None
        assert by_name["lb"].equivalent


class TestHuntQuarantine:
    SUITE = "paper"

    def _hunt(self, out, **kwargs):
        from repro.campaign.driver import run_hunt

        kwargs.setdefault("log", None)
        return run_hunt(str(out), **kwargs)

    def test_quarantine_records_and_resume_identity(self, tmp_path):
        from repro.litmus.frontend.suite import resolve_suite

        victim = resolve_suite(self.SUITE)[0].name
        out = tmp_path / "camp"
        plan = parse_fault_plan(f"raise:test={victim}")
        policy = ExecutionPolicy(retries=1, backoff=0.0, on_error="quarantine")
        report = self._hunt(
            out, suite=self.SUITE, pairs=[("wmm", "arm")], num_shards=2,
            policy=policy, fault_plan=plan,
        )
        assert sorted(report.quarantined) == [victim]
        payload = json.loads((out / "quarantine.json").read_text())
        record = payload["records"][victim]
        assert record["reason"] == "error"
        assert record["attempts"] == 2  # the fault fires on every attempt
        assert record["shard"] in (0, 1)
        assert "InjectedFault" in record["traceback"]
        text = (out / "report.txt").read_text()
        assert f"{victim}: error after 2 attempts" in text
        assert all(d.test_name != victim for d in report.discrepancies)

        # A fault-free re-run resumes the completed shards and must
        # reproduce the report byte-for-byte, quarantine included.
        rerun = self._hunt(out, resume=True)
        assert (out / "report.txt").read_text() == text
        assert sorted(rerun.quarantined) == [victim]

    def test_fault_free_hunt_writes_no_quarantine(self, tmp_path):
        out = tmp_path / "clean"
        report = self._hunt(
            out, suite=self.SUITE, pairs=[("wmm", "arm")], num_shards=1,
        )
        assert report.quarantined == {}
        assert not (out / "quarantine.json").exists()
        assert "quarantined" not in (out / "report.txt").read_text()

    def test_heartbeat_reports_batch_gaps(self, tmp_path):
        lines = []
        self._hunt(
            tmp_path / "hb", suite=self.SUITE, pairs=[("wmm", "arm")],
            num_shards=1, log=lines.append, heartbeat=True,
            stall_after=1e-6,
        )
        beats = [line for line in lines if "heartbeat:" in line]
        assert beats
        # With a sub-microsecond stall deadline every heartbeat flags it.
        assert any("stalled past" in line for line in beats)

    def test_quarantine_state_round_trip(self, tmp_path):
        from repro.campaign.state import CampaignDir

        campaign = CampaignDir(str(tmp_path / "c"))
        campaign.ensure_layout()
        assert campaign.load_quarantine() == {}
        records = {
            "t1": {"reason": "crash", "message": "boom", "traceback": "",
                   "attempts": 2, "shard": 0},
        }
        campaign.write_quarantine(records)
        assert campaign.load_quarantine() == records
        campaign.write_quarantine({})  # empty wipes the file
        assert not campaign.quarantine_path.exists()
        assert campaign.load_quarantine() == {}
