"""Unit tests for instructions and Definitions 1-3 (RS / WS / ARS)."""

import pytest

from repro.isa.expr import Const, Reg
from repro.isa.instructions import (
    FENCE_LL,
    FENCE_LS,
    FENCE_SL,
    FENCE_SS,
    Branch,
    Fence,
    Load,
    Nop,
    RegOp,
    Store,
    acquire_fence,
    full_fence,
    release_fence,
)


class TestLoad:
    def test_read_set_is_address_registers(self):
        load = Load("r2", Reg("r1") + 8)
        assert load.read_set() == frozenset({"r1"})

    def test_write_set_is_destination(self):
        assert Load("r2", Const(0)).write_set() == frozenset({"r2"})

    def test_ars_equals_rs_for_loads(self):
        load = Load("r2", Reg("r1") + Reg("r3"))
        assert load.addr_read_set() == load.read_set()

    def test_kind_flags(self):
        load = Load("r2", Const(0))
        assert load.is_load and load.is_memory
        assert not load.is_store and not load.is_fence and not load.is_branch

    def test_addr_coercion(self):
        assert Load("r1", 0x100).addr == Const(0x100)
        assert Load("r1", "r9").addr == Reg("r9")


class TestStore:
    def test_read_set_is_address_and_data(self):
        store = Store(Reg("r1"), Reg("r2"))
        assert store.read_set() == frozenset({"r1", "r2"})

    def test_write_set_empty(self):
        assert Store(Const(0), Const(1)).write_set() == frozenset()

    def test_ars_is_address_only(self):
        store = Store(Reg("r1"), Reg("r2"))
        assert store.addr_read_set() == frozenset({"r1"})

    def test_kind_flags(self):
        store = Store(Const(0), Const(1))
        assert store.is_store and store.is_memory and not store.is_load


class TestFence:
    def test_four_basic_fences(self):
        assert (FENCE_LL.pre, FENCE_LL.post) == ("L", "L")
        assert (FENCE_LS.pre, FENCE_LS.post) == ("L", "S")
        assert (FENCE_SL.pre, FENCE_SL.post) == ("S", "L")
        assert (FENCE_SS.pre, FENCE_SS.post) == ("S", "S")

    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            Fence("X", "L")

    def test_orders_before_matches_pre_type(self):
        load = Load("r1", Const(0))
        store = Store(Const(0), Const(1))
        assert FENCE_LS.orders_before(load)
        assert not FENCE_LS.orders_before(store)
        assert FENCE_SL.orders_before(store)
        assert not FENCE_SL.orders_before(load)

    def test_orders_after_matches_post_type(self):
        load = Load("r1", Const(0))
        store = Store(Const(0), Const(1))
        assert FENCE_LS.orders_after(store)
        assert not FENCE_LS.orders_after(load)

    def test_fences_do_not_order_other_fences_directly(self):
        # "two fences are not ordered (directly) with respect to each other"
        assert not FENCE_LL.orders_before(FENCE_SS)
        assert not FENCE_LL.orders_after(FENCE_SS)

    def test_fence_read_write_sets_empty(self):
        assert FENCE_LL.read_set() == frozenset()
        assert FENCE_LL.write_set() == frozenset()

    def test_composite_fences_match_section_3d1(self):
        assert acquire_fence() == (FENCE_LL, FENCE_LS)
        assert release_fence() == (FENCE_LS, FENCE_SS)
        assert full_fence() == (FENCE_LL, FENCE_LS, FENCE_SL, FENCE_SS)


class TestRegOpBranchNop:
    def test_regop_sets(self):
        op = RegOp("r3", Reg("r1") + Reg("r2"))
        assert op.read_set() == frozenset({"r1", "r2"})
        assert op.write_set() == frozenset({"r3"})
        assert op.addr_read_set() == frozenset()

    def test_branch_reads_condition_writes_nothing(self):
        branch = Branch(Reg("r1"), "target")
        assert branch.read_set() == frozenset({"r1"})
        assert branch.write_set() == frozenset()
        assert branch.is_branch and not branch.is_memory

    def test_nop_is_inert(self):
        nop = Nop()
        assert nop.read_set() == frozenset()
        assert nop.write_set() == frozenset()
        assert not nop.is_memory

    def test_reprs_match_paper_notation(self):
        assert repr(Load("r1", Const(0x100))) == "r1 = Ld [256]"
        assert repr(Store(Const(0x100), Const(1))) == "St [256] 1"
        assert repr(FENCE_SS) == "FenceSS"
