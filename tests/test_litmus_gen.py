"""Tests for the cycle-based litmus generator and its engine integration."""

import pickle

import pytest

from repro.core.axiomatic import is_allowed
from repro.eval.litmus_matrix import litmus_matrix, render_matrix
from repro.litmus.frontend.gen import (
    VOCABULARY,
    cycle_name,
    cycle_to_test,
    enumerate_cycles,
    generate_suite,
)
from repro.litmus.frontend.parser import parse_litmus
from repro.litmus.frontend.printer import print_litmus
from repro.litmus.registry import get_test
from repro.models.registry import get_model


@pytest.fixture(scope="module")
def default_suite():
    return generate_suite(4)


class TestEnumeration:
    def test_cycles_are_canonical_and_unique(self):
        cycles = list(enumerate_cycles(4))
        names = [cycle_name(cycle) for cycle in cycles]
        assert len(set(names)) == len(names)
        for cycle in cycles:
            assert cycle[-1].external  # canonical rotation invariant

    def test_structural_constraints(self):
        for cycle in enumerate_cycles(4):
            assert sum(1 for edge in cycle if edge.external) >= 2
            assert any(edge.po for edge in cycle)
            assert sum(1 for edge in cycle if edge.advances) != 1
            for edge, successor in zip(cycle, cycle[1:] + cycle[:1]):
                assert edge.dst == successor.src

    def test_budget_below_minimum_rejected(self):
        with pytest.raises(ValueError, match="at least 3 edges"):
            list(enumerate_cycles(2))

    def test_larger_budget_is_superset(self):
        small = {cycle_name(c) for c in enumerate_cycles(4)}
        large = {cycle_name(c) for c in enumerate_cycles(5)}
        assert small < large


class TestGeneratedSuite:
    def test_default_budget_yields_at_least_50_tests(self, default_suite):
        """The acceptance bar: ``repro gen --edges 4`` => >= 50 tests."""
        assert len(default_suite) >= 50

    def test_names_and_content_deduplicated(self, default_suite):
        from repro.litmus.frontend.gen import _content_key

        names = [test.name for test in default_suite]
        assert len(set(names)) == len(names)
        keys = {_content_key(test) for test in default_suite}
        assert len(keys) == len(default_suite)

    def test_determinism(self, default_suite):
        again = generate_suite(4)
        assert [t.name for t in again] == [t.name for t in default_suite]
        assert [print_litmus(t) for t in again] == [
            print_litmus(t) for t in default_suite
        ]

    def test_seeded_determinism_and_size_cap(self):
        first = generate_suite(4, size=20, seed=7)
        second = generate_suite(4, size=20, seed=7)
        assert [t.name for t in first] == [t.name for t in second]
        assert len(first) == 20
        # A seeded sample is a permutation-prefix of the full suite.
        full_names = {t.name for t in generate_suite(4)}
        assert {t.name for t in first} <= full_names

    def test_tests_round_trip_and_pickle(self, default_suite):
        for test in default_suite:
            assert parse_litmus(print_litmus(test)) == test
            assert pickle.loads(pickle.dumps(test)) == test

    def test_every_cycle_is_forbidden_under_sc(self, default_suite):
        """A critical cycle is a po+com cycle, so SC must forbid it."""
        sc = get_model("sc")
        allowed = [t.name for t in default_suite if is_allowed(t, sc)]
        assert allowed == []

    def test_weak_models_allow_some_cycles(self, default_suite):
        """The suite must discriminate: weak models allow relaxed cycles."""
        alpha = get_model("alpha_like")
        assert any(is_allowed(t, alpha) for t in default_suite)

    def test_corr_cycle_matches_paper_corr(self):
        """``posrr+fre+rfe`` lowers to exactly the paper's CoRR split."""
        generated = next(
            t for t in generate_suite(4) if t.name == "posrr+fre+rfe"
        )
        corr = get_test("corr")
        for model_name, expected in corr.expect.items():
            assert is_allowed(generated, get_model(model_name)) == expected

    def test_mp_cycle_verdicts(self):
        """``porr+fre+poww+rfe`` is MP: weak models allow, strong forbid."""
        generated = next(
            t for t in generate_suite(4) if t.name == "porr+fre+poww+rfe"
        )
        assert not is_allowed(generated, get_model("sc"))
        assert not is_allowed(generated, get_model("tso"))
        assert is_allowed(generated, get_model("gam"))

    def test_fenced_dependency_cycles_forbidden_in_gam(self):
        """Full ordering on every edge leaves nothing to relax."""
        suite = {t.name: t for t in generate_suite(4)}
        fully_ordered = suite["data+rfe+data+rfe"]  # LB with data deps
        assert not is_allowed(fully_ordered, get_model("gam"))

    def test_edge_vocabulary_table_is_complete(self):
        import repro.litmus.frontend.gen as gen_module

        for name, edge in VOCABULARY.items():
            assert name == edge.name
            assert edge.src in "RW" and edge.dst in "RW"
            # Every edge is documented in the module's vocabulary table.
            assert name in gen_module.__doc__

    def test_cycle_to_test_name_override(self):
        cycle = next(iter(enumerate_cycles(4)))
        assert cycle_to_test(cycle, name="custom").name == "custom"


class TestEngineIntegration:
    def test_generated_suite_through_engine_serial(self):
        suite = generate_suite(4, size=8, seed=0)
        cells = litmus_matrix(tests=suite, jobs=1)
        assert len(cells) == 8 * 8  # tests x zoo models
        assert all(cell.expected is None for cell in cells)

    @pytest.mark.slow
    def test_parallel_matrix_byte_identical_to_serial(self):
        """The acceptance bar: --jobs 2 byte-identical to serial."""
        suite = generate_suite(4)
        assert len(suite) >= 50
        serial = litmus_matrix(tests=suite, jobs=1)
        parallel = litmus_matrix(tests=suite, jobs=2)
        assert render_matrix(parallel) == render_matrix(serial)

    @pytest.mark.slow
    def test_cached_matrix_byte_identical(self, tmp_path):
        suite = generate_suite(4, size=10, seed=2)
        cache = str(tmp_path / "cache")
        warm = litmus_matrix(tests=suite, cache_dir=cache)
        cached = litmus_matrix(tests=suite, cache_dir=cache)
        assert render_matrix(cached) == render_matrix(warm)
