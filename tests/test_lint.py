"""Tests for the lint subsystem (``repro.lint``) and its surfaces.

Coverage contract: every code in the diagnostic catalog has at least one
*firing* case and one *non-firing* case here, plus corpus-cleanliness
gates (the registered tests and the model zoo must lint with zero
errors) and behavioural tests for the CLI/campaign surfaces
(``repro lint``, ``repro gen --dedupe``, hunt pre-flight, import
collision diagnostics).
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.axiomatic import MemoryModel
from repro.core.ppo import Clause, build_clause
from repro.lint import (
    CODES,
    LintReport,
    Severity,
    canonical_hash,
    dedupe_tests,
    edge_signature,
    lint_model,
    lint_models,
    lint_test,
    lint_tests,
    make,
    preflight_models,
    preflight_tests,
)
from repro.lint.repo import check_engine_version_bump, lint_source
from repro.litmus.frontend.parser import parse_litmus
from repro.litmus.registry import all_tests, get_test
from repro.models.registry import REGISTRY


def _codes(findings) -> list[str]:
    return [finding.code for finding in findings]


def _parse(text: str):
    return parse_litmus(text)


# A clean two-thread message-passing shape no litmus check fires on.
CLEAN = """\
GAM clean
{ a; b; }
 P0       | P1          ;
 St [a] 1 | r1 = Ld [b] ;
 St [b] 1 | r2 = Ld [a] ;
exists (1:r1=1 /\\ 1:r2=0)
"""


def _clause(spec: str):
    name, _, args = spec.partition("(")
    if args:
        return build_clause(name, tuple(args.rstrip(")").split(",")))
    return build_clause(name)


def _model(name: str, *specs: str, dynamic=(), **kwargs) -> MemoryModel:
    return MemoryModel(
        name=name,
        clauses=tuple(_clause(spec) for spec in specs),
        dynamic_clauses=tuple(_clause(spec) for spec in dynamic),
        **kwargs,
    )


class TestDiagnosticsVocabulary:
    def test_make_validates_codes(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            make("L999", "x", "y")

    def test_make_uses_catalog_severity(self):
        assert make("L004", "t", "m").severity is Severity.ERROR
        assert make("L001", "t", "m").severity is Severity.WARNING
        assert make("L010", "t", "m").severity is Severity.INFO

    def test_severity_rank_orders(self):
        assert Severity.INFO.rank < Severity.WARNING.rank < Severity.ERROR.rank

    def test_render_includes_span(self):
        finding = make("R001", "f.py", "msg", source="src/f.py", line=3)
        assert finding.render() == "error   R001 src/f.py:3: f.py: msg"

    def test_catalog_is_complete(self):
        for code, info in CODES.items():
            assert info.code == code
            assert info.title and info.summary and info.example
        assert sorted(CODES) == list(CODES)  # catalog stays in code order

    def test_report_counts_and_exit(self):
        report = LintReport(
            findings=(make("L010", "t", "m"), make("L001", "t", "m"))
        )
        assert report.counts() == {"error": 0, "warning": 1, "info": 1}
        assert report.exit_status() == 0
        assert report.exit_status(strict=True) == 1
        with_error = LintReport(findings=(make("L004", "t", "m"),))
        assert with_error.exit_status() == 1
        assert with_error.errors() == with_error.findings

    def test_report_json_is_stable(self):
        report = LintReport(findings=(make("M002", "m", "dup"),))
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["code"] == "M002"


class TestLitmusCodes:
    def test_clean_test_has_no_findings(self):
        assert lint_test(_parse(CLEAN)) == []

    def test_l001_undefined_register(self):
        test = _parse(
            "GAM t\n{ a; }\n P0          ;\n St [a] r9   ;\n"
        )
        assert "L001" in _codes(lint_test(test))

    def test_l002_unused_register(self):
        test = _parse(
            "GAM t\n{ a; }\n P0          | P1          ;\n"
            " St [a] 1    | r1 = Ld [a] ;\n"
            "             | r2 = Ld [a] ;\n"
            "exists (1:r1=1)\n"
        )
        findings = lint_test(test)
        assert "L002" in _codes(findings)
        # r1 is asked about, so only r2 fires.
        assert all("r2" in f.message for f in findings if f.code == "L002")

    def test_l002_respects_observed_and_rmw_data(self):
        # An RMW's data expression consumes its own dst (fetch-add), so
        # the register is read even though Definition 1 excludes it.
        test = _parse(
            "GAM t\n{ a; }\n P0                 ;\n"
            " r1 = RMW [a] r1+1  ;\nexists (0:r1=0)\n"
        )
        assert "L002" not in _codes(lint_test(test))

    def test_l003_unobserved_store(self):
        test = _parse(
            "GAM t\n{ a; b; }\n P0       | P1          ;\n"
            " St [a] 1 | r1 = Ld [a] ;\n St [b] 1 |             ;\n"
            "exists (1:r1=1)\n"
        )
        assert "L003" in _codes(lint_test(test))

    def test_l003_suppressed_by_dynamic_load(self):
        # The load's address comes from a register, so it may read any
        # location; no store can be declared unobserved.
        test = _parse(
            "GAM t\n{ a; b; }\n P0       | P1          ;\n"
            " St [a] b | r1 = Ld [a] ;\n St [b] 1 | r2 = Ld [r1] ;\n"
            "exists (1:r2=1)\n"
        )
        assert "L003" not in _codes(lint_test(test))

    def test_l003_observed_via_asked_memory(self):
        test = _parse(
            "GAM t\n{ a; }\n P0       ;\n St [a] 1 ;\nexists (a=1)\n"
        )
        assert "L003" not in _codes(lint_test(test))

    def test_l004_vacuous_condition(self):
        test = _parse(
            "GAM t\n{ a; }\n P0       | P1          ;\n"
            " St [a] 1 | r1 = Ld [a] ;\nexists (1:r9=1)\n"
        )
        findings = lint_test(test)
        assert "L004" in _codes(findings)
        assert make("L004", "", "").severity is Severity.ERROR

    def test_l005_trivial_condition(self):
        test = _parse(
            "GAM t\n{ a; }\n P0       | P1          ;\n"
            " St [a] 1 | r1 = Ld [a] ;\nexists (1:r9=0)\n"
        )
        codes = _codes(lint_test(test))
        assert "L005" in codes and "L004" not in codes

    def test_l006_bad_processor_index(self):
        test = _parse(
            "GAM t\n{ a; }\n P0       | P1          ;\n"
            " St [a] 1 | r1 = Ld [a] ;\nexists (2:r1=1)\n"
        )
        assert "L006" in _codes(lint_test(test))

    def test_l007_location_aliasing(self):
        test = _parse(
            "GAM t\n{ a @ 0x100; b @ 0x100; }\n P0       | P1          ;\n"
            " St [a] 1 | r1 = Ld [b] ;\nexists (1:r1=1)\n"
        )
        assert "L007" in _codes(lint_test(test))

    def test_l008_orphan_initial_value(self):
        test = replace(
            _parse(CLEAN), initial_memory={0x9999: 7}, name="orphan"
        )
        assert "L008" in _codes(lint_test(test))

    def test_l009_isomorphic_duplicate(self):
        corr = get_test("corr")
        clone = replace(corr, name="corr-clone")
        findings = lint_tests([corr, clone], signature_edges=0)
        dups = [f for f in findings if f.code == "L009"]
        assert len(dups) == 1
        assert dups[0].subject == "corr-clone"
        assert "corr" in dups[0].message

    def test_l009_quiet_on_distinct_tests(self):
        findings = lint_tests(
            [get_test("corr"), get_test("dekker")], signature_edges=0
        )
        assert "L009" not in _codes(findings)

    def test_l010_edge_signature(self):
        findings = lint_tests([get_test("corr")], signature_edges=4)
        sigs = [f for f in findings if f.code == "L010"]
        assert len(sigs) == 1
        assert "posrr+fre+rfe" in sigs[0].message

    def test_l010_disabled_below_minimum_budget(self):
        findings = lint_tests([get_test("corr")], signature_edges=0)
        assert "L010" not in _codes(findings)


class TestCanonicalHash:
    def test_register_rename_invariant(self):
        renamed = CLEAN.replace("r1", "r7").replace("r2", "r3")
        assert canonical_hash(_parse(CLEAN)) == canonical_hash(_parse(renamed))

    def test_location_rename_and_readdress_invariant(self):
        moved = CLEAN.replace(
            "{ a; b; }", "{ x @ 0x700; y @ 0x900; }"
        ).replace("[a]", "[x]").replace("[b]", "[y]")
        assert canonical_hash(_parse(CLEAN)) == canonical_hash(_parse(moved))

    def test_thread_swap_invariant(self):
        swapped = _parse(
            "GAM swapped\n{ a; b; }\n"
            " P0          | P1       ;\n"
            " r1 = Ld [b] | St [a] 1 ;\n"
            " r2 = Ld [a] | St [b] 1 ;\n"
            "exists (0:r1=1 /\\ 0:r2=0)\n"
        )
        assert canonical_hash(_parse(CLEAN)) == canonical_hash(swapped)

    def test_distinct_tests_hash_differently(self):
        hashes = {canonical_hash(get_test(n)) for n in ("dekker", "mp", "corr")}
        assert len(hashes) == 3

    def test_asked_value_matters(self):
        changed = CLEAN.replace("1:r2=0", "1:r2=1")
        assert canonical_hash(_parse(CLEAN)) != canonical_hash(_parse(changed))

    def test_edge_signature_of_known_tests(self):
        assert edge_signature(get_test("corr")) == "posrr+fre+rfe"
        assert edge_signature(get_test("dekker")) == "powr+fre+powr+fre"
        # A test with address dependencies is outside the 4-edge space.
        assert edge_signature(get_test("oota")) is None

    def test_dedupe_tests(self):
        corr, dekker = get_test("corr"), get_test("dekker")
        clone = replace(corr, name="corr-clone")
        kept, dropped = dedupe_tests([corr, clone, dekker])
        assert [t.name for t in kept] == ["corr", "dekker"]
        assert [(t.name, kept_name) for t, kept_name in dropped] == [
            ("corr-clone", "corr")
        ]

    def test_dedupe_preserves_generated_suite(self):
        # The cycle generator's structural dedup is already canonical-
        # hash-tight at edges<=4: --dedupe must be a verdict-preserving
        # no-op there (the acceptance bar for gen --dedupe).
        from repro.litmus.frontend.gen import generate_suite

        tests = generate_suite(max_edges=4)
        kept, dropped = dedupe_tests(tests)
        assert dropped == []
        assert kept == tests


class TestModelCodes:
    GAM_SPECS = (
        "SAMemSt",
        "SAStLd",
        "SALdLd",
        "SARmwLd",
        "RegRAW",
        "BrSt",
        "AddrSt",
        "FenceOrd",
    )

    def test_zoo_models_are_clean(self):
        models = [REGISTRY.get(name) for name in REGISTRY.names()]
        assert lint_models(models) == []

    def test_m001_uncataloged_clause(self):
        class Bogus(Clause):
            name = "Bogus"
            paper_ref = "nowhere"

        model = MemoryModel(
            name="m", clauses=(_clause("SAMemSt"), Bogus())
        )
        assert "M001" in _codes(lint_model(model))

    def test_m002_duplicate_clause(self):
        model = _model("m", "SAMemSt", "SALdLd", "SAMemSt")
        findings = [f for f in lint_model(model) if f.code == "M002"]
        assert len(findings) == 1  # reported once, not per extra copy

    def test_m003_subsumed_clause(self):
        model = _model("m", "PairwiseOrder(L,L)", "SALdLd", "SAMemSt")
        findings = [f for f in lint_model(model) if f.code == "M003"]
        assert len(findings) == 1
        assert "SALdLd" in findings[0].message

    def test_m003_needs_all_antecedents(self):
        # SAMemSt is implied only by PairwiseOrder(L,S) + PairwiseOrder(S,S)
        # together; either alone must stay quiet.
        model = _model("m", "PairwiseOrder(S,S)", "SAMemSt")
        assert "M003" not in _codes(lint_model(model))

    def test_m004_conflicting_same_address_policy(self):
        model = _model("m", "SAMemSt", "SALdLd", dynamic=("SALdLdARM",))
        assert "M004" in _codes(lint_model(model))

    def test_m004_quiet_on_either_alone(self):
        assert "M004" not in _codes(lint_model(_model("m", "SAMemSt", "SALdLd")))
        assert "M004" not in _codes(
            lint_model(_model("m", "SAMemSt", dynamic=("SALdLdARM",)))
        )

    def test_m005_registry_twin(self):
        twin = replace(REGISTRY.get("gam"), name="mygam")
        findings = [f for f in lint_models([twin]) if f.code == "M005"]
        assert len(findings) == 1
        assert "'gam'" in findings[0].message

    def test_m005_quiet_under_registry_aliases(self):
        # `rmo` is an alias of gam0: canonically identical by design, but
        # canonical_name flattens the alias so no twin is reported.
        assert "M005" not in _codes(lint_models([REGISTRY.get("rmo")]))

    def test_m006_duplicate_model_name(self):
        a = _model("m", *self.GAM_SPECS)
        b = _model("m", "SAMemSt")
        findings = [f for f in lint_models([a, b]) if f.code == "M006"]
        assert len(findings) == 1


class TestRepoCodes:
    ENGINE = "src/repro/engine/x.py"

    def test_r001_module_level_rng(self):
        src = "import random\nrandom.shuffle(items)\n"
        assert "R001" in _codes(lint_source(src, self.ENGINE))

    def test_r001_unseeded_random_instance(self):
        src = "import random\nrng = random.Random()\n"
        assert "R001" in _codes(lint_source(src, self.ENGINE))

    def test_r001_from_import(self):
        src = "from random import shuffle\n"
        assert "R001" in _codes(lint_source(src, self.ENGINE))

    def test_r001_seeded_rng_is_fine(self):
        src = "import random\nrng = random.Random(7)\nrng.shuffle(items)\n"
        assert lint_source(src, self.ENGINE) == []

    def test_r002_set_iteration(self):
        assert "R002" in _codes(
            lint_source("for x in {1, 2}:\n    pass\n", self.ENGINE)
        )
        assert "R002" in _codes(
            lint_source("out = tuple(set(names))\n", self.ENGINE)
        )
        assert "R002" in _codes(
            lint_source("out = [x for x in {1, 2}]\n", self.ENGINE)
        )

    def test_r002_sorted_set_is_fine(self):
        src = "for x in sorted({1, 2}):\n    pass\n"
        assert lint_source(src, self.ENGINE) == []

    def test_r003_engine_lambda(self):
        assert "R003" in _codes(
            lint_source("callback = lambda cell: cell\n", self.ENGINE)
        )

    def test_r003_key_callback_exempt(self):
        src = "out = sorted(items, key=lambda item: item.name)\n"
        assert lint_source(src, self.ENGINE) == []

    def test_scope_limits_checks(self):
        # The same violations outside the declared scopes are silent.
        src = "import random\nrandom.shuffle(x)\nf = lambda: 0\n"
        assert lint_source(src, "src/repro/analysis.py") == []

    def test_findings_carry_line_numbers(self):
        src = "import random\n\nrandom.shuffle(items)\n"
        (finding,) = lint_source(src, self.ENGINE)
        assert finding.line == 3
        assert finding.source == self.ENGINE

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", self.ENGINE)

    def test_r005_raw_clock_call(self):
        src = "import time\nstart = time.perf_counter()\n"
        findings = lint_source(src, self.ENGINE)
        assert _codes(findings) == ["R005"]
        assert "time_block" in findings[0].message
        assert "R005" in _codes(
            lint_source(
                "import time\nnow = time.time()\n",
                "src/repro/campaign/driver.py",
            )
        )

    def test_r005_from_import(self):
        src = "from time import perf_counter, sleep\n"
        findings = lint_source(src, self.ENGINE)
        assert _codes(findings) == ["R005"]
        assert "perf_counter" in findings[0].message

    def test_r005_obs_wrapper_and_non_clock_time_are_fine(self):
        # sleep is not a clock read; the obs package is the sanctioned
        # wrapper; out-of-scope files are silent.
        assert lint_source("import time\ntime.sleep(1)\n", self.ENGINE) == []
        src = "import time\nstart = time.perf_counter()\n"
        assert lint_source(src, "src/repro/obs/core.py") == []
        assert lint_source(src, "src/repro/analysis.py") == []

    def test_r006_network_import(self):
        findings = lint_source("import socket\n", "src/repro/campaign/driver.py")
        assert _codes(findings) == ["R006"]
        assert "src/repro/serve/" in findings[0].message
        # Submodules and from-imports of banned roots fire too, anywhere
        # under src/repro/ — the scope is the whole package.
        assert "R006" in _codes(
            lint_source("import http.client\n", "src/repro/analysis.py")
        )
        assert "R006" in _codes(
            lint_source(
                "from urllib.request import urlopen\n", "src/repro/cli.py"
            )
        )
        assert "R006" in _codes(
            lint_source("from http.server import HTTPServer\n", self.ENGINE)
        )

    def test_r006_serve_package_and_parse_are_fine(self):
        src = "import socket\nfrom http.server import BaseHTTPRequestHandler\n"
        assert lint_source(src, "src/repro/serve/daemon.py") == []
        # urllib.parse reads no socket; tests/tools are out of scope.
        assert lint_source(
            "from urllib.parse import urlsplit\n", "src/repro/serve/client.py"
        ) == []
        assert lint_source(
            "import urllib.parse\n", "src/repro/campaign/driver.py"
        ) == []
        assert lint_source("import socket\n", "tests/test_serve.py") == []

    def test_r004_requires_bump(self):
        findings = check_engine_version_bump(
            ["src/repro/engine/cells.py"], version_bumped=False
        )
        assert _codes(findings) == ["R004"]
        assert "src/repro/engine/cells.py" in findings[0].message

    def test_r004_kernel_counts_as_engine(self):
        findings = check_engine_version_bump(
            ["src/repro/core/kernel.py", "README.md"], version_bumped=False
        )
        assert _codes(findings) == ["R004"]

    def test_r004_quiet_when_bumped_or_untouched(self):
        assert check_engine_version_bump(
            ["src/repro/engine/cells.py"], version_bumped=True
        ) == []
        assert check_engine_version_bump(
            ["src/repro/cli.py"], version_bumped=False
        ) == []

    def test_live_tree_is_clean(self):
        import os

        from repro.lint.repo import lint_tree

        root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        assert lint_tree(root, "src") == []


class TestCorpusGates:
    def test_registered_corpus_has_no_errors(self):
        findings = lint_tests(list(all_tests()), signature_edges=4)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == []

    def test_zoo_preflight_is_clean(self):
        models = [REGISTRY.get(name) for name in REGISTRY.names()]
        assert preflight_models(models) == []

    def test_generated_suite_preflight_is_clean(self):
        from repro.litmus.frontend.gen import generate_suite

        assert preflight_tests(generate_suite(max_edges=4)) == []

    def test_preflight_reports_only_errors(self):
        vacuous = _parse(
            "GAM t\n{ a; }\n P0       ;\n St [a] 1 ;\nexists (0:r9=1)\n"
        )
        findings = preflight_tests([vacuous])
        assert _codes(findings) == ["L004"]
        assert all(f.severity is Severity.ERROR for f in findings)


class TestLintCli:
    @pytest.fixture(autouse=True)
    def _restore_registry(self):
        """Undo the global registrations ``repro gen`` makes in-process."""
        from repro.litmus import registry

        before = set(registry.test_names())
        yield
        for name in set(registry.test_names()) - before:
            registry.unregister(name)

    def test_lint_corpus_and_zoo_exits_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_json_format(self, capsys):
        assert main(["lint", "--suite", "paper", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["counts"]["error"] == 0

    def test_lint_strict_fails_on_warnings(self, capsys):
        # The corpus carries deliberate warnings (e.g. store-forwarding's
        # L001), so --strict over the paper suite must exit non-zero.
        assert main(["lint", "--suite", "paper", "--strict"]) == 1

    def test_lint_explicit_model(self, capsys):
        assert main(["lint", "--suite", "paper", "-m", "gam"]) == 0

    def test_lint_zoo_model_spec(self, capsys):
        assert (
            main(["lint", "--suite", "all", "--model", "zoo", "--format", "json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 0

    def test_lint_rejects_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.litmus"
        bad.write_text(
            "GAM bad\n{ a; }\n P0       ;\n St [a] 1 ;\nexists (0:r9=1)\n"
        )
        assert main(["lint", "--suite", str(bad)]) == 1
        assert "L004" in capsys.readouterr().out

    def test_gen_dedupe_logs_drop_count(self, capsys):
        assert main(["gen", "--edges", "3", "--dedupe", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "dedupe: dropped 0 isomorphic duplicate(s)" in out

    def test_import_collision_diagnostic(self, capsys, tmp_path):
        from repro.litmus.frontend.printer import print_litmus

        text = print_litmus(get_test("dekker"))
        one = tmp_path / "one.litmus"
        two = tmp_path / "two.litmus"
        one.write_text(text)
        two.write_text(text)
        assert main(["import", str(one), str(two)]) == 2
        err = capsys.readouterr().err
        assert "L011" in err
        assert "collision" in err
        # The diagnostic points at both definition sites, with lines.
        assert f"{two}:1" in err and f"{one}:1" in err

    def test_import_directory_collision(self, capsys, tmp_path):
        from repro.litmus.frontend.printer import print_litmus

        (tmp_path / "a.litmus").write_text(print_litmus(get_test("dekker")))
        (tmp_path / "b.litmus").write_text(print_litmus(get_test("dekker")))
        assert main(["import", str(tmp_path)]) == 2
        assert "L011" in capsys.readouterr().err


class TestHuntPreflight:
    BAD = (
        "GAM bad\n{ a; b; }\n"
        " P0          | P1          ;\n"
        " St [a] 1    | r1 = Ld [b] ;\n"
        " St [b] 1    | r2 = Ld [a] ;\n"
        "exists (1:r1=1 /\\ 1:r9=1)\n"
    )

    def test_hunt_refuses_error_findings(self, capsys, tmp_path):
        bad = tmp_path / "bad.litmus"
        bad.write_text(self.BAD)
        out = tmp_path / "camp"
        assert main(["hunt", "--out", str(out), "--suite", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "lint pre-flight" in err and "L004" in err
        assert "--no-lint" in err
        # Refusal happens before any campaign state is written.
        assert not (out / "campaign.json").exists()

    def test_hunt_no_lint_overrides(self, capsys, tmp_path):
        bad = tmp_path / "bad.litmus"
        bad.write_text(self.BAD)
        out = tmp_path / "camp"
        assert (
            main(["hunt", "--out", str(out), "--suite", str(bad), "--no-lint"])
            == 0
        )
        assert (out / "campaign.json").exists()

    def test_run_hunt_raises_campaign_error(self, tmp_path):
        from repro.campaign import run_hunt
        from repro.campaign.state import CampaignError

        bad = tmp_path / "bad.litmus"
        bad.write_text(self.BAD)
        with pytest.raises(CampaignError, match="lint pre-flight"):
            run_hunt(out=str(tmp_path / "camp"), suite=str(bad))
