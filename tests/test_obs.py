"""Telemetry subsystem tests: recorders, reports, parity, CLI surfaces.

The load-bearing guarantees under test:

* **off by default** — the null recorder no-ops, instrumented commands
  produce byte-identical stdout with and without ``--stats``;
* **closed vocabulary** — active recorders reject names missing from
  :data:`repro.obs.METRICS`, and every report validates against it;
* **pool parity** — ``--jobs N`` merged counter totals equal the serial
  run exactly (the snapshot-merge protocol in the scheduler);
* **artifacts** — ``repro hunt`` persists ``stats.json`` and
  ``repro stats`` renders/diffs it.
"""

from __future__ import annotations

import json
import types

import pytest

from repro.obs import (
    METRICS,
    RunReport,
    StatsRecorder,
    collecting,
    current,
    diff_reports,
    incr,
    load_report,
    metric_for,
    observe,
    time_block,
    validate_report,
)


class TestRecorder:
    def test_null_recorder_is_default_and_silent(self):
        assert not current().active
        # No-ops, including for names outside the registry: the disabled
        # path must never pay for validation.
        incr("totally.bogus.name")
        observe("also.bogus", 1.0)
        with time_block("engine.wall.seconds"):
            pass
        assert not current().active

    def test_collecting_installs_and_restores(self):
        with collecting() as recorder:
            assert current() is recorder
            assert recorder.active
            incr("engine.batches")
            incr("engine.batches", 2)
            observe("engine.batch.cells", 8.0)
        assert not current().active
        snapshot = recorder.snapshot()
        assert snapshot.counters["engine.batches"] == 3
        assert snapshot.series["engine.batch.cells"] == [8.0]

    def test_active_recorder_rejects_unknown_names(self):
        with collecting():
            with pytest.raises(ValueError, match="bogus"):
                incr("bogus.counter")
            with pytest.raises(ValueError, match="bogus"):
                observe("bogus.series", 1.0)

    def test_dynamic_prefix_families(self):
        assert metric_for("engine.cache.hit.by.gam").name == "engine.cache.hit.by"
        assert metric_for("engine.cache.hit.by").dynamic
        assert metric_for("not.a.metric") is None
        with collecting() as recorder:
            incr("engine.cache.hit.by.gam")
        assert recorder.snapshot().counters == {"engine.cache.hit.by.gam": 1}

    def test_merge_sums_counters_and_extends_series(self):
        a, b = StatsRecorder(), StatsRecorder()
        a.incr("engine.batches", 2)
        a.observe("engine.batch.cells", 4.0)
        b.incr("engine.batches", 3)
        b.incr("engine.cells.evaluated")
        b.observe("engine.batch.cells", 6.0)
        a.merge(b.snapshot())
        merged = a.snapshot()
        assert merged.counters == {
            "engine.batches": 5,
            "engine.cells.evaluated": 1,
        }
        assert merged.series["engine.batch.cells"] == [4.0, 6.0]

    def test_time_block_records_only_when_active(self):
        with collecting() as recorder:
            with time_block("engine.wall.seconds"):
                pass
        assert len(recorder.snapshot().series["engine.wall.seconds"]) == 1
        with time_block("engine.wall.seconds"):
            pass  # disabled: nothing recorded anywhere

    def test_nested_collecting_and_reuse(self):
        with collecting() as outer:
            with collecting() as inner:
                incr("engine.batches")
            # The inner block restored the outer recorder.
            assert current() is outer
            incr("kernel.builds")
            with collecting(reuse=True) as reused:
                assert reused is outer
        assert inner.snapshot().counters == {"engine.batches": 1}
        assert outer.snapshot().counters == {"kernel.builds": 1}


class TestRunReport:
    def _snapshot(self):
        recorder = StatsRecorder()
        recorder.incr("engine.cells.evaluated", 96)
        recorder.incr("engine.batches", 12)
        recorder.observe("engine.wall.seconds", 0.5)
        recorder.observe("engine.batch.seconds", 0.4)
        recorder.observe("engine.batch.cells", 8.0)
        return recorder.snapshot()

    def test_from_snapshot_sorts_and_splits_by_kind(self):
        report = RunReport.from_snapshot(self._snapshot(), command="matrix")
        assert list(report.counters) == ["engine.batches", "engine.cells.evaluated"]
        assert set(report.timers) == {
            "engine.wall.seconds",
            "engine.batch.seconds",
        }
        assert set(report.histograms) == {"engine.batch.cells"}

    def test_json_round_trip_validates(self):
        report = RunReport.from_snapshot(
            self._snapshot(), command="matrix", meta={"suite": "paper"}
        )
        payload = json.loads(report.render_json())
        assert validate_report(payload) == []
        assert RunReport.from_json(payload) == report

    def test_render_text_sections(self):
        report = RunReport.from_snapshot(self._snapshot(), command="matrix")
        text = report.render_text()
        assert "command=matrix" in text
        assert "counters:" in text and "engine.batches" in text
        assert "worker utilization:" in text  # both wall + batch timers set

    def test_validate_rejects_unknown_and_malformed(self):
        assert validate_report("nope") == ["report is not a JSON object"]
        payload = RunReport.from_snapshot(self._snapshot(), command="x").to_json()
        payload["counters"]["made.up"] = 1
        payload["counters"]["engine.batches"] = -1
        payload["schema"] = 99
        problems = validate_report(payload)
        assert any("made.up" in p for p in problems)
        assert any("engine.batches" in p for p in problems)
        assert any("schema" in p for p in problems)

    def test_diff_reports_counters_only(self):
        a = RunReport(command="hunt", counters={"engine.cache.hit": 0,
                                                "engine.cache.miss": 8})
        b = RunReport(command="hunt", counters={"engine.cache.hit": 8,
                                                "engine.cache.miss": 0})
        text = diff_reports(a, b)
        assert "engine.cache.hit" in text and "(+8)" in text
        assert "(-8)" in text
        assert "(identical)" in diff_reports(a, a)

    def test_load_report_resolves_dirs_and_rejects_junk(self, tmp_path):
        report = RunReport.from_snapshot(self._snapshot(), command="hunt")
        (tmp_path / "stats.json").write_text(report.render_json())
        assert load_report(str(tmp_path)) == report
        assert load_report(str(tmp_path / "stats.json")) == report
        with pytest.raises(OSError):
            load_report(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report(str(bad))
        bad.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="invalid run report"):
            load_report(str(bad))


class TestEngineCounters:
    def test_cache_cold_then_warm_counters(self, tmp_path):
        from repro.engine import evaluate_cells
        from repro.engine.cells import VerdictSpec
        from repro.litmus.registry import get_test

        cells = [
            VerdictSpec(get_test(name), model)
            for name in ("dekker", "mp")
            for model in ("sc", "gam")
        ]
        with collecting() as cold:
            evaluate_cells(cells, cache_dir=str(tmp_path))
        cold_counts = cold.snapshot().counters
        assert cold_counts["engine.cache.miss"] == len(cells)
        assert cold_counts["engine.cache.store"] == len(cells)
        assert cold_counts["engine.cells.evaluated"] == len(cells)
        assert "engine.cache.hit" not in cold_counts
        with collecting() as warm:
            evaluate_cells(cells, cache_dir=str(tmp_path))
        warm_counts = warm.snapshot().counters
        assert warm_counts["engine.cache.hit"] == len(cells)
        assert warm_counts["engine.cache.hit.by.gam"] == 2
        assert "engine.cache.miss" not in warm_counts
        assert "engine.cells.evaluated" not in warm_counts

    def test_dispatch_counters_partition_the_queries(self):
        from repro.engine import evaluate_cells
        from repro.engine.cells import VerdictSpec
        from repro.litmus.registry import get_test

        cells = [
            VerdictSpec(get_test("mp"), model) for model in ("sc", "gam", "arm")
        ]
        with collecting() as recorder:
            evaluate_cells(cells)
        counts = recorder.snapshot().counters
        dispatched = sum(
            counts.get(name, 0)
            for name in (
                "engine.dispatch.kernel",
                "engine.dispatch.orders",
                "engine.dispatch.backtracker",
            )
        )
        # One dispatch decision per verdict query.
        assert dispatched == len(cells)

    @pytest.mark.slow
    def test_jobs2_counters_equal_serial(self):
        from repro.eval.litmus_matrix import litmus_matrix
        from repro.litmus.registry import get_test

        tests = [get_test("dekker"), get_test("mp"), get_test("corr")]
        with collecting() as serial:
            serial_cells = litmus_matrix(tests=tests, jobs=1)
        with collecting() as pooled:
            pooled_cells = litmus_matrix(tests=tests, jobs=2)
        assert serial_cells == pooled_cells
        assert serial.snapshot().counters == pooled.snapshot().counters


class TestWorkerErrors:
    def test_run_batch_ships_traceback_as_data(self):
        from repro.engine.scheduler import _run_batch

        from repro.engine.faults import FaultPlan

        broken = types.SimpleNamespace(name="boom")
        outcome = _run_batch((0, 1, broken, [object()], None, False, FaultPlan()))
        tag, test_name, message, worker_tb = outcome
        assert tag == "error"
        assert test_name == "boom"
        assert "Traceback (most recent call last)" in worker_tb

    @pytest.mark.slow
    def test_pooled_failure_raises_with_worker_traceback(self):
        from repro.engine import EngineWorkerError, evaluate_cells
        from repro.engine.cells import VerdictSpec
        from repro.litmus.registry import get_test

        cells = [
            VerdictSpec(get_test("dekker"), "gam"),
            VerdictSpec(get_test("mp"), "no-such-model"),
        ]
        with pytest.raises(EngineWorkerError) as excinfo:
            evaluate_cells(cells, jobs=2)
        assert excinfo.value.test_name == "mp"
        assert "worker traceback" in str(excinfo.value)
        assert "Traceback (most recent call last)" in excinfo.value.worker_traceback


class TestHuntStats:
    def _hunt(self, out, **kwargs):
        from repro.campaign import run_hunt

        return run_hunt(out=str(out), suite="gen:edges=3", num_shards=2,
                        log=lambda line: None, **kwargs)

    def test_hunt_writes_validating_stats_json(self, tmp_path):
        self._hunt(tmp_path / "camp")
        report = load_report(str(tmp_path / "camp"))
        assert report.command == "hunt"
        assert validate_report(report.to_json()) == []
        assert report.counters["campaign.shards.evaluated"] == 2
        assert report.meta["suite"] == "gen:edges=3"

    def test_resume_overwrites_with_resumed_counters(self, tmp_path):
        self._hunt(tmp_path / "camp")
        cold = load_report(str(tmp_path / "camp"))
        self._hunt(tmp_path / "camp", resume=True)
        warm = load_report(str(tmp_path / "camp"))
        assert warm.counters["campaign.shards.resumed"] == 2
        assert "campaign.shards.evaluated" not in warm.counters
        # The cold/warm pair is exactly what `repro stats A B` is for.
        assert "campaign.shards.resumed" in diff_reports(cold, warm)

    def test_heartbeat_lines_are_opt_in(self, tmp_path):
        from repro.campaign import run_hunt

        # Match the line shape, not the bare word: pytest's tmp_path
        # contains this test's name, which run_hunt logs in path lines.
        lines: list[str] = []
        run_hunt(out=str(tmp_path / "a"), suite="gen:edges=3", num_shards=2,
                 log=lines.append)
        assert not any(line.lstrip().startswith("heartbeat:") for line in lines)
        beats: list[str] = []
        run_hunt(out=str(tmp_path / "b"), suite="gen:edges=3", num_shards=2,
                 log=beats.append, heartbeat=True)
        assert any(line.lstrip().startswith("heartbeat:") for line in beats)


class TestCliStats:
    def test_stats_off_stdout_is_byte_identical(self, capsys):
        from repro.cli import main

        main(["matrix", "--suite", "gen:edges=3"])
        plain = capsys.readouterr()
        main(["matrix", "--suite", "gen:edges=3", "--stats"])
        with_stats = capsys.readouterr()
        assert with_stats.out == plain.out
        assert plain.err == ""
        assert "run report" in with_stats.err

    def test_stats_json_goes_to_stderr_and_validates(self, capsys):
        from repro.cli import main

        assert main(["matrix", "--suite", "gen:edges=3", "--stats", "json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.err)
        assert validate_report(payload) == []
        assert payload["command"] == "matrix"
        assert payload["meta"]["suite"] == "gen:edges=3"

    def test_stats_command_renders_and_diffs(self, tmp_path, capsys):
        from repro.cli import main

        camp = tmp_path / "camp"
        assert main(["hunt", "--out", str(camp), "--suite", "gen:edges=3",
                     "--shards", "2", "--stats"]) == 0
        hunt_out = capsys.readouterr()
        assert "heartbeat" in hunt_out.out
        assert "command=hunt" in hunt_out.err
        assert main(["stats", str(camp)]) == 0
        assert "run report — command=hunt" in capsys.readouterr().out
        assert main(["stats", str(camp), "--format", "json"]) == 0
        assert validate_report(json.loads(capsys.readouterr().out)) == []
        assert main(["stats", str(camp), str(camp)]) == 0
        assert "(identical)" in capsys.readouterr().out

    def test_stats_command_rejects_bad_input(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 99}')
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err


def test_registry_is_documented_and_typed():
    # Every metric has a kind the report layer understands and docs text.
    for name, spec in METRICS.items():
        assert spec.kind in ("counter", "timer", "histogram"), name
        assert spec.unit and spec.description, name
        assert spec.name == name
