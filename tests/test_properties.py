"""Property-based tests (hypothesis) for core invariants.

The key model-theory properties:

* **strength ordering** — SC ⊆ TSO ⊆ GAM ⊆ GAM0 ⊆ alpha-like outcome sets,
  and GAM ⊆ ARM (SALdLdARM is strictly weaker than SALdLd);
* **per-location SC** — every GAM execution is coherent (Section III-E1);
* **definition equivalence** — the Figure 17 machine and the axioms agree
  on random programs;

plus structural invariants of expressions, dependencies, ppo and the cache.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.axiomatic import enumerate_executions, enumerate_outcomes
from repro.core.dependencies import adep_edges, ddep_edges
from repro.core.perloc_sc import execution_is_per_location_sc
from repro.core.ppo import PpoContext, compute_ppo, transitive_closure
from repro.equivalence.checker import check_pair
from repro.equivalence.randprog import RandomProgramConfig, random_litmus_test
from repro.isa.expr import BinOp, Const, Reg, UnOp, evaluate, registers_read
from repro.models.registry import get_model

# ---------------------------------------------------------------------------
# Expression properties
# ---------------------------------------------------------------------------

_REG_NAMES = ("r0", "r1", "r2")


def _exprs(depth=3):
    base = st.one_of(
        st.integers(-100, 100).map(Const),
        st.sampled_from(_REG_NAMES).map(Reg),
    )
    return st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(st.sampled_from("+-*^&|"), children, children).map(
                lambda t: BinOp(t[0], t[1], t[2])
            ),
            st.tuples(st.sampled_from(("-", "~", "!")), children).map(
                lambda t: UnOp(t[0], t[1])
            ),
        ),
        max_leaves=8,
    )


@given(_exprs(), st.dictionaries(st.sampled_from(_REG_NAMES), st.integers(-50, 50)))
def test_evaluate_needs_exactly_the_read_set(expr, partial_regs):
    regs = {name: partial_regs.get(name, 0) for name in _REG_NAMES}
    value = evaluate(expr, regs)
    # Restricting the register file to the syntactic read set is enough.
    restricted = {name: regs[name] for name in registers_read(expr)}
    assert evaluate(expr, restricted) == value


@given(_exprs())
def test_registers_read_subset_of_known(expr):
    assert registers_read(expr) <= set(_REG_NAMES)


@given(_exprs(), st.integers(-50, 50))
def test_evaluate_ignores_unread_registers(expr, noise):
    regs = {name: 1 for name in _REG_NAMES}
    value = evaluate(expr, regs)
    regs_plus = dict(regs)
    regs_plus["unrelated"] = noise
    assert evaluate(expr, regs_plus) == value


# ---------------------------------------------------------------------------
# Dependency / ppo invariants on random programs
# ---------------------------------------------------------------------------

_FAST_CONFIG = RandomProgramConfig(num_procs=2, max_instrs=4)
_PROPERTY_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _first_runs(test):
    """A representative run per processor (loads read 0)."""
    runs = []
    for program in test.programs:
        values = {index: 0 for index in program.load_indices()}
        runs.append(program.execute(values))
    return runs


@_PROPERTY_SETTINGS
@given(st.integers(0, 10_000))
def test_adep_subset_of_ddep_on_random_programs(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    for run in _first_runs(test):
        assert adep_edges(run) <= ddep_edges(run)


@_PROPERTY_SETTINGS
@given(st.integers(0, 10_000))
def test_ppo_edges_point_forward_and_close(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    gam = get_model("gam")
    for run in _first_runs(test):
        ctx = PpoContext.from_run(run)
        ppo = compute_ppo(ctx, gam.clauses)
        position = {e.index: i for i, e in enumerate(ctx.executed)}
        assert all(position[a] < position[b] for a, b in ppo)
        assert transitive_closure(ctx, ppo) == ppo


@_PROPERTY_SETTINGS
@given(st.integers(0, 10_000))
def test_gam_memory_ppo_subset_of_sc(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    from repro.core.ppo import project_to_memory

    gam, sc = get_model("gam"), get_model("sc")
    for run in _first_runs(test):
        ctx = PpoContext.from_run(run)
        gam_edges = project_to_memory(ctx, compute_ppo(ctx, gam.clauses))
        sc_edges = project_to_memory(ctx, compute_ppo(ctx, sc.clauses))
        assert gam_edges <= sc_edges


# ---------------------------------------------------------------------------
# Model-strength ordering and coherence
# ---------------------------------------------------------------------------

_CHAIN = ("sc", "tso", "gam", "gam0", "alpha_like")


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_model_strength_chain(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    outcome_sets = [
        enumerate_outcomes(test, get_model(name), project="full") for name in _CHAIN
    ]
    for weaker_name, stronger, weaker in zip(
        _CHAIN[1:], outcome_sets, outcome_sets[1:]
    ):
        assert stronger <= weaker, f"containment broken entering {weaker_name}"


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_gam_contained_in_arm(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    gam = enumerate_outcomes(test, get_model("gam"), project="full")
    arm = enumerate_outcomes(test, get_model("arm"), project="full")
    assert gam <= arm


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_every_gam_execution_is_per_location_sc(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    for execution in enumerate_executions(test, get_model("gam")):
        assert execution_is_per_location_sc(execution)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10_000))
def test_operational_equals_axiomatic_on_random_programs(seed):
    test = random_litmus_test(seed, _FAST_CONFIG)
    report = check_pair(test, "gam")
    assert report.equivalent


# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 1 << 16), min_size=1, max_size=120))
def test_cache_accounting_invariants(addresses):
    from repro.sim.cache import CacheLevel
    from repro.sim.config import CacheConfig

    level = CacheLevel("t", CacheConfig(size_kb=1, ways=2, hit_latency=1, mshrs=4))
    lookups = 0
    for addr in addresses:
        hit = level.lookup(addr)
        lookups += 1
        if not hit:
            level.insert(addr)
        assert level.probe(addr)  # present after lookup-or-fill
    assert level.hits + level.misses == lookups
    for ways in level._sets:
        assert len(ways) <= level.config.ways


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=60), st.booleans())
def test_hierarchy_monotonic_ready_times(addresses, as_store):
    from repro.sim.cache import CacheHierarchy
    from repro.sim.config import CoreConfig

    hierarchy = CacheHierarchy(CoreConfig.tiny())
    now = 0
    for addr in addresses:
        result = hierarchy.access(addr, now, is_store=as_store)
        assert result.ready_cycle > now
        assert result.level in ("l1", "l2", "l3", "mem")
        now += 1


# ---------------------------------------------------------------------------
# Simulator conservation laws
# ---------------------------------------------------------------------------


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 1000), st.sampled_from(["gcc.166", "namd", "lbm"]))
def test_simulator_conserves_uops(seed, workload):
    from repro.sim import ALL_POLICIES, simulate
    from repro.workloads import generate_trace, get_profile

    trace = generate_trace(get_profile(workload), length=600, seed=seed)
    for policy in ALL_POLICIES:
        stats = simulate(trace, policy)
        assert stats.committed_uops == len(trace)
        assert stats.cycles > 0
        mem_levels = (
            stats.l1_load_hits
            + stats.l2_load_hits
            + stats.l3_load_hits
            + stats.memory_loads
        )
        assert stats.l1_load_misses == mem_levels - stats.l1_load_hits
        assert stats.saldld_kills == 0 or policy.saldld_kills
        assert stats.saldld_stalls == 0 or policy.saldld_stalls
        assert stats.ldld_forwards == 0 or policy.ldld_forwarding
