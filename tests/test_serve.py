"""Verdict-as-a-service: protocol codec, daemon, client and shared store.

Exercises all three layers of ``repro.serve`` (see ``docs/serving.md``):
the wire codec must round-trip cells and results losslessly, the daemon
must answer every endpoint with the same results the local engine
produces (cache-first on a warm store), and ``RemoteScheduler`` must
honour the failure discipline — transparent local fallback for an
unreachable server, one retry for a dropped connection, a hard error
for a protocol or engine-version mismatch.  The shared store's
concurrency contract (multi-process writers, crash-orphan guards,
export/import refusals) is pinned here too.
"""

import json
import multiprocessing
import os
import tarfile
import io

import pytest

from repro.engine import (
    CellFailure,
    ResultCache,
    CacheTransferError,
    OutcomeSpec,
    VerdictSpec,
    cell_cache_key,
    evaluate_cells,
    parse_fault_plan,
)
from repro.engine.cells import ENGINE_VERSION
from repro.litmus.registry import get_test
from repro.obs import collecting
from repro.serve import (
    ENDPOINTS,
    PROTOCOL_VERSION,
    RemoteScheduler,
    ServeClient,
    ServeDroppedError,
    ServeProtocolError,
    VerdictServer,
    VerdictService,
    decode_cell,
    decode_result,
    encode_cell,
    encode_result,
)
from repro.serve.protocol import (
    check_handshake,
    error_envelope,
    request_envelope,
)


def _verdict_cells(*names, models=("sc", "gam")):
    return [
        VerdictSpec(get_test(name), model) for name in names for model in models
    ]


def _body(cells):
    return request_envelope([encode_cell(cell) for cell in cells])


@pytest.fixture
def service(tmp_path):
    svc = VerdictService(tmp_path / "store", workers=1, dispatchers=2)
    yield svc
    svc.close()


class TestWireCodec:
    def test_verdict_cell_round_trips(self):
        cell = VerdictSpec(get_test("mp"), "gam")
        wire = encode_cell(cell)
        assert wire["kind"] == "verdict"
        assert "po" in wire["model"]  # model ships as spec text, not a name
        decoded = decode_cell(json.loads(json.dumps(wire)))
        assert isinstance(decoded, VerdictSpec)
        assert cell_cache_key(decoded) == cell_cache_key(cell)

    def test_outcomes_cell_round_trips(self):
        cell = OutcomeSpec(get_test("dekker"), "sc", oracle="operational:sc")
        decoded = decode_cell(encode_cell(cell))
        assert isinstance(decoded, OutcomeSpec)
        assert decoded.project == "full"
        assert decoded.oracle == "operational:sc"
        assert cell_cache_key(decoded) == cell_cache_key(cell)

    def test_results_round_trip(self):
        assert decode_result(encode_result(True)) is True
        assert decode_result(encode_result(False)) is False
        (outcomes,) = evaluate_cells([OutcomeSpec(get_test("mp"), "gam")])
        assert decode_result(encode_result(outcomes)) == outcomes

    def test_failure_round_trips_as_real_sentinel(self):
        failure = CellFailure("mp", "timeout", "deadline", attempts=2)
        decoded = decode_result(encode_result(failure))
        assert isinstance(decoded, CellFailure)
        assert (decoded.test_name, decoded.reason, decoded.attempts) == (
            "mp",
            "timeout",
            2,
        )

    @pytest.mark.parametrize(
        "payload",
        [
            "not-an-object",
            {"kind": "pickle"},
            {"kind": "verdict", "test": 7, "model": "sc"},
            {"kind": "verdict", "test": "not litmus", "model": "po; rf"},
        ],
    )
    def test_bad_cells_are_bad_requests(self, payload):
        with pytest.raises(ServeProtocolError) as excinfo:
            decode_cell(payload)
        assert excinfo.value.kind == "bad-request"

    def test_bad_results_are_bad_requests(self):
        for payload in (
            {"kind": "mystery"},
            {"kind": "failure", "test": "mp", "reason": "gremlins", "message": ""},
            {"kind": "verdict"},
        ):
            with pytest.raises(ServeProtocolError) as excinfo:
                decode_result(payload)
            assert excinfo.value.kind == "bad-request"

    def test_handshake_refuses_mismatches(self):
        good = request_envelope()
        check_handshake(good, "client")  # no raise
        with pytest.raises(ServeProtocolError) as excinfo:
            check_handshake({**good, "protocol": PROTOCOL_VERSION + 1}, "client")
        assert excinfo.value.kind == "protocol-mismatch"
        with pytest.raises(ServeProtocolError) as excinfo:
            check_handshake({**good, "engine_version": -1}, "client")
        assert excinfo.value.kind == "engine-version-mismatch"

    def test_error_envelope_vocabulary_is_closed(self):
        envelope = error_envelope("bad-request", "nope")
        assert envelope["error"] == {"kind": "bad-request", "message": "nope"}
        with pytest.raises(ValueError, match="unknown error kind"):
            error_envelope("teapot", "I'm one")


class TestVerdictService:
    def test_verdict_endpoint_matches_local_engine(self, service):
        cell = VerdictSpec(get_test("mp"), "gam")
        status, payload = service.handle("verdict", _body([cell]))
        assert status == 200
        (result,) = [decode_result(r) for r in payload["results"]]
        assert result == evaluate_cells([cell])[0]
        assert payload["stats"] == {"remote_hits": 0, "evaluated": 1}

    def test_matrix_endpoint_preserves_request_order(self, service):
        cells = _verdict_cells("mp", "dekker", "lb")
        status, payload = service.handle("matrix", _body(cells))
        assert status == 200
        remote = [decode_result(r) for r in payload["results"]]
        assert remote == evaluate_cells(cells)

    def test_check_endpoint_ships_outcome_sets(self, service):
        cells = [
            OutcomeSpec(get_test("mp"), "gam"),
            OutcomeSpec(get_test("mp"), "gam", oracle="operational:gam"),
        ]
        status, payload = service.handle("check", _body(cells))
        assert status == 200
        remote = [decode_result(r) for r in payload["results"]]
        assert remote == evaluate_cells(cells)

    def test_warm_pass_answers_from_the_shared_store(self, service):
        cells = _verdict_cells("mp", "dekker")
        _, cold = service.handle("batch", _body(cells))
        assert cold["stats"] == {"remote_hits": 0, "evaluated": 4}
        _, warm = service.handle("batch", _body(cells))
        assert warm["stats"] == {"remote_hits": 4, "evaluated": 0}
        assert warm["results"] == cold["results"]
        counters = service.counters()
        assert counters["serve.cache.remote_hits"] == 4
        assert counters["serve.requests"] == 2

    def test_endpoint_schemas_are_enforced(self, service):
        verdict = VerdictSpec(get_test("mp"), "sc")
        outcome = OutcomeSpec(get_test("mp"), "sc")
        for endpoint, cells in (
            ("verdict", [verdict, verdict]),
            ("matrix", [outcome]),
            ("check", [verdict]),
        ):
            status, payload = service.handle(endpoint, _body(cells))
            assert status == 400
            assert payload["error"]["kind"] == "bad-request"
        status, payload = service.handle("batch", request_envelope([]))
        assert status == 400

    def test_unknown_endpoint_and_handshake_refusals(self, service):
        status, payload = service.handle("teapot", request_envelope())
        assert status == 404
        assert payload["error"]["kind"] == "unknown-endpoint"
        body = _body([VerdictSpec(get_test("mp"), "sc")])
        status, payload = service.handle("batch", {**body, "protocol": 999})
        assert status == 409
        assert payload["error"]["kind"] == "protocol-mismatch"
        status, payload = service.handle("batch", {**body, "engine_version": 1})
        assert status == 409
        assert payload["error"]["kind"] == "engine-version-mismatch"
        assert service.counters()["serve.errors"] == 3

    def test_status_payload_describes_the_daemon(self, service):
        status, payload = service.handle("status", {})
        assert status == 200
        assert payload["protocol"] == PROTOCOL_VERSION
        assert payload["engine_version"] == ENGINE_VERSION
        assert payload["endpoints"] == sorted(ENDPOINTS)
        assert payload["workers"] == 1
        assert payload["cache"]["entries"] == 0


class TestVerdictServer:
    def test_http_round_trip_and_status(self, tmp_path):
        service = VerdictService(tmp_path / "store", workers=1)
        server = VerdictServer(service).start()
        try:
            client = ServeClient(server.url)
            status = client.status()
            assert status["endpoints"] == sorted(ENDPOINTS)
            cells = _verdict_cells("mp")
            payload = client.post("batch", _body(cells))
            remote = [decode_result(r) for r in payload["results"]]
            assert remote == evaluate_cells(cells)
            with pytest.raises(ServeProtocolError) as excinfo:
                client.post("teapot", request_envelope())
            assert excinfo.value.kind == "unknown-endpoint"
        finally:
            server.close()

    def test_stale_client_is_refused_not_served(self, tmp_path):
        service = VerdictService(tmp_path / "store", workers=1)
        server = VerdictServer(service).start()
        try:
            client = ServeClient(server.url)
            body = {**_body(_verdict_cells("mp")), "protocol": 999}
            with pytest.raises(ServeProtocolError) as excinfo:
                client.post("batch", body)
            assert excinfo.value.kind == "protocol-mismatch"
        finally:
            server.close()


class _StubClient:
    """A scriptable transport: each entry is an exception or a service."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def post(self, endpoint, body):
        self.calls += 1
        action = self.script.pop(0) if self.script else self.script
        if isinstance(action, Exception):
            raise action
        status, payload = action.handle(endpoint, body)
        error = payload.get("error")
        if error is not None:
            raise ServeProtocolError(error["kind"], error["message"])
        return payload


class TestRemoteScheduler:
    def test_remote_results_equal_local(self, tmp_path):
        service = VerdictService(tmp_path / "store", workers=1)
        server = VerdictServer(service).start()
        try:
            scheduler = RemoteScheduler(server.url)
            cells = _verdict_cells("mp", "dekker") + [OutcomeSpec(get_test("lb"), "gam")]
            with collecting() as recorder:
                remote = scheduler.evaluate_cells(cells)
            assert remote == evaluate_cells(cells)
            counters = recorder.snapshot().counters
            assert counters["serve.client.requests"] == 1
            assert "serve.client.fallbacks" not in counters
        finally:
            server.close()

    def test_remote_warm_pass_reports_store_hits(self, tmp_path):
        service = VerdictService(tmp_path / "store", workers=1)
        server = VerdictServer(service).start()
        try:
            scheduler = RemoteScheduler(server.url)
            cells = _verdict_cells("mp")
            scheduler.evaluate_cells(cells)
            with collecting() as recorder:
                scheduler.evaluate_cells(cells)
            assert recorder.snapshot().counters["serve.cache.remote_hits"] == 2
        finally:
            server.close()

    def test_server_down_falls_back_transparently(self):
        scheduler = RemoteScheduler("http://127.0.0.1:1", timeout=0.5)
        cells = _verdict_cells("mp")
        with collecting() as recorder:
            results = scheduler.evaluate_cells(cells)
        assert results == evaluate_cells(cells)
        counters = recorder.snapshot().counters
        assert counters["serve.client.requests"] == 1
        assert counters["serve.client.fallbacks"] == 1
        assert "serve.client.retries" not in counters

    def test_dropped_connection_retries_once_then_succeeds(self, service):
        stub = _StubClient([ServeDroppedError("mid-request"), service])
        scheduler = RemoteScheduler("http://stub", client=stub)
        cells = _verdict_cells("mp")
        with collecting() as recorder:
            results = scheduler.evaluate_cells(cells)
        assert results == evaluate_cells(cells)
        counters = recorder.snapshot().counters
        assert stub.calls == 2
        assert counters["serve.client.requests"] == 1
        assert counters["serve.client.retries"] == 1
        assert "serve.client.fallbacks" not in counters

    def test_dropped_twice_falls_back_without_double_counting(self):
        stub = _StubClient(
            [ServeDroppedError("first"), ServeDroppedError("second")]
        )
        scheduler = RemoteScheduler("http://stub", client=stub)
        cells = _verdict_cells("mp")
        with collecting() as recorder:
            results = scheduler.evaluate_cells(cells)
        assert results == evaluate_cells(cells)
        counters = recorder.snapshot().counters
        assert stub.calls == 2
        assert counters["serve.client.requests"] == 1
        assert counters["serve.client.retries"] == 1
        assert counters["serve.client.fallbacks"] == 1

    def test_version_mismatch_is_a_hard_error_not_a_fallback(self):
        stub = _StubClient(
            [ServeProtocolError("engine-version-mismatch", "old build")]
        )
        scheduler = RemoteScheduler("http://stub", client=stub)
        with collecting() as recorder:
            with pytest.raises(ServeProtocolError) as excinfo:
                scheduler.evaluate_cells(_verdict_cells("mp"))
        assert excinfo.value.kind == "engine-version-mismatch"
        assert "serve.client.fallbacks" not in recorder.snapshot().counters

    def test_armed_fault_plan_stays_local(self):
        stub = _StubClient([])  # any post would raise IndexError-ish
        scheduler = RemoteScheduler("http://stub", client=stub)
        plan = parse_fault_plan("raise:test=no-such-test")
        cells = _verdict_cells("mp")
        with collecting() as recorder:
            results = scheduler.evaluate_cells(cells, fault_plan=plan)
        assert results == evaluate_cells(cells)
        assert stub.calls == 0
        assert recorder.snapshot().counters["serve.client.fallbacks"] == 1

    def test_on_batch_fires_per_test_like_the_engine(self, service):
        scheduler = RemoteScheduler("http://stub", client=_StubClient([service]))
        cells = _verdict_cells("mp", "dekker")
        seen = []
        scheduler.evaluate_cells(
            cells, on_batch=lambda test, batch: seen.append((test.name, len(batch)))
        )
        assert seen == [("mp", 2), ("dekker", 2)]

    def test_bad_urls_are_rejected_eagerly(self):
        with pytest.raises(ValueError, match="scheme"):
            ServeClient("ftp://host:1")
        with pytest.raises(ValueError, match="no host"):
            ServeClient("http://")
        assert ServeClient("localhost:7907").port == 7907


def _hammer_store(root, names, rounds):
    """One writer process: store/load the same keys over and over."""
    cache = ResultCache(root)
    cells = [
        VerdictSpec(get_test(name), model)
        for name in names
        for model in ("sc", "gam")
    ]
    expected = {cell_cache_key(c): evaluate_cells([c])[0] for c in cells}
    for _ in range(rounds):
        for cell in cells:
            cache.store(cell, expected[cell_cache_key(cell)])
            loaded = cache.load(cell)
            if loaded is not None and loaded != expected[cell_cache_key(cell)]:
                return f"torn read for {cell_cache_key(cell)}"
    return "ok"


class TestConcurrentStore:
    def test_two_processes_hammer_one_store(self, tmp_path):
        """Satellite regression: concurrent multi-process writers are safe."""
        root = str(tmp_path / "store")
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(2) as pool:
            outcomes = pool.starmap(
                _hammer_store, [(root, ("mp", "dekker"), 25), (root, ("mp", "dekker"), 25)]
            )
        assert outcomes == ["ok", "ok"]
        stats = ResultCache(root).stats()
        assert stats.entries == 4
        assert stats.tmp_files == 0  # no crash orphans from the race

    def test_failed_spool_leaves_no_orphan(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cell = VerdictSpec(get_test("mp"), "sc")

        def _explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", _explode)
        with pytest.raises(OSError, match="disk full"):
            cache.store(cell, True)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_store_survives_directory_deletion(self, tmp_path):
        root = tmp_path / "store"
        cache = ResultCache(root)
        cell = VerdictSpec(get_test("mp"), "sc")
        cache.store(cell, True)
        for entry in root.iterdir():
            entry.unlink()
        root.rmdir()  # a concurrent purge removed the whole directory
        cache.store(cell, True)
        assert cache.load(cell) is True


class TestCacheTransfer:
    def _warm(self, root):
        cells = _verdict_cells("mp", "dekker")
        evaluate_cells(cells, cache_dir=str(root))
        return cells

    def test_export_import_round_trip(self, tmp_path):
        source, target = tmp_path / "src", tmp_path / "dst"
        cells = self._warm(source)
        tarball = tmp_path / "store.tar.gz"
        assert ResultCache(source).export_tarball(tarball) == len(cells)
        imported = ResultCache(target)
        assert imported.import_tarball(tarball) == (len(cells), 0)
        for cell in cells:
            assert imported.load(cell) == evaluate_cells([cell])[0]
        # a second import is a no-op, not a conflict
        assert imported.import_tarball(tarball) == (0, len(cells))

    def test_export_is_deterministic(self, tmp_path):
        # gzip headers carry the archive's own name/mtime, so compare the
        # *tar contents*: member order, metadata and payload bytes.
        self._warm(tmp_path / "store")
        cache = ResultCache(tmp_path / "store")
        cache.export_tarball(tmp_path / "a.tar.gz")
        cache.export_tarball(tmp_path / "b.tar.gz")

        def _members(path):
            with tarfile.open(path, "r:gz") as tar:
                return [
                    (m.name, m.mtime, m.mode, tar.extractfile(m).read())
                    for m in tar.getmembers()
                ]

        first = _members(tmp_path / "a.tar.gz")
        assert first == _members(tmp_path / "b.tar.gz")
        assert all(mtime == 0 for _, mtime, _, _ in first)

    def test_engine_version_mismatch_is_refused(self, tmp_path, monkeypatch):
        self._warm(tmp_path / "store")
        tarball = tmp_path / "store.tar.gz"
        import repro.engine.cache as cache_module

        monkeypatch.setattr(cache_module, "ENGINE_VERSION", 999)
        ResultCache(tmp_path / "store").export_tarball(tarball)
        monkeypatch.undo()
        with pytest.raises(CacheTransferError, match="engine version 999"):
            ResultCache(tmp_path / "dst").import_tarball(tarball)

    def _craft(self, path, manifest, blobs):
        with tarfile.open(path, "w:gz") as tar:
            for name, data in [("manifest.json", json.dumps(manifest).encode())] + blobs:
                info = tarfile.TarInfo(name)
                info.size = len(data)
                tar.addfile(info, io.BytesIO(data))

    def test_corrupt_and_hostile_archives_are_refused(self, tmp_path):
        target = ResultCache(tmp_path / "dst")
        base = {"format": 1, "engine_version": ENGINE_VERSION}
        bad_digest = tmp_path / "bad-digest.tar.gz"
        self._craft(
            bad_digest,
            {**base, "entries": {"ab12.json": "0" * 64}},
            [("ab12.json", b"{}")],
        )
        with pytest.raises(CacheTransferError, match="digest mismatch"):
            target.import_tarball(bad_digest)

        traversal = tmp_path / "traversal.tar.gz"
        self._craft(traversal, {**base, "entries": {"../evil.json": "0" * 64}}, [])
        with pytest.raises(CacheTransferError, match="not a cache key"):
            target.import_tarball(traversal)

        missing = tmp_path / "missing-entry.tar.gz"
        self._craft(missing, {**base, "entries": {"ab12.json": "0" * 64}}, [])
        with pytest.raises(CacheTransferError, match="missing from archive"):
            target.import_tarball(missing)

        no_manifest = tmp_path / "no-manifest.tar.gz"
        with tarfile.open(no_manifest, "w:gz") as tar:
            info = tarfile.TarInfo("ab12.json")
            info.size = 2
            tar.addfile(info, io.BytesIO(b"{}"))
        with pytest.raises(CacheTransferError, match="not a cache export"):
            target.import_tarball(no_manifest)

        assert target.stats().entries == 0  # nothing was half-imported
