"""Unit tests for the axiomatic checking engine internals."""

import pytest

from repro.core.axiomatic import (
    DomainOverflowError,
    MemoryModel,
    enumerate_executions,
    enumerate_outcomes,
    is_allowed,
    value_domain,
)
from repro.core.ppo import FenceOrd, SAMemSt
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.registry import get_test
from repro.models.registry import get_model


class TestValueDomain:
    def test_includes_initial_and_stored_values(self):
        test = get_test("dekker")
        domain = value_domain(test)
        assert 0 in domain and 1 in domain

    def test_includes_asked_values(self):
        test = get_test("oota")
        assert 42 in value_domain(test)

    def test_includes_extra_values(self):
        test = get_test("dekker")
        assert 99 in value_domain(test, extra=(99,))

    def test_closure_through_regops(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().op("r1", 5).st("a", "r1")
        b.proc().ld("r2", "a")
        test = b.build(asked={"P1.r2": 5})
        assert 5 in value_domain(test)

    def test_cross_address_feedback_converges(self):
        # P0 loads a and stores r1+1 to *b*: per-address domains keep the
        # closure finite (a only ever holds 0, so b only ever holds 1).
        from repro.isa.expr import Reg

        b = LitmusBuilder("t", locations=("a", "b"))
        p = b.proc()
        p.ld("r1", "a").op("r2", Reg("r1") + 1).st("b", "r2")
        test = b.build(asked={})
        domain = value_domain(test)
        assert domain == frozenset({0, 1})

    def test_per_address_domains(self):
        from repro.core.axiomatic import value_domains

        b = LitmusBuilder("t", locations=("a", "b"))
        b.init("a", 5)
        b.proc().st("b", 7)
        b.proc().ld("r1", "a").ld("r2", "b")
        test = b.build(asked={})
        domains = value_domains(test)
        assert 5 in domains.for_address(test.locations["a"])
        assert 7 in domains.for_address(test.locations["b"])
        assert 7 not in domains.for_address(test.locations["a"])

    def test_domain_iteration_bounded_by_store_count(self):
        from repro.isa.expr import Reg

        b = LitmusBuilder("t", locations=("a",))
        b.init("a", 1)
        p = b.proc()
        # Abstract feedback doubles per round, but only one store exists,
        # so the closure stops after (stores + 1) rounds instead of
        # diverging.
        p.ld("r1", "a").op("r2", Reg("r1") * 2).st("a", "r2")
        test = b.build(asked={})
        domain = value_domain(test)
        assert {1, 2} <= domain and len(domain) <= 6

    def test_domain_cap_enforced(self):
        from repro.isa.expr import Reg

        b = LitmusBuilder("t", locations=("a",))
        b.init("a", 1)
        p = b.proc()
        p.ld("r1", "a").op("r2", Reg("r1") * 2).st("a", "r2")
        test = b.build(asked={})
        with pytest.raises(DomainOverflowError):
            value_domain(test, cap=2)


class TestModelValidation:
    def test_rejects_unknown_load_value(self):
        with pytest.raises(ValueError):
            MemoryModel(name="bad", clauses=(SAMemSt(),), load_value="weird")

    def test_rejects_incoherent_store_order(self):
        with pytest.raises(ValueError):
            MemoryModel(name="bad", clauses=(FenceOrd(),))

    def test_clause_names(self):
        model = get_model("gam")
        assert "SALdLd" in model.clause_names()
        assert "SAMemSt" in model.clause_names()


class TestEnumeration:
    def test_dekker_outcome_count_under_sc(self):
        # SC allows exactly the three outcomes of Figure 2.
        test = get_test("dekker")
        outcomes = enumerate_outcomes(test, get_model("sc"))
        values = {
            tuple(sorted(o.reg_bindings().items())) for o in outcomes
        }
        assert len(values) == 3

    def test_dekker_gam_adds_the_fourth(self):
        test = get_test("dekker")
        outcomes = enumerate_outcomes(test, get_model("gam"))
        assert len(outcomes) == 4

    def test_executions_carry_consistent_rf(self):
        test = get_test("dekker")
        for execution in enumerate_executions(test, get_model("gam")):
            for load in execution.loads():
                source = execution.event(execution.rf[load.eid])
                assert source.is_store
                assert source.addr == load.addr
                assert source.value == load.value

    def test_mo_is_total_over_memory_events(self):
        test = get_test("dekker")
        execution = next(iter(enumerate_executions(test, get_model("gam"))))
        assert len(execution.mo) == len(execution.events) + len(execution.inits)

    def test_final_memory_is_mo_youngest_store(self):
        test = get_test("coww")
        for execution in enumerate_executions(test, get_model("gam")):
            addr = test.locations["a"]
            stores = [
                execution.event(eid)
                for eid in execution.mo
                if execution.event(eid).is_store and execution.event(eid).addr == addr
            ]
            assert execution.final_mem[addr] == stores[-1].value

    def test_is_allowed_requires_an_asked_outcome(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1)
        test = b.build()
        with pytest.raises(ValueError):
            is_allowed(test, get_model("gam"))

    def test_is_allowed_with_explicit_outcome(self):
        test = get_test("dekker")
        outcome = test.parse_outcome({"P0.r1": 1, "P1.r2": 1})
        assert is_allowed(test, get_model("sc"), outcome)

    def test_projection_full_vs_observed(self):
        test = get_test("dekker")
        observed = enumerate_outcomes(test, get_model("sc"), project="observed")
        full = enumerate_outcomes(test, get_model("sc"), project="full")
        assert len(full) >= len(observed)

    def test_projection_rejects_unknown_mode(self):
        test = get_test("dekker")
        with pytest.raises(ValueError):
            enumerate_outcomes(test, get_model("sc"), project="bogus")

    def test_single_processor_program(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 7).ld("r1", "a")
        test = b.build(asked={"P0.r1": 7})
        assert is_allowed(test, get_model("gam"))
        assert not is_allowed(test, get_model("gam"), test.parse_outcome({"P0.r1": 0}))

    def test_branchy_program_enumerates_both_paths(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1)
        p1 = b.proc()
        p1.ld("r1", "a")
        p1.branch(("r1", "==", 0), "end")
        p1.op("r2", 5)
        p1.label("end")
        test = b.build(asked={"P1.r2": 5}, observed=[(1, "r1"), (1, "r2")])
        outcomes = enumerate_outcomes(test, get_model("gam"))
        r2_values = set()
        for outcome in outcomes:
            r2_values.add(outcome.reg_bindings()[(1, "r2")])
        assert r2_values == {0, 5}


class TestLoadValueAxiomVariants:
    def test_sc_load_value_equals_gam_load_value_under_sc(self):
        # LoadValueSC == LoadValueGAM when ppo is total (Section IV remark).
        for name in ("dekker", "corr", "cowr", "store-forwarding"):
            test = get_test(name)
            sc = enumerate_outcomes(test, get_model("sc"), project="full")
            sc_gamlv = enumerate_outcomes(test, get_model("sc-gamlv"), project="full")
            assert sc == sc_gamlv, name
