"""Tests for the RMW extension (Section III-C's sketch made concrete)."""

import pytest

from repro.core.axiomatic import enumerate_executions, enumerate_outcomes, is_allowed
from repro.core.events import RMW_STORE_PART, base_index, po_sort_key, store_part
from repro.core.operational import GAM0_MACHINE, GAM_MACHINE, operational_outcomes
from repro.core.perloc_sc import execution_is_per_location_sc
from repro.core.reference_machines import sc_outcomes, tso_outcomes
from repro.equivalence.checker import fuzz_equivalence
from repro.equivalence.randprog import RandomProgramConfig
from repro.isa.expr import Const, Reg
from repro.isa.instructions import Rmw
from repro.isa.program import Program
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.registry import get_test
from repro.models.registry import get_model


class TestRmwInstruction:
    def test_register_sets(self):
        rmw = Rmw("r1", Reg("r2") + 4, Reg("r1") + Reg("r3"))
        assert rmw.read_set() == frozenset({"r2", "r3"})  # dst excluded
        assert rmw.write_set() == frozenset({"r1"})
        assert rmw.addr_read_set() == frozenset({"r2"})

    def test_is_both_load_and_store(self):
        rmw = Rmw("r1", Const(0), Const(1))
        assert rmw.is_load and rmw.is_store and rmw.is_memory

    def test_replay_binds_dst_to_loaded_value(self):
        program = Program([Rmw("r1", Const(0x100), Reg("r1") + 1)])
        run = program.execute({0: 5})
        executed = run.executed[0]
        assert executed.value == 5 and executed.data == 6
        assert run.final_regs["r1"] == 5

    def test_event_index_helpers(self):
        assert store_part(3) == 3 + RMW_STORE_PART
        assert base_index(store_part(3)) == 3
        assert base_index(3) == 3
        assert po_sort_key(store_part(3)) > po_sort_key(3)
        assert po_sort_key(4) > po_sort_key(store_part(3))


class TestAtomicity:
    def test_competing_swaps_exclusive(self):
        test = get_test("rmw-swap")
        for model_name in ("sc", "tso", "gam", "gam0", "alpha_like"):
            outcomes = enumerate_outcomes(test, get_model(model_name), project="full")
            winners = {
                frozenset(o.reg_bindings().items()) for o in outcomes
            }
            assert len(winners) == 2  # exactly (0,1) and (1,0)

    def test_fetch_add_conserves_count(self):
        test = get_test("rmw-fetch-add")
        addr = test.locations["a"]
        for execution in enumerate_executions(test, get_model("gam")):
            assert execution.final_mem[addr] == 2

    def test_rmw_events_adjacent_in_mo(self):
        test = get_test("rmw-swap")
        for execution in enumerate_executions(test, get_model("gam")):
            for position, eid in enumerate(execution.mo):
                if eid[1] >= RMW_STORE_PART:
                    load_eid = (eid[0], base_index(eid[1]))
                    assert execution.mo[position - 1] == load_eid

    def test_rmw_executions_are_per_location_sc(self):
        test = get_test("rmw-fetch-add")
        for execution in enumerate_executions(test, get_model("gam")):
            assert execution_is_per_location_sc(execution)


class TestSARmwLd:
    def test_load_after_rmw_sees_it(self):
        assert not is_allowed(get_test("rmw+ld"), get_model("gam0"))
        assert not is_allowed(get_test("rmw+ld"), get_model("alpha_like"))

    def test_plain_store_contrast(self):
        # The same shape with a plain store *is* reorderable in GAM0: the
        # younger load may forward early.  This isolates what SARmwLd adds.
        b = LitmusBuilder("st+ld", locations=("a", "b"))
        b.proc().ld("r0", "b").st("a", "r0").ld("r2", "a")
        b.proc().st("b", 7)
        test = b.build(asked={"P0.r2": 0})
        outcomes = enumerate_outcomes(test, get_model("gam0"), project="full")
        assert outcomes  # baseline sanity


class TestDefinitionAgreement:
    @pytest.mark.parametrize("test_name", ["rmw-swap", "rmw-fetch-add", "rmw+ld"])
    def test_gam_machine_matches_axioms(self, test_name):
        test = get_test(test_name)
        ax = enumerate_outcomes(test, get_model("gam"), project="full")
        op = operational_outcomes(test, GAM_MACHINE, project="full")
        assert ax == op

    @pytest.mark.parametrize("test_name", ["rmw-swap", "rmw-fetch-add"])
    def test_gam0_machine_matches_axioms(self, test_name):
        test = get_test(test_name)
        ax = enumerate_outcomes(test, get_model("gam0"), project="full")
        op = operational_outcomes(test, GAM0_MACHINE, project="full")
        assert ax == op

    @pytest.mark.parametrize("test_name", ["rmw-swap", "rmw-fetch-add", "rmw+ld"])
    def test_reference_machines_match_axioms(self, test_name):
        test = get_test(test_name)
        assert sc_outcomes(test, project="full") == enumerate_outcomes(
            test, get_model("sc"), project="full"
        )
        assert tso_outcomes(test, project="full") == enumerate_outcomes(
            test, get_model("tso"), project="full"
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzzed_rmw_programs_equivalent(self, seed):
        config = RandomProgramConfig(num_procs=2, max_instrs=3, rmw_weight=2.0)
        reports = fuzz_equivalence(3, seed=seed, config=config)
        for report in reports:
            assert report.equivalent, f"{report.pair_name} on {report.test_name}"


class TestRmwOrderingStrength:
    def test_rmw_acts_as_store_for_fences(self):
        # FenceSS orders an older RMW (it is a store) before younger stores.
        b = LitmusBuilder("rmw-fence", locations=("a", "b"))
        b.proc().rmw("r1", "a", 1).fence("SS").st("b", 1)
        b.proc().ld("r2", "b").op("rt", b.loc("a") + "r2" - "r2").ld("r3", "rt")
        test = b.build(asked={"P1.r2": 1, "P1.r3": 0})
        assert not is_allowed(test, get_model("gam"))

    def test_rmw_as_message_passing_release(self):
        # Publishing via fetch-add: the RMW is ordered after the older store
        # by FenceSS, so a dependent reader cannot see stale data.
        b = LitmusBuilder("rmw-publish", locations=("data", "lock"))
        b.proc().st("data", 1).fence("SS").rmw("r0", "lock", 1)
        b.proc().ld("r1", "lock").op("rt", b.loc("data") + "r1" - "r1").ld("r2", "rt")
        test = b.build(asked={"P1.r1": 1, "P1.r2": 0})
        assert not is_allowed(test, get_model("gam"))
