"""Unit tests for workload profiles and the trace generator."""

import pytest

from repro.sim.uops import UopKind
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import PROFILES, get_profile, profile_names


class TestProfiles:
    def test_exactly_55_benchmark_inputs(self):
        # Figure 18's x-axis has 55 labels ("55 inputs in total").
        assert len(PROFILES) == 55

    def test_expected_names_present(self):
        names = set(profile_names())
        for required in (
            "mcf",
            "libquantum",
            "gcc.166",
            "gobmk.trevord",
            "h264ref.sem",
            "perl.splitmail",
            "soplex.pds",
            "zeusmp",
            "astar.lakes",
        ):
            assert required in names

    def test_get_profile_unknown(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_fractions_are_sane(self):
        for profile in PROFILES.values():
            mix = profile.load_frac + profile.store_frac + profile.branch_frac
            assert 0 < mix < 1, profile.name
            assert 0 <= profile.mispredict_rate <= 0.2, profile.name
            assert profile.working_set_kb > 0

    def test_mcf_is_the_pointer_chaser(self):
        mcf = get_profile("mcf")
        assert mcf.pointer_chase_frac > 0.4
        assert mcf.working_set_kb >= 32768


class TestGenerator:
    def test_requested_length(self):
        trace = generate_trace(get_profile("namd"), length=500, seed=3)
        assert len(trace) == 500

    def test_deterministic_per_seed(self):
        profile = get_profile("gcc.166")
        a = generate_trace(profile, length=300, seed=7)
        b = generate_trace(profile, length=300, seed=7)
        assert [(u.kind, u.dst, u.srcs, u.addr) for u in a] == [
            (u.kind, u.dst, u.srcs, u.addr) for u in b
        ]

    def test_different_seeds_differ(self):
        profile = get_profile("gcc.166")
        a = generate_trace(profile, length=300, seed=1)
        b = generate_trace(profile, length=300, seed=2)
        assert [(u.kind, u.addr) for u in a] != [(u.kind, u.addr) for u in b]

    def test_mix_approximates_profile(self):
        profile = get_profile("bzip2.source")
        trace = generate_trace(profile, length=20_000, seed=1)
        counts = trace.kind_counts()
        load_frac = counts.get(UopKind.LOAD, 0) / len(trace)
        assert abs(load_frac - profile.load_frac) < 0.05

    def test_fp_workload_contains_fp_uops(self):
        trace = generate_trace(get_profile("bwaves"), length=5_000, seed=1)
        counts = trace.kind_counts()
        fp = sum(
            counts.get(kind, 0)
            for kind in (UopKind.FP_ALU, UopKind.FP_MUL, UopKind.FP_DIV)
        )
        assert fp > 1000

    def test_int_workload_has_no_fp(self):
        trace = generate_trace(get_profile("libquantum"), length=5_000, seed=1)
        counts = trace.kind_counts()
        assert counts.get(UopKind.FP_DIV, 0) == 0

    def test_memory_uops_have_addresses(self):
        trace = generate_trace(get_profile("mcf"), length=2_000, seed=1)
        for uop in trace:
            if uop.kind.is_memory:
                assert uop.addr is not None and uop.addr >= 0
            else:
                assert uop.addr is None

    def test_pointer_chase_creates_dependent_loads(self):
        trace = generate_trace(get_profile("mcf"), length=5_000, seed=1)
        dependent_loads = sum(
            1 for u in trace if u.kind == UopKind.LOAD and u.srcs
        )
        assert dependent_loads > 500

    def test_reload_pairs_reuse_exact_addresses(self):
        trace = generate_trace(get_profile("h264ref.frem"), length=5_000, seed=1)
        load_addrs = [u.addr for u in trace if u.kind == UopKind.LOAD]
        assert len(set(load_addrs)) < len(load_addrs)  # genuine reuse exists

    def test_branches_flagged_at_profile_rate(self):
        profile = get_profile("sjeng")
        trace = generate_trace(profile, length=30_000, seed=1)
        branches = [u for u in trace if u.kind == UopKind.BRANCH]
        rate = sum(u.mispredicted for u in branches) / len(branches)
        assert abs(rate - profile.mispredict_rate) < 0.03
