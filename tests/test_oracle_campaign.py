"""Oracle campaigns end-to-end: rand suites, hunts, and CLI byte-identity.

Three satellite contracts of the differential-oracle PR live here:

* randprog corpora are addressable and deterministic — ``rand:`` suite
  specs resolve to byte-identical ``.litmus`` text for a fixed seed, so
  a discrepancy found in a fuzzing campaign is reproducible from its
  spec alone (and survives a campaign interrupt/resume);
* ``repro hunt --oracle operational`` shards, mines, minimizes and
  re-verifies axiomatic-vs-machine divergences, resumes byte-
  identically, and agrees exactly between ``--jobs 1`` and ``--jobs 2``
  (report text *and* telemetry counter totals);
* the engine rewrite under ``repro equiv`` and ``repro check
  --operational`` keeps their stdout byte-identical to the historical
  serial path — the expected text is pinned verbatim below — cold and
  warm cache alike.
"""

import json

import pytest

from repro.campaign import run_hunt
from repro.campaign.state import CampaignError
from repro.cli import main
from repro.engine import OutcomeSpec, evaluate_cells
from repro.equivalence.randprog import RandomProgramConfig, random_suite
from repro.litmus.frontend.parser import parse_litmus
from repro.litmus.frontend.printer import print_litmus
from repro.litmus.frontend.suite import parse_rand_spec, resolve_suite
from repro.litmus.registry import get_test
from repro.obs import collecting


class TestRandSuites:
    def test_random_suite_round_trips_byte_identically(self):
        for test in random_suite(6, seed=9):
            text = print_litmus(test)
            assert print_litmus(parse_litmus(text)) == text

    def test_same_spec_resolves_to_identical_corpora(self):
        first = resolve_suite("rand:n=5,seed=21")
        second = resolve_suite("rand:n=5,seed=21")
        assert [print_litmus(t) for t in first] == [
            print_litmus(t) for t in second
        ]
        assert [t.name for t in first] == [f"rand-21-{i}" for i in range(5)]

    def test_knobs_reach_the_generator(self):
        params = parse_rand_spec("rand:n=3,seed=2,procs=3,instrs=2,locs=4")
        assert params == {
            "count": 3,
            "seed": 2,
            "num_procs": 3,
            "max_instrs": 2,
            "num_locations": 4,
        }
        tests = resolve_suite("rand:n=3,seed=2,procs=3,instrs=2")
        assert all(len(t.programs) == 3 for t in tests)
        assert all(all(len(p) <= 2 for p in t.programs) for t in tests)

    def test_bad_rand_spec_is_rejected(self):
        with pytest.raises(ValueError, match="randprog spec"):
            parse_rand_spec("rand:count=3")
        with pytest.raises(ValueError, match="integer"):
            parse_rand_spec("rand:n=many")

    def test_seed_and_config_change_the_corpus(self):
        base = [print_litmus(t) for t in random_suite(4, seed=0)]
        reseeded = [print_litmus(t) for t in random_suite(4, seed=1)]
        assert base != reseeded
        small = random_suite(
            4, seed=0, config=RandomProgramConfig(num_procs=2, max_instrs=2)
        )
        assert [print_litmus(t) for t in small] != base


def _counter_totals(cells, jobs):
    with collecting() as recorder:
        results = evaluate_cells(cells, jobs=jobs)
        snapshot = recorder.snapshot()
    return results, snapshot.counters


class TestJobsDeterminism:
    def test_counter_totals_match_serial_exactly(self):
        tests = resolve_suite("rand:n=6,seed=4")
        cells = [
            OutcomeSpec(t, m, project="full", oracle=o)
            for t in tests
            for m in ("gam", "gam0")
            for o in ("axiomatic", f"operational:{m}")
        ]
        serial_results, serial_counters = _counter_totals(cells, jobs=1)
        pooled_results, pooled_counters = _counter_totals(cells, jobs=2)
        assert serial_results == pooled_results
        assert serial_counters == pooled_counters


def _write_suite_dir(tmp_path, names):
    suite_dir = tmp_path / "suite"
    suite_dir.mkdir()
    for name in names:
        (suite_dir / f"{name}.litmus").write_text(
            print_litmus(get_test(name))
        )
    return str(suite_dir)


class _Interrupt(Exception):
    """Stands in for a mid-campaign kill."""


class TestOracleHunt:
    def test_self_pairs_find_no_discrepancies(self, tmp_path):
        report = run_hunt(
            out=str(tmp_path / "campaign"),
            suite="rand:n=4,seed=3",
            num_shards=2,
            oracle="operational",
        )
        assert report.tests_evaluated == 4
        assert report.discrepancies == ()
        assert "0 discrepancies" in report.text

    def test_divergent_pair_yields_verified_witnesses(self, tmp_path):
        # gam axioms vs the gam0 machine genuinely diverge (per-location
        # SC for same-address loads), so corr must be mined and minimized.
        suite = _write_suite_dir(tmp_path, ["mp", "corr"])
        out = tmp_path / "campaign"
        report = run_hunt(
            out=str(out),
            suite=suite,
            pairs=[("gam", "gam0")],
            num_shards=2,
            oracle="operational",
        )
        assert [d.test_name for d in report.discrepancies] == ["corr"]
        disc = report.discrepancies[0]
        assert disc.pair == ("gam", "operational:gam0")
        assert disc.machine_only + disc.axiomatic_only > 0
        (record,) = report.witnesses
        assert record.minimized_instrs <= record.original_instrs
        witness_path = out / record.relpath
        assert witness_path.exists()
        # The written witness still diverges after a parse round trip.
        reparsed = parse_litmus(witness_path.read_text())
        axiomatic, operational = evaluate_cells(
            [
                OutcomeSpec(reparsed, "gam", project="full"),
                OutcomeSpec(
                    reparsed, "gam", project="full",
                    oracle="operational:gam0",
                ),
            ]
        )
        assert axiomatic != operational
        payload = json.loads((out / "report.json").read_text())
        (entry,) = payload["discrepancies"]
        assert entry["pair"] == ["gam", "operational:gam0"]
        assert set(entry) >= {"machine_only", "axiomatic_only", "witness"}

    def test_interrupted_rand_hunt_resumes_byte_identically(self, tmp_path):
        # The rand: spec re-resolves on resume; the regenerated corpus
        # must match the original or the report could not reproduce.
        interrupted = tmp_path / "interrupted"
        fresh = tmp_path / "fresh"
        kwargs = dict(
            suite="rand:n=4,seed=6", num_shards=2, oracle="operational"
        )

        def exploding_log(message: str) -> None:
            if message.startswith("shard 2/2: evaluating"):
                raise _Interrupt(message)

        with pytest.raises(_Interrupt):
            run_hunt(out=str(interrupted), log=exploding_log, **kwargs)
        assert (interrupted / "shards" / "shard-0000.json").exists()
        assert not (interrupted / "shards" / "shard-0001.json").exists()
        resumed = run_hunt(out=str(interrupted))
        baseline = run_hunt(out=str(fresh), **kwargs)
        assert resumed.text == baseline.text

    def test_jobs_do_not_change_the_report(self, tmp_path):
        suite = _write_suite_dir(tmp_path, ["mp", "corr", "rsw"])
        serial = run_hunt(
            out=str(tmp_path / "serial"),
            suite=suite,
            pairs=[("gam", "gam0")],
            num_shards=2,
            oracle="operational",
        )
        pooled = run_hunt(
            out=str(tmp_path / "pooled"),
            suite=suite,
            pairs=[("gam", "gam0")],
            num_shards=2,
            jobs=2,
            oracle="operational",
        )
        assert serial.text == pooled.text
        for left, right in zip(serial.witnesses, pooled.witnesses):
            assert (tmp_path / "serial" / left.relpath).read_bytes() == (
                tmp_path / "pooled" / right.relpath
            ).read_bytes()

    def test_unknown_machine_is_a_campaign_error(self, tmp_path):
        with pytest.raises(CampaignError, match="unknown operational machine"):
            run_hunt(
                out=str(tmp_path / "campaign"),
                suite="rand:n=2",
                pairs=[("gam", "arm")],
                oracle="operational",
            )

    def test_oracle_mode_is_sticky_across_resume(self, tmp_path):
        out = str(tmp_path / "campaign")
        first = run_hunt(
            out=out, suite="rand:n=3,seed=8", num_shards=1,
            oracle="operational",
        )
        # No oracle argument on resume: the stored spec supplies it.
        second = run_hunt(out=out)
        assert first.text == second.text
        assert "oracle operational" in second.text


class TestHuntOracleCLI:
    def test_bare_pair_name_is_self_pair_shorthand(self, tmp_path, capsys):
        status = main(
            [
                "hunt",
                "--oracle", "operational",
                "--suite", "rand:n=2,seed=1",
                "--pair", "gam0",
                "--shards", "1",
                "--out", str(tmp_path / "campaign"),
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "pairs gam0:gam0" in out
        assert "0 discrepancies" in out

    def test_bad_oracle_pair_reports_supported_machines(self, tmp_path, capsys):
        status = main(
            [
                "hunt",
                "--oracle", "operational",
                "--suite", "rand:n=2",
                "--pair", "gam:wmm",
                "--out", str(tmp_path / "campaign"),
            ]
        )
        assert status == 2
        err = capsys.readouterr().err
        assert "unknown operational machine" in err
        assert "gam, gam0, sc, tso" in err


# The exact stdout of the historical (pre-engine) serial implementations,
# captured before the oracle refactor.  These commands are scripted in CI
# and docs, so their output is a compatibility surface: any drift here is
# a regression even when the verdicts are right.
_GOLDEN_EQUIV = """\
ok  mp                       gam   |axiomatic|=4 |machine|=4
ok  mp                       gam0  |axiomatic|=4 |machine|=4
ok  mp                       sc    |axiomatic|=3 |machine|=3
ok  mp                       tso   |axiomatic|=3 |machine|=3
ok  dekker                   gam   |axiomatic|=4 |machine|=4
ok  dekker                   gam0  |axiomatic|=4 |machine|=4
ok  dekker                   sc    |axiomatic|=3 |machine|=3
ok  dekker                   tso   |axiomatic|=4 |machine|=4
ok  corr                     gam   |axiomatic|=3 |machine|=3
ok  corr                     gam0  |axiomatic|=4 |machine|=4
ok  corr                     sc    |axiomatic|=3 |machine|=3
ok  corr                     tso   |axiomatic|=3 |machine|=3
"""

_GOLDEN_CHECK_OP = (
    "mp: P1.r1=1, P1.r2=0 is ALLOWED under gam (abstract machine)\n"
)


class TestByteIdentity:
    def _equiv_argv(self, cache=None):
        argv = ["equiv", "mp", "dekker", "corr", "--pairs", "gam,gam0,sc,tso"]
        if cache is not None:
            argv += ["--cache", cache]
        return argv

    def test_equiv_matches_pre_refactor_output(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(self._equiv_argv()) == 0
        assert capsys.readouterr().out == _GOLDEN_EQUIV
        # Cold cache, then warm cache: same bytes.
        assert main(self._equiv_argv(cache)) == 0
        assert capsys.readouterr().out == _GOLDEN_EQUIV
        assert main(self._equiv_argv(cache)) == 0
        assert capsys.readouterr().out == _GOLDEN_EQUIV

    def test_check_operational_matches_pre_refactor_output(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        assert main(["check", "mp", "--operational"]) == 0
        assert capsys.readouterr().out == _GOLDEN_CHECK_OP
        for _ in range(2):  # cold then warm cache
            assert (
                main(["check", "mp", "--operational", "--cache", cache]) == 0
            )
            assert capsys.readouterr().out == _GOLDEN_CHECK_OP
