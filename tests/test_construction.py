"""Tests for the construction procedure (Section III as a model factory)."""

import pytest

from repro.core.axiomatic import enumerate_outcomes, is_allowed
from repro.core.construction import CONSTRAINTS, assemble, derivation_chain
from repro.litmus.registry import get_test
from repro.models.registry import get_model


class TestConstraintCatalogue:
    def test_all_constraints_documented(self):
        for name in (
            "SAMemSt",
            "SAStLd",
            "RegRAW",
            "BrSt",
            "AddrSt",
            "LMOrd",
            "LdVal",
            "FenceOrd",
            "SALdLd",
            "SALdLdARM",
        ):
            info = CONSTRAINTS[name]
            assert info.statement and info.origin and info.paper_ref

    def test_stages_match_construction_order(self):
        assert CONSTRAINTS["SAMemSt"].stage == "uniprocessor"
        assert CONSTRAINTS["LMOrd"].stage == "multiprocessor"
        assert CONSTRAINTS["FenceOrd"].stage == "fence"
        assert CONSTRAINTS["SALdLd"].stage == "programming"


class TestAssemble:
    def test_gam_assembly_matches_registry(self):
        built = assemble("gam", same_address_loads="saldld")
        registry = get_model("gam")
        assert set(built.clause_names()) == set(registry.clause_names())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            assemble("x", same_address_loads="whatever")

    def test_dropping_dependency_ordering_reintroduces_oota(self):
        relaxed = assemble("no-deps", dependency_ordering=False)
        assert is_allowed(get_test("oota"), relaxed)

    def test_speculative_stores_break_lb_ctrl(self):
        speculative = assemble("spec-stores", speculative_stores=True)
        assert is_allowed(get_test("lb+ctrls"), speculative)
        assert not is_allowed(get_test("lb+ctrls"), assemble("gam"))

    def test_addrst_is_what_forbids_lb_addrpo(self):
        # The lb+addrpo-st cycle is closed only by AddrSt: removing just
        # that constraint (keeping BrSt) admits the behaviour.
        from repro.core.axiomatic import MemoryModel
        from repro.core.ppo import BrSt, FenceOrd, RegRAW, SAMemSt, SAStLd

        without_addrst = MemoryModel(
            name="no-addrst",
            clauses=(SAMemSt(), FenceOrd(), RegRAW(), SAStLd(), BrSt()),
        )
        test = get_test("lb+addrpo-st")
        assert is_allowed(test, without_addrst)
        assert not is_allowed(test, get_model("gam0"))

    def test_arm_variant_uses_dynamic_clause(self):
        arm = assemble("arm", same_address_loads="arm")
        assert arm.dynamic_clauses
        assert arm.dynamic_clauses[0].name == "SALdLdARM"


class TestDerivationChain:
    def test_chain_shape(self):
        chain = derivation_chain()
        names = [model.name for _, model in chain]
        assert names == ["base", "gam0", "arm", "gam"]

    def test_gam_is_strictly_stronger_than_gam0(self):
        # On CoRR the chain's last step removes exactly one behaviour.
        test = get_test("corr")
        chain = dict((m.name, m) for _, m in derivation_chain())
        gam0_outcomes = enumerate_outcomes(test, chain["gam0"], project="full")
        gam_outcomes = enumerate_outcomes(test, chain["gam"], project="full")
        assert gam_outcomes < gam0_outcomes
