"""Tests for the experiment harnesses (repro.eval)."""

import pytest

from repro.eval.figure18 import render_figure18, run_figure18
from repro.eval.litmus_matrix import conformance_failures, litmus_matrix, render_matrix
from repro.eval.render import render_bar_chart, render_table
from repro.eval.table2 import render_table2, table2
from repro.eval.table3 import render_table3, table3
from repro.sim.config import CoreConfig


@pytest.fixture(scope="module")
def sweep():
    """A small Figure 18 sweep shared by the table tests."""
    return run_figure18(
        workloads=("mcf", "gcc.166", "hmmer.retro", "h264ref.frem"),
        trace_length=3_000,
    )


class TestRender:
    def test_table_alignment(self):
        table = render_table(["a", "bb"], [[1, 2.5], ["xxx", 4]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "xxx" in table and "2.5" in table

    def test_bar_chart_directions(self):
        chart = render_bar_chart(["up", "down"], [1.1, 0.9])
        lines = chart.splitlines()
        assert "+" in lines[0] and "-" in lines[1]

    def test_bar_chart_handles_flat_values(self):
        chart = render_bar_chart(["x"], [1.0])
        assert "1.0000" in chart


class TestLitmusMatrix:
    def test_paper_matrix_has_no_conformance_failures(self):
        cells = litmus_matrix()
        assert conformance_failures(cells) == []

    def test_matrix_covers_all_figures_and_models(self):
        cells = litmus_matrix()
        tests = {c.test_name for c in cells}
        assert len(tests) == 12  # the twelve paper figures
        models = {c.model_name for c in cells}
        assert {"sc", "tso", "gam", "gam0", "arm", "plsc"} <= models

    def test_render_flags_silent_cells(self):
        rendered = render_matrix(litmus_matrix())
        assert "·" in rendered  # paper-silent cells are marked
        assert "allow!" not in rendered and "forbid!" not in rendered

    def test_render_accepts_models_outside_default_zoo(self):
        # Regression: sorting columns with _MATRIX_MODELS.index raised
        # ValueError whenever litmus_matrix ran with a custom model zoo.
        from repro.litmus.registry import get_test

        cells = litmus_matrix(
            tests=[get_test("dekker")],
            model_names=("gam", "sc-gamlv", "sc", "rmo"),
        )
        rendered = render_matrix(cells)
        header = rendered.splitlines()[1]
        # Known zoo models keep zoo order; unknown ones follow alphabetically.
        assert header.index("sc") < header.index("gam")
        assert header.index("gam") < header.index("rmo")
        assert header.index("rmo") < header.index("sc-gamlv")


class TestFigure18Harness:
    def test_rows_and_stats_populated(self, sweep):
        assert len(sweep.rows) == 4
        assert ("mcf", "GAM") in sweep.stats
        assert all("GAM" in row.upc for row in sweep.rows)

    def test_normalization_against_gam(self, sweep):
        for row in sweep.rows:
            assert row.normalized("GAM") == pytest.approx(1.0)

    def test_relaxations_within_paper_envelope(self, sweep):
        # The paper: gains "never exceed 3%"; allow slack for short traces.
        for name in ("ARM", "GAM0", "Alpha*"):
            assert 0.9 < sweep.average_normalized(name) < 1.1

    def test_render_contains_average_row(self, sweep):
        rendered = render_figure18(sweep)
        assert "average" in rendered
        assert "Alpha*/GAM" in rendered

    def test_custom_config_accepted(self):
        result = run_figure18(
            workloads=("namd",),
            trace_length=800,
            config=CoreConfig.tiny(),
        )
        assert result.rows[0].upc["GAM"] > 0


class TestTables(object):
    def test_table2_rows(self, sweep):
        rows = table2(sweep)
        labels = [r.label for r in rows]
        assert labels == ["Kills in GAM", "Stalls in GAM", "Stalls in ARM"]
        for row in rows:
            assert row.max_per_1k >= row.average_per_1k >= 0

    def test_table2_gam_and_arm_stalls_close(self, sweep):
        rows = {r.label: r for r in table2(sweep)}
        gam = rows["Stalls in GAM"].average_per_1k
        arm = rows["Stalls in ARM"].average_per_1k
        assert abs(gam - arm) < max(1.0, 0.5 * max(gam, arm))

    def test_table3_rows(self, sweep):
        rows = table3(sweep)
        assert rows[0].label == "Load-load forwardings"
        assert rows[0].average_per_1k > 0  # forwarding does happen...
        assert rows[1].average_per_1k < 2.0  # ...but barely saves misses

    def test_renderers(self, sweep):
        assert "Table II" in render_table2(table2(sweep))
        assert "Table III" in render_table3(table3(sweep))
