"""Unit tests for the SC and TSO reference machines."""

from repro.core.reference_machines import sc_outcomes, tso_outcomes
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.registry import get_test


class TestScMachine:
    def test_dekker_three_outcomes(self):
        outcomes = sc_outcomes(get_test("dekker"))
        assert len(outcomes) == 3

    def test_dekker_forbids_both_zero(self):
        test = get_test("dekker")
        assert not any(
            o.reg_bindings() == {(0, "r1"): 0, (1, "r2"): 0}
            for o in sc_outcomes(test)
        )

    def test_branches_execute(self):
        test = get_test("mp+ctrl")
        outcomes = sc_outcomes(test, project="full")
        assert outcomes  # the branchy program terminates under SC

    def test_final_memory_projected(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 3)
        test = b.build(asked={"a": 3})
        (outcome,) = sc_outcomes(test)
        assert (b.locations["a"], 3) in outcome.mem


class TestTsoMachine:
    def test_dekker_allows_both_zero(self):
        test = get_test("dekker")
        bindings = {frozenset(o.reg_bindings().items()) for o in tso_outcomes(test)}
        assert frozenset({((0, "r1"), 0), ((1, "r2"), 0)}) in bindings

    def test_store_buffer_forwarding(self):
        # A processor reads its own buffered store before it drains.
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 1).ld("r1", "a")
        test = b.build(asked={"P0.r1": 1})
        outcomes = tso_outcomes(test)
        assert all(o.reg_bindings()[(0, "r1")] == 1 for o in outcomes)

    def test_fence_sl_drains_buffer(self):
        test = get_test("dekker+full")
        bindings = {frozenset(o.reg_bindings().items()) for o in tso_outcomes(test)}
        assert frozenset({((0, "r1"), 0), ((1, "r2"), 0)}) not in bindings

    def test_loads_not_reordered(self):
        test = get_test("mp")
        asked = test.asked
        assert not any(
            asked.matches(
                {(p, r): v for (p, r, v) in o.regs}, dict(o.mem)
            )
            for o in tso_outcomes(test)
        )

    def test_buffers_drain_at_termination(self):
        b = LitmusBuilder("t", locations=("a",))
        b.proc().st("a", 9)
        test = b.build(asked={"a": 9})
        (outcome,) = tso_outcomes(test)
        assert (b.locations["a"], 9) in outcome.mem
