"""Tests for the ``.litmus`` frontend: printer, parser, suites, registry."""

import pytest

from repro.isa.expr import BinOp, Const, Reg, UnOp
from repro.isa.instructions import Fence, Load, Nop, Store
from repro.isa.program import Program
from repro.litmus import registry
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.frontend.parser import (
    LitmusParseError,
    parse_litmus,
    parse_litmus_file,
)
from repro.litmus.frontend.printer import (
    LitmusPrintError,
    format_expr,
    print_litmus,
)
from repro.litmus.frontend.suite import (
    SuiteRegistry,
    load_litmus_path,
    parse_gen_spec,
    resolve_suite,
)
from repro.litmus.registry import all_tests, get_test


ALL_TEST_NAMES = sorted(registry.test_names())


class TestRoundTrip:
    """Every registered test must round-trip byte-stably."""

    @pytest.mark.parametrize("name", ALL_TEST_NAMES)
    def test_parse_print_equals_original(self, name):
        test = get_test(name)
        assert parse_litmus(print_litmus(test)) == test

    @pytest.mark.parametrize("name", ALL_TEST_NAMES)
    def test_print_is_byte_stable(self, name):
        test = get_test(name)
        text = print_litmus(test)
        assert print_litmus(parse_litmus(text)) == text

    def test_golden_dekker(self):
        """The printed form is a stable interchange format, not an accident."""
        assert print_litmus(get_test("dekker")) == (
            "GAM dekker\n"
            '"Store buffering; SC forbids r1=r2=0."\n'
            "(* source: Figure 2 *)\n"
            "(* expect: alpha_like=allow arm=allow gam=allow gam0=allow "
            "sc=forbid tso=allow wmm=allow *)\n"
            "{ a; b; }\n"
            " P0          | P1          ;\n"
            " St [a] 1    | St [b] 1    ;\n"
            " r1 = Ld [b] | r2 = Ld [a] ;\n"
            "exists (0:r1=0 /\\ 1:r2=0)\n"
        )

    def test_round_trip_file(self, tmp_path):
        test = get_test("mp+fences")
        path = tmp_path / "mp+fences.litmus"
        path.write_text(print_litmus(test))
        assert parse_litmus_file(path) == test

    def test_initial_memory_address_value(self):
        """Figure 9's ``a = &b`` init survives the round trip."""
        test = get_test("load-speculation")
        text = print_litmus(test)
        assert "a = &b;" in text
        assert parse_litmus(text) == test

    def test_labels_round_trip(self):
        test = get_test("mp+ctrl")
        text = print_litmus(test)
        assert "end:" in text
        assert parse_litmus(text).programs[1].labels == {"end": 3}

    def test_observed_clause_round_trip(self):
        builder = LitmusBuilder("obs", locations=("a",))
        builder.proc().ld("r1", "a").ld("r2", "a")
        test = builder.build(asked={"P0.r1": 0}, observed=[(0, "r2")])
        text = print_litmus(test)
        assert "observed [0:r2]" in text
        back = parse_litmus(text)
        assert back == test
        assert back.observed == frozenset({(0, "r2")})


class TestExprFormatting:
    def test_minimal_parens_preserve_shape(self):
        exprs = [
            BinOp("+", BinOp("+", Reg("r1"), Const(1)), Reg("r2")),
            BinOp("+", Reg("r1"), BinOp("+", Const(1), Reg("r2"))),
            BinOp("*", BinOp("+", Reg("r1"), Const(1)), Reg("r2")),
            BinOp("-", BinOp("+", Const(0x100), Reg("r1")), Reg("r1")),
            UnOp("-", BinOp("+", Reg("r1"), Const(2))),
            BinOp("==", Reg("r1"), Const(0)),
            UnOp("!", Reg("r1")),
        ]
        for expr in exprs:
            text = format_expr(expr, {})
            builder = LitmusBuilder("t", locations=("a",))
            builder.proc().op("rt", expr).st("a", 1)
            parsed = parse_litmus(print_litmus(builder.build()))
            assert parsed.programs[0][0].expr == expr, text

    def test_right_nested_addition_keeps_parens(self):
        expr = BinOp("+", Reg("r1"), BinOp("+", Const(1), Reg("r2")))
        assert format_expr(expr, {}) == "r1 + (1 + r2)"

    def test_location_constants_print_as_names(self):
        assert format_expr(Const(0x100), {0x100: "a"}) == "a"

    def test_negative_constant_rejected(self):
        with pytest.raises(LitmusPrintError, match="negative"):
            format_expr(Const(-1), {})

    def test_bitwise_or_rejected(self):
        """'|' is the column separator, so the dialect cannot spell it."""
        with pytest.raises(LitmusPrintError, match="no .litmus spelling"):
            format_expr(BinOp("|", Reg("r1"), Reg("r2")), {})

    def test_precedence_tables_are_shared(self):
        from repro.litmus.frontend import parser, printer

        assert printer.PRECEDENCE is parser.BIN_PRECEDENCE


class TestParserErrors:
    def _parse(self, text):
        return parse_litmus(text)

    def test_empty_input(self):
        with pytest.raises(LitmusParseError, match="empty litmus input"):
            self._parse("")

    def test_bad_header(self):
        with pytest.raises(LitmusParseError, match=r"line 1: header"):
            self._parse("justoneword\n{ a; }\n P0 ;\n Nop ;\n")

    def test_missing_init(self):
        with pytest.raises(LitmusParseError, match=r"line 2: expected init"):
            self._parse("GAM t\n P0 ;\n")

    def test_duplicate_location(self):
        with pytest.raises(LitmusParseError, match="duplicate location 'a'"):
            self._parse("GAM t\n{ a; a; }\n P0 ;\n Nop ;\n")

    def test_bad_initial_value(self):
        with pytest.raises(LitmusParseError, match="bad initial value"):
            self._parse("GAM t\n{ a = wat; }\n P0 ;\n Nop ;\n")

    def test_init_references_unknown_location(self):
        with pytest.raises(LitmusParseError, match="unknown location 'b'"):
            self._parse("GAM t\n{ a = &b; }\n P0 ;\n Nop ;\n")

    def test_unknown_instruction(self):
        with pytest.raises(LitmusParseError, match=r"line 4"):
            self._parse("GAM t\n{ a; }\n P0 ;\n Frob [a] 1 ;\n")

    def test_unknown_fence(self):
        with pytest.raises(LitmusParseError, match="unknown fence 'FenceXY'"):
            self._parse("GAM t\n{ a; }\n P0 ;\n FenceXY ;\n")

    def test_trailing_tokens(self):
        with pytest.raises(LitmusParseError, match="trailing input"):
            self._parse("GAM t\n{ a; }\n P0 ;\n St [a] 1 2 ;\n")

    def test_undefined_branch_target(self):
        with pytest.raises(LitmusParseError, match="undefined branch target"):
            self._parse("GAM t\n{ a; }\n P0 ;\n if (r1) goto nowhere ;\n")

    def test_backward_branch(self):
        text = (
            "GAM t\n{ a; }\n P0 ;\n back: ;\n Nop ;\n if (r1) goto back ;\n"
        )
        with pytest.raises(LitmusParseError, match="loop-free"):
            self._parse(text)

    def test_too_many_columns(self):
        with pytest.raises(LitmusParseError, match="columns"):
            self._parse("GAM t\n{ a; }\n P0 ;\n Nop | Nop ;\n")

    def test_too_few_columns(self):
        """A missing '|' must fail loudly, not misattribute instructions."""
        text = (
            "GAM t\n{ a; b; }\n"
            " P0       | P1 ;\n"
            " St [a] 1 | Nop ;\n"
            " r1 = Ld [b] ;\n"
        )
        with pytest.raises(LitmusParseError, match="1 columns, expected 2"):
            self._parse(text)

    def test_duplicate_observed_clause(self):
        with pytest.raises(LitmusParseError, match="duplicate observed"):
            self._parse(
                "GAM t\n{ a; }\n P0 ;\n r1 = Ld [a] ;\n"
                "observed [0:r1]\nobserved [0:r9]\n"
            )

    def test_condition_unknown_name(self):
        with pytest.raises(LitmusParseError, match="unknown location or register"):
            self._parse("GAM t\n{ a; }\n P0 ;\n Nop ;\nexists (zz=1)\n")

    def test_condition_bad_value(self):
        with pytest.raises(LitmusParseError, match="bad condition value"):
            self._parse("GAM t\n{ a; }\n P0 ;\n Nop ;\nexists (a=x)\n")

    def test_duplicate_final_condition(self):
        with pytest.raises(LitmusParseError, match="duplicate final condition"):
            self._parse(
                "GAM t\n{ a; }\n P0 ;\n Nop ;\nexists (a=1)\nexists (a=0)\n"
            )

    def test_error_carries_line_number(self):
        try:
            self._parse("GAM t\n{ a; }\n P0 ;\n Wat ;\n")
        except LitmusParseError as exc:
            assert exc.line == 4
            assert "line 4" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected LitmusParseError")


class TestParserSlack:
    """Accepted synonym spellings beyond what the printer emits."""

    def test_forbidden_and_tilde_exists(self):
        base = "GAM t\n{ a; }\n P0 ;\n r1 = Ld [a] ;\n"
        for keyword in ("exists", "~exists", "forbidden"):
            test = parse_litmus(base + f"{keyword} (0:r1=0)\n")
            assert test.asked is not None
            assert test.asked.regs == frozenset({(0, "r1", 0)})

    def test_proc_dot_register_spelling(self):
        test = parse_litmus(
            "GAM t\n{ a; }\n P0 ;\n r1 = Ld [a] ;\nexists (P0.r1=0)\n"
        )
        assert test.asked.regs == frozenset({(0, "r1", 0)})

    def test_explicit_address_declaration(self):
        test = parse_litmus("GAM t\n{ a @ 0x400; }\n P0 ;\n St [a] 1 ;\n")
        assert test.locations == {"a": 0x400}

    def test_no_condition_means_exploratory(self):
        test = parse_litmus("GAM t\n{ a; }\n P0 ;\n St [a] 1 ;\n")
        assert test.asked is None

    def test_hex_values(self):
        test = parse_litmus(
            "GAM t\n{ a = 0x10; }\n P0 ;\n St [a] 0xff ;\n"
        )
        assert test.initial_memory == {0x100: 16}
        assert test.programs[0][0].data == Const(255)


class TestProgramEquality:
    def test_structural_equality(self):
        p1 = Program([Store(Const(1), Const(2)), Nop()], {"end": 2})
        p2 = Program([Store(Const(1), Const(2)), Nop()], {"end": 2})
        p3 = Program([Store(Const(1), Const(2)), Nop()], {"end": 1})
        assert p1 == p2
        assert hash(p1) == hash(p2)
        assert p1 != p3
        assert p1 != [Store(Const(1), Const(2)), Nop()]

    def test_instruction_difference(self):
        assert Program([Load("r1", Const(1))]) != Program([Load("r2", Const(1))])


class TestRegistryCollisions:
    def test_merged_static_suites_are_disjoint(self):
        from repro.litmus.paper_tests import PAPER_TESTS
        from repro.litmus.standard_tests import STANDARD_TESTS

        assert not set(PAPER_TESTS) & set(STANDARD_TESTS)

    def test_merge_raises_on_duplicate(self):
        with pytest.raises(ValueError, match="duplicate litmus test name"):
            registry._merged({"x": lambda: None}, {"x": lambda: None})

    def test_register_and_unregister(self):
        builder = LitmusBuilder("frontend-reg-test", locations=("a",))
        builder.proc().st("a", 1)
        test = builder.build()
        try:
            assert registry.register(test) == "frontend-reg-test"
            assert registry.get_test("frontend-reg-test") == test
            with pytest.raises(ValueError, match="collision"):
                registry.register(test)
            registry.register(test, replace=True)  # explicit override is fine
        finally:
            registry.unregister("frontend-reg-test")
        with pytest.raises(KeyError):
            registry.get_test("frontend-reg-test")

    def test_register_rejects_existing_name(self):
        with pytest.raises(ValueError, match="collision"):
            registry.register(get_test("dekker"))

    def test_unregister_unknown(self):
        with pytest.raises(KeyError):
            registry.unregister("never-registered")


class TestSuiteRegistry:
    def _test(self, name):
        builder = LitmusBuilder(name, locations=("a",))
        builder.proc().st("a", 1)
        return builder.build()

    def test_layering_and_lookup(self):
        suite = SuiteRegistry(attach=False)
        suite.register(self._test("local-one"), suite="mine")
        assert suite.names("mine") == ("local-one",)
        assert suite.get("local-one").name == "local-one"
        # Unknown names fall back to the static registry.
        assert suite.get("dekker").name == "dekker"
        assert suite.suites() == ("mine",)

    def test_local_collision(self):
        suite = SuiteRegistry(attach=False)
        suite.register(self._test("twice"))
        with pytest.raises(ValueError, match="collision"):
            suite.register(self._test("twice"))
        suite.register(self._test("twice"), replace=True)

    def test_attached_registration_hits_global_registry(self):
        suite = SuiteRegistry(attach=True)
        try:
            suite.register(self._test("attached-test"))
            assert registry.get_test("attached-test").name == "attached-test"
            with pytest.raises(ValueError, match="collision"):
                SuiteRegistry(attach=True).register(self._test("attached-test"))
        finally:
            registry.unregister("attached-test")

    def test_load_path_file_and_dir(self, tmp_path):
        for name in ("mp", "lb"):
            (tmp_path / f"{name}.litmus").write_text(
                print_litmus(get_test(name))
            )
        suite = SuiteRegistry(attach=False)
        names = suite.load_path(str(tmp_path), suite="from-disk")
        assert names == ["lb", "mp"]  # sorted by file name
        assert suite.get("mp") == get_test("mp")

    def test_load_path_empty_dir(self, tmp_path):
        with pytest.raises(LitmusParseError, match="no .litmus files"):
            load_litmus_path(str(tmp_path))


class TestResolveSuite:
    def test_static_names(self):
        assert len(resolve_suite("all")) == len(list(all_tests()))
        paper = resolve_suite("paper")
        standard = resolve_suite("standard")
        assert len(paper) + len(standard) == len(resolve_suite("all"))

    def test_gen_spec(self):
        assert parse_gen_spec("gen:edges=4,size=10,seed=3") == {
            "max_edges": 4,
            "size": 10,
            "seed": 3,
        }
        assert parse_gen_spec("gen") == {}
        suite = resolve_suite("gen:edges=4,size=5")
        assert len(suite) == 5

    def test_gen_spec_errors(self):
        with pytest.raises(ValueError, match="bad generator spec"):
            parse_gen_spec("gen:bogus=1")
        with pytest.raises(ValueError, match="must be an integer"):
            parse_gen_spec("gen:edges=four")

    def test_path_spec(self, tmp_path):
        path = tmp_path / "dekker.litmus"
        path.write_text(print_litmus(get_test("dekker")))
        assert resolve_suite(str(path)) == [get_test("dekker")]

    def test_unknown_spec(self):
        with pytest.raises(KeyError, match="unknown suite"):
            resolve_suite("no-such-suite")


class TestResolveSuiteErrorPaths:
    """Every way a --suite spec can be wrong fails loudly and precisely."""

    def test_bad_gen_key_through_resolve(self):
        with pytest.raises(ValueError, match="bad generator spec"):
            resolve_suite("gen:bogus=1")
        with pytest.raises(ValueError, match="must be an integer"):
            resolve_suite("gen:edges=x")

    def test_gen_budget_below_minimum(self):
        with pytest.raises(ValueError, match="at least 3 edges"):
            resolve_suite("gen:edges=2")

    def test_missing_litmus_path_is_unknown_suite(self):
        # A path that does not exist falls through to the unknown-suite
        # error, which names every accepted spec form.
        with pytest.raises(KeyError, match=r"\.litmus file/directory"):
            resolve_suite("does/not/exist.litmus")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(LitmusParseError, match="no .litmus files"):
            resolve_suite(str(tmp_path))

    def test_directory_with_unparsable_file(self, tmp_path):
        (tmp_path / "bad.litmus").write_text("GAM broken\nnot litmus at all\n")
        with pytest.raises(LitmusParseError):
            resolve_suite(str(tmp_path))

    def test_cli_reports_bad_suite_as_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["matrix", "--suite", "gen:bogus=1"]) == 2
        assert "bad generator spec" in capsys.readouterr().err
        assert main(["list", "tests", "--suite", "nope.litmus"]) == 2
        assert "unknown suite" in capsys.readouterr().err
        assert main(["strength", "--suite", str(tmp_path)]) == 2
        assert "no .litmus files" in capsys.readouterr().err
