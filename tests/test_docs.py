"""Docs-tree consistency: generated CLI reference, links, docstrings.

Keeps the ``docs/`` satellite honest: ``docs/cli.md`` must match what
``tools/gen_cli_docs.py`` renders from the live argparse tree, every
relative markdown link must resolve, and the public API of the engine,
litmus frontend and campaign packages must be fully docstring'd.
"""

import importlib
import importlib.util
import inspect
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]


def _load_tool(name: str):
    """Import a script from tools/ (not a package) as a module."""
    spec = importlib.util.spec_from_file_location(
        name, ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCliReference:
    def test_cli_md_is_in_sync(self):
        gen_cli_docs = _load_tool("gen_cli_docs")
        rendered = gen_cli_docs.render_cli_docs()
        committed = (ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        assert committed == rendered, (
            "docs/cli.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_cli_docs.py`"
        )

    def test_every_command_is_documented(self):
        from repro.cli import _COMMANDS

        text = (ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        for command in _COMMANDS:
            assert f"## `repro {command}`" in text

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch, capsys):
        gen_cli_docs = _load_tool("gen_cli_docs")
        stale = tmp_path / "cli.md"
        stale.write_text("out of date", encoding="utf-8")
        monkeypatch.setattr(gen_cli_docs, "OUTPUT", str(stale))
        assert gen_cli_docs.main(["--check"]) == 1
        assert "out of sync" in capsys.readouterr().err
        assert gen_cli_docs.main([]) == 0
        assert gen_cli_docs.main(["--check"]) == 0

    def test_model_subcommands_are_documented(self):
        text = (ROOT / "docs" / "cli.md").read_text(encoding="utf-8")
        for section in ("model", "model show", "model import", "model export"):
            assert f"## `repro {section}`" in text


class TestModelReference:
    def test_models_md_is_in_sync(self):
        gen_model_docs = _load_tool("gen_model_docs")
        rendered = gen_model_docs.render_model_docs()
        committed = (ROOT / "docs" / "models.md").read_text(encoding="utf-8")
        assert committed == rendered, (
            "docs/models.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_model_docs.py`"
        )

    def test_clause_vocabulary_is_covered(self):
        from repro.core.ppo import (
            DYNAMIC_CLAUSES,
            PARAMETRIC_CLAUSES,
            STATIC_CLAUSES,
        )

        text = (ROOT / "docs" / "models.md").read_text(encoding="utf-8")
        for name in (*STATIC_CLAUSES, *DYNAMIC_CLAUSES, *PARAMETRIC_CLAUSES):
            assert f"`{name}" in text, f"clause {name} missing from models.md"

    def test_ctor_knobs_are_covered(self):
        from repro.core.construction import CTOR_KNOBS

        text = (ROOT / "docs" / "models.md").read_text(encoding="utf-8")
        for knob in CTOR_KNOBS:
            assert f"`{knob}`" in text, f"knob {knob} missing from models.md"

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch, capsys):
        gen_model_docs = _load_tool("gen_model_docs")
        stale = tmp_path / "models.md"
        stale.write_text("out of date", encoding="utf-8")
        monkeypatch.setattr(gen_model_docs, "OUTPUT", str(stale))
        assert gen_model_docs.main(["--check"]) == 1
        assert "out of sync" in capsys.readouterr().err
        assert gen_model_docs.main([]) == 0
        assert gen_model_docs.main(["--check"]) == 0


class TestLintReference:
    def test_lint_md_is_in_sync(self):
        gen_lint_docs = _load_tool("gen_lint_docs")
        rendered = gen_lint_docs.render_lint_docs()
        committed = (ROOT / "docs" / "lint.md").read_text(encoding="utf-8")
        assert committed == rendered, (
            "docs/lint.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_lint_docs.py`"
        )

    def test_every_code_is_documented(self):
        from repro.lint import CODES

        text = (ROOT / "docs" / "lint.md").read_text(encoding="utf-8")
        for code, info in CODES.items():
            assert f"### `{code}` — {info.title}" in text, (
                f"diagnostic {code} missing from lint.md"
            )

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch, capsys):
        gen_lint_docs = _load_tool("gen_lint_docs")
        stale = tmp_path / "lint.md"
        stale.write_text("out of date", encoding="utf-8")
        monkeypatch.setattr(gen_lint_docs, "OUTPUT", str(stale))
        assert gen_lint_docs.main(["--check"]) == 1
        assert "out of sync" in capsys.readouterr().err
        assert gen_lint_docs.main([]) == 0
        assert gen_lint_docs.main(["--check"]) == 0


class TestObsReference:
    def test_observability_md_is_in_sync(self):
        gen_obs_docs = _load_tool("gen_obs_docs")
        rendered = gen_obs_docs.render_obs_docs()
        committed = (ROOT / "docs" / "observability.md").read_text(
            encoding="utf-8"
        )
        assert committed == rendered, (
            "docs/observability.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_obs_docs.py`"
        )

    def test_every_metric_is_documented(self):
        from repro.obs import METRICS

        text = (ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
        for name, spec in METRICS.items():
            shown = f"`{name}.<label>`" if spec.dynamic else f"`{name}`"
            assert shown in text, f"metric {name} missing from observability.md"

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch, capsys):
        gen_obs_docs = _load_tool("gen_obs_docs")
        stale = tmp_path / "observability.md"
        stale.write_text("out of date", encoding="utf-8")
        monkeypatch.setattr(gen_obs_docs, "OUTPUT", str(stale))
        assert gen_obs_docs.main(["--check"]) == 1
        assert "out of sync" in capsys.readouterr().err
        assert gen_obs_docs.main([]) == 0
        assert gen_obs_docs.main(["--check"]) == 0


class TestRobustnessReference:
    def test_robustness_md_is_in_sync(self):
        gen = _load_tool("gen_robustness_docs")
        rendered = gen.render_robustness_docs()
        committed = (ROOT / "docs" / "robustness.md").read_text(
            encoding="utf-8"
        )
        assert committed == rendered, (
            "docs/robustness.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_robustness_docs.py`"
        )

    def test_vocabulary_is_covered(self):
        from repro.engine import FAILURE_REASONS, FAULT_KINDS, ON_ERROR_MODES

        text = (ROOT / "docs" / "robustness.md").read_text(encoding="utf-8")
        for name in (*ON_ERROR_MODES, *FAILURE_REASONS, *FAULT_KINDS):
            assert f"`{name}`" in text, f"{name} missing from robustness.md"

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch, capsys):
        gen = _load_tool("gen_robustness_docs")
        stale = tmp_path / "robustness.md"
        stale.write_text("out of date", encoding="utf-8")
        monkeypatch.setattr(gen, "OUTPUT", str(stale))
        assert gen.main(["--check"]) == 1
        assert "out of sync" in capsys.readouterr().err
        assert gen.main([]) == 0
        assert gen.main(["--check"]) == 0


class TestServeReference:
    def test_serving_md_is_in_sync(self):
        gen = _load_tool("gen_serve_docs")
        rendered = gen.render_serve_docs()
        committed = (ROOT / "docs" / "serving.md").read_text(encoding="utf-8")
        assert committed == rendered, (
            "docs/serving.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_serve_docs.py`"
        )

    def test_vocabulary_is_covered(self):
        from repro.obs import METRICS
        from repro.serve import ENDPOINTS, ERROR_KINDS

        text = (ROOT / "docs" / "serving.md").read_text(encoding="utf-8")
        for name in ENDPOINTS:
            assert f"`POST /{name}`" in text, f"endpoint {name} undocumented"
        for kind in ERROR_KINDS:
            assert f"`{kind}`" in text, f"error kind {kind} undocumented"
        for name, spec in METRICS.items():
            if not name.startswith("serve."):
                continue
            shown = f"`{name}.<label>`" if spec.dynamic else f"`{name}`"
            assert shown in text, f"metric {name} missing from serving.md"

    def test_check_mode_detects_staleness(self, tmp_path, monkeypatch, capsys):
        gen = _load_tool("gen_serve_docs")
        stale = tmp_path / "serving.md"
        stale.write_text("out of date", encoding="utf-8")
        monkeypatch.setattr(gen, "OUTPUT", str(stale))
        assert gen.main(["--check"]) == 1
        assert "out of sync" in capsys.readouterr().err
        assert gen.main([]) == 0
        assert gen.main(["--check"]) == 0


class TestLintReproTool:
    def test_clean_paths_exit_zero(self, capsys):
        lint_repro = _load_tool("lint_repro")
        assert lint_repro.main(["src/repro/lint"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_fails(self, capsys, tmp_path, monkeypatch):
        lint_repro = _load_tool("lint_repro")
        engine_dir = tmp_path / "src" / "repro" / "engine"
        engine_dir.mkdir(parents=True)
        (engine_dir / "bad.py").write_text(
            "import random\nrandom.shuffle(x)\n", encoding="utf-8"
        )
        monkeypatch.setattr(lint_repro, "_ROOT", str(tmp_path))
        assert lint_repro.main(["src"]) == 1
        assert "R001" in capsys.readouterr().out

    def test_diff_base_runs_r004(self, capsys):
        # Against HEAD the worktree either bumped ENGINE_VERSION or did
        # not touch engine paths; both are exit-0 outcomes and exercise
        # the full git glue.
        lint_repro = _load_tool("lint_repro")
        assert lint_repro.main(["--diff-base", "HEAD", "src/repro/lint"]) == 0


class TestDocsLinks:
    def test_no_broken_relative_links(self):
        check = _load_tool("check_docs_links")
        assert check.broken_links() == []

    def test_checker_catches_a_broken_link(self, tmp_path):
        check = _load_tool("check_docs_links")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "[ok](doc.md) [web](https://example.com) [bad](missing.md)",
            encoding="utf-8",
        )
        assert [target for _, target in check.broken_links([str(doc)])] == [
            "missing.md"
        ]

    def test_docs_tree_exists(self):
        names = (
            "architecture.md",
            "edges.md",
            "cli.md",
            "models.md",
            "lint.md",
            "observability.md",
            "robustness.md",
        )
        for name in names:
            assert (ROOT / "docs" / name).is_file()

    def test_models_md_is_link_checked(self):
        check = _load_tool("check_docs_links")
        covered = [pathlib.Path(p).name for p in check._documents()]
        assert "models.md" in covered


def _public_members(obj):
    """Public methods/properties defined directly on a class."""
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        fn = member
        if isinstance(member, (staticmethod, classmethod)):
            fn = member.__func__
        elif isinstance(member, property):
            fn = member.fget
        if callable(fn):
            yield name, fn


@pytest.mark.parametrize(
    "module_name",
    [
        "repro.engine",
        "repro.engine.cells",
        "repro.engine.cache",
        "repro.engine.scheduler",
        "repro.engine.policy",
        "repro.engine.faults",
        "repro.litmus.frontend",
        "repro.litmus.frontend.gen",
        "repro.litmus.frontend.parser",
        "repro.litmus.frontend.printer",
        "repro.litmus.frontend.suite",
        "repro.campaign",
        "repro.eval.discrepancy",
        "repro.models",
        "repro.models.spec",
        "repro.models.registry",
        "repro.lint",
        "repro.lint.diagnostics",
        "repro.lint.canon",
        "repro.lint.litmus",
        "repro.lint.model",
        "repro.lint.repo",
        "repro.obs",
        "repro.obs.core",
        "repro.obs.registry",
        "repro.obs.report",
    ],
)
def test_public_api_is_docstringed(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} has no module docstring"
    for name in module.__all__:
        obj = getattr(module, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # constants are documented in the module docstring
        assert obj.__doc__, f"{module_name}.{name} has no docstring"
        if inspect.isclass(obj):
            for member_name, member in _public_members(obj):
                assert member.__doc__, (
                    f"{module_name}.{name}.{member_name} has no docstring"
                )
