"""Axiomatic == operational, over the whole catalogue and random programs.

This is the empirical counterpart of the paper's equivalence proof
(Section IV / reference [80]): for every litmus test, the Figure 17
machine and the GAM axioms must allow exactly the same outcome sets — and
likewise for the GAM0, SC and TSO definition pairs.
"""

import pytest

from repro.equivalence.checker import check_pair, check_suite, fuzz_equivalence
from repro.equivalence.randprog import RandomProgramConfig, random_litmus_test
from repro.litmus.registry import all_tests
from repro.litmus.registry import test_names as litmus_test_names

_PAIR_NAMES = ("gam", "gam0", "sc", "tso")
_CASES = [
    (test_name, pair)
    for test_name in litmus_test_names()
    for pair in _PAIR_NAMES
]


@pytest.mark.parametrize(
    "test_name,pair", _CASES, ids=[f"{t}-{p}" for t, p in _CASES]
)
def test_definitions_equivalent_on_catalogue(test_name, pair):
    from repro.litmus.registry import get_test

    report = check_pair(get_test(test_name), pair)
    operational_only, axiomatic_only = report.differences()
    assert report.equivalent, (
        f"{pair} definitions disagree on {test_name}: "
        f"machine-only={sorted(map(str, operational_only))[:3]} "
        f"axioms-only={sorted(map(str, axiomatic_only))[:3]}"
    )


def test_check_suite_aggregates_reports():
    tests = [t for t in all_tests() if t.name in ("dekker", "lb")]
    reports = check_suite(tests, pair_names=("gam",))
    assert len(reports) == 2
    assert all(r.equivalent for r in reports)


def test_check_suite_accepts_custom_pairs():
    # Regression: check_suite used to hardcode default_pairs(), ignoring
    # any custom mapping a caller wanted to compare.
    from repro.core.axiomatic import enumerate_outcomes
    from repro.models.registry import get_model

    def gam_outcomes(test):
        return enumerate_outcomes(test, get_model("gam"), project="full")

    def sc_outcomes_fn(test):
        return enumerate_outcomes(test, get_model("sc"), project="full")

    pairs = {
        "gam-vs-self": (gam_outcomes, gam_outcomes),
        "gam-vs-sc": (gam_outcomes, sc_outcomes_fn),
    }
    tests = [t for t in all_tests() if t.name == "dekker"]
    reports = check_suite(
        tests, pair_names=("gam-vs-self", "gam-vs-sc"), pairs=pairs
    )
    assert [r.pair_name for r in reports] == ["gam-vs-self", "gam-vs-sc"]
    assert reports[0].equivalent
    assert not reports[1].equivalent  # SC forbids dekker's asked outcome


def test_fuzz_equivalence_accepts_custom_pairs():
    from repro.core.axiomatic import enumerate_outcomes
    from repro.models.registry import get_model

    def gam_outcomes(test):
        return enumerate_outcomes(test, get_model("gam"), project="full")

    reports = fuzz_equivalence(
        2,
        seed=7,
        config=RandomProgramConfig(num_procs=2, max_instrs=3),
        pair_names=("self",),
        pairs={"self": (gam_outcomes, gam_outcomes)},
    )
    assert len(reports) == 2
    assert all(r.equivalent for r in reports)
    # The generated test sequence must match the default-pairs path.
    default = fuzz_equivalence(
        2,
        seed=7,
        config=RandomProgramConfig(num_procs=2, max_instrs=3),
        pair_names=("gam",),
    )
    assert [r.test_name for r in reports] == [r.test_name for r in default]


def test_fuzz_equivalence_deterministic():
    first = fuzz_equivalence(3, seed=11)
    second = fuzz_equivalence(3, seed=11)
    assert [r.test_name for r in first] == [r.test_name for r in second]
    assert all(r.equivalent for r in first)


@pytest.mark.parametrize("seed", range(8))
def test_fuzzed_programs_equivalent(seed):
    reports = fuzz_equivalence(
        4,
        seed=seed,
        config=RandomProgramConfig(num_procs=2, max_instrs=4),
    )
    for report in reports:
        assert report.equivalent, f"{report.pair_name} differs on {report.test_name}"


def test_random_test_generator_is_loop_free_and_seedable():
    test_a = random_litmus_test(123)
    test_b = random_litmus_test(123)
    assert [list(p) for p in test_a.programs] == [list(p) for p in test_b.programs]
    for program in test_a.programs:
        # Loop-freedom is enforced by Program validation; just re-touch it.
        assert len(program) <= 4


def test_random_tests_with_three_procs():
    config = RandomProgramConfig(num_procs=3, max_instrs=3)
    reports = fuzz_equivalence(2, seed=5, config=config, pair_names=("gam",))
    assert all(r.equivalent for r in reports)
