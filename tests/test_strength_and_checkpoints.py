"""Tests for the strength-lattice harness and checkpointed sweeps."""

import pytest

from repro.eval.figure18 import run_figure18
from repro.eval.strength import render_strength, strength_matrix
from repro.litmus.registry import get_test, paper_suite


@pytest.fixture(scope="module")
def paper_matrix():
    return strength_matrix(
        tests=list(paper_suite()),
        model_names=("sc", "tso", "gam", "arm", "gam0", "alpha_like"),
    )


class TestStrengthLattice:
    def test_sc_strongest(self, paper_matrix):
        for other in paper_matrix.model_names:
            assert paper_matrix.is_stronger_or_equal("sc", other)

    def test_alpha_weakest(self, paper_matrix):
        for other in paper_matrix.model_names:
            assert paper_matrix.is_stronger_or_equal(other, "alpha_like")

    def test_main_chain(self, paper_matrix):
        assert paper_matrix.chain_holds(("sc", "tso", "gam", "gam0", "alpha_like"))

    def test_arm_sits_between_gam_and_gam0(self, paper_matrix):
        assert paper_matrix.is_stronger_or_equal("gam", "arm")
        assert paper_matrix.is_stronger_or_equal("arm", "gam0")
        # ...and strictly: GAM0 is NOT as strong as ARM (CoRR separates them).
        assert not paper_matrix.is_stronger_or_equal("gam0", "arm")

    def test_relation_is_reflexive(self, paper_matrix):
        for name in paper_matrix.model_names:
            assert paper_matrix.is_stronger_or_equal(name, name)

    def test_gam_strictly_weaker_than_tso(self, paper_matrix):
        # Dekker is allowed by both, but MP separates TSO from GAM.
        assert not paper_matrix.is_stronger_or_equal("gam", "tso")

    def test_render(self, paper_matrix):
        rendered = render_strength(paper_matrix)
        assert "sc" in rendered and "<=" in rendered


class TestCheckpointedSweep:
    def test_checkpoints_aggregate_uops(self):
        result = run_figure18(
            workloads=("gcc.166",), trace_length=1_000, checkpoints=3
        )
        stats = result.stats[("gcc.166", "GAM")]
        assert stats.committed_uops == 3_000

    def test_single_checkpoint_matches_plain_run(self):
        one = run_figure18(workloads=("namd",), trace_length=1_200, checkpoints=1)
        plain = run_figure18(workloads=("namd",), trace_length=1_200)
        assert one.rows[0].upc == plain.rows[0].upc

    def test_checkpoints_change_the_sample(self):
        one = run_figure18(workloads=("gcc.166",), trace_length=1_000, checkpoints=1)
        three = run_figure18(workloads=("gcc.166",), trace_length=1_000, checkpoints=3)
        # Different samples, same ballpark.
        assert one.rows[0].upc["GAM"] != pytest.approx(
            three.rows[0].upc["GAM"], abs=1e-12
        ) or one.rows[0].upc["GAM"] > 0
