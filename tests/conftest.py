"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.models.registry import get_model, model_names


@pytest.fixture(scope="session")
def models():
    """All registry models, instantiated once per session."""
    return {name: get_model(name) for name in model_names()}


@pytest.fixture(scope="session")
def gam(models):
    """The GAM model."""
    return models["gam"]


@pytest.fixture(scope="session")
def gam0(models):
    """The GAM0 model."""
    return models["gam0"]
