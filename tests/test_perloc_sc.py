"""Unit tests for the per-location SC checker (Section III-E)."""

import pytest

from repro.core.axiomatic import enumerate_executions
from repro.core.perloc_sc import (
    coherence_edges,
    execution_is_per_location_sc,
    per_location_orders,
)
from repro.litmus.registry import get_test
from repro.models.registry import get_model


def _executions(test_name, model_name="gam"):
    return list(enumerate_executions(get_test(test_name), get_model(model_name)))


class TestGamIsPerLocationSc:
    @pytest.mark.parametrize(
        "test_name",
        ["dekker", "corr", "corr+intervening-store", "mp", "lb", "cowr", "rsw"],
    )
    def test_every_gam_execution_is_coherent(self, test_name):
        # Section III-E1: adding SALdLd gives GAM per-location SC.
        executions = _executions(test_name)
        assert executions
        for execution in executions:
            assert execution_is_per_location_sc(execution)

    def test_gam0_violates_per_location_sc_on_corr(self):
        # The motivating gap: GAM0 allows the incoherent CoRR execution.
        violations = [
            e
            for e in _executions("corr", "gam0")
            if not execution_is_per_location_sc(e)
        ]
        assert violations


class TestWitnessOrders:
    def test_witness_covers_all_accesses(self):
        execution = _executions("corr+intervening-store")[0]
        witness = per_location_orders(execution)
        for addr, order in witness.items():
            events = [
                e
                for e in execution.inits + execution.events
                if e.addr == addr
            ]
            assert len(order) == len(events)

    def test_witness_raises_on_incoherent_execution(self):
        bad = next(
            e
            for e in _executions("corr", "gam0")
            if not execution_is_per_location_sc(e)
        )
        with pytest.raises(ValueError):
            per_location_orders(bad)


class TestCoherenceEdges:
    def test_init_store_is_coherence_first(self):
        execution = _executions("corr")[0]
        addr = get_test("corr").locations["a"]
        nodes, edges = coherence_edges(execution, addr)
        init_nodes = [n for n in nodes if n[0] == -1]
        assert len(init_nodes) == 1
        # The init store has no incoming co edge.
        co_targets = {b for a, b in edges if a == init_nodes[0]}
        assert co_targets  # init reaches something

    def test_unrelated_address_graph_is_empty(self):
        execution = _executions("corr")[0]
        nodes, edges = coherence_edges(execution, 0xDEAD)
        assert nodes == [] and edges == set()
