"""Tests for the frontier-memoized enumeration kernel (repro.core.kernel).

Covers the tentpole properties: the kernel serves exactly the models it
claims to (dispatch rules), it produces results identical to the exact
order enumerator on every registered test and on a generated suite
(differential parity — the exactness proof made executable), and the
outcome-directed register pruning of ``is_allowed`` changes verdicts for
nothing.
"""

import pytest

from repro.core.axiomatic import (
    CandidatePrefix,
    enumerate_outcomes,
    is_allowed,
    kernel_supports,
)
from repro.litmus.dsl import LitmusBuilder
from repro.litmus.frontend.suite import resolve_suite
from repro.litmus.registry import all_tests, get_test
from repro.models.registry import MODELS, get_model

_FAST_MODELS = ("sc", "sc-gamlv", "tso", "gam", "gam0", "wmm", "alpha_like")
_SLOW_MODELS = ("arm", "plsc")


def _assert_parity(test, model_names, prefix=None):
    """Outcome sets and verdicts must agree between the two engines."""
    for name in model_names:
        model = get_model(name)
        kernel = enumerate_outcomes(
            test, model, project="full", prefix=prefix, engine="kernel"
        )
        orders = enumerate_outcomes(
            test, model, project="full", prefix=prefix, engine="orders"
        )
        assert kernel == orders, f"{test.name} x {name}: outcome sets diverge"
        if test.asked is not None:
            assert is_allowed(test, model, prefix=prefix, engine="kernel") == (
                is_allowed(test, model, prefix=prefix, engine="orders")
            ), f"{test.name} x {name}: verdicts diverge"


class TestDispatch:
    def test_kernel_supports_the_static_zoo(self):
        for name in _FAST_MODELS:
            assert kernel_supports(get_model(name)), name

    def test_kernel_rejects_dynamic_and_coherent_models(self):
        for name in _SLOW_MODELS:
            assert not kernel_supports(get_model(name)), name

    def test_engine_kernel_raises_for_unsupported_models(self):
        test = get_test("dekker")
        for name in _SLOW_MODELS:
            with pytest.raises(ValueError):
                enumerate_outcomes(test, get_model(name), engine="kernel")
            with pytest.raises(ValueError):
                is_allowed(test, get_model(name), engine="kernel")

    def test_unknown_engine_rejected(self):
        test = get_test("dekker")
        with pytest.raises(ValueError):
            enumerate_outcomes(test, get_model("gam"), engine="fastest")

    def test_env_var_disables_kernel(self, monkeypatch):
        # With REPRO_ENUM_KERNEL=0 the auto dispatch must take the order
        # enumerator: the orders stream gets consumed, no kernel is built.
        monkeypatch.setenv("REPRO_ENUM_KERNEL", "0")
        test = get_test("dekker")
        prefix = CandidatePrefix(test)
        outcomes = enumerate_outcomes(test, get_model("gam"), prefix=prefix)
        assert outcomes
        assert not prefix._kernels and prefix._orders

    def test_auto_uses_kernel_for_static_models(self):
        test = get_test("dekker")
        prefix = CandidatePrefix(test)
        enumerate_outcomes(test, get_model("gam"), prefix=prefix)
        assert prefix._kernels and not prefix._orders

    def test_auto_uses_orders_for_arm(self):
        test = get_test("dekker")
        prefix = CandidatePrefix(test)
        enumerate_outcomes(test, get_model("arm"), prefix=prefix)
        assert not prefix._kernels and prefix._orders


class TestKernelInternals:
    def test_models_with_equal_dags_share_one_kernel(self):
        # gam0 and rmo are the same clause set; the prefix must solve one DP.
        test = get_test("corr")
        prefix = CandidatePrefix(test)
        enumerate_outcomes(test, get_model("gam0"), prefix=prefix)
        kernels_after_first = len(prefix._kernels)
        enumerate_outcomes(test, get_model("rmo"), prefix=prefix)
        assert len(prefix._kernels) == kernels_after_first

    def test_final_memories_align_with_addresses(self):
        test = get_test("coww")
        prefix = CandidatePrefix(test)
        model = get_model("gam")
        candidate = prefix.candidate(0, model)
        kernel = prefix.kernel_for(0, candidate, model.load_value)
        for values in kernel.final_memories():
            assert len(values) == len(kernel.addresses)
            memory = kernel.as_memory(values)
            assert set(memory) == set(kernel.addresses)

    def test_unrealizable_combo_has_no_final_memory(self):
        # A single processor reading 1 from 'a' with no store to 'a' builds
        # no candidate at all; a load of a never-stored *feasible* value is
        # pruned inside the DP instead.  Exercise the DP branch: r1=0 then
        # r1=1 from the same address with only one store of 1 — the 0-then-
        # missing orderings die mid-placement, yet outcomes survive.
        builder = LitmusBuilder("kernel-prune", locations=("a",))
        builder.proc().st("a", 1)
        builder.proc().ld("r1", "a").ld("r2", "a")
        test = builder.build(asked={"P1.r1": 1, "P1.r2": 0})
        model = get_model("sc")
        assert is_allowed(test, model, engine="kernel") == is_allowed(
            test, model, engine="orders"
        )

    @pytest.mark.parametrize("test_name", ["rmw-swap", "rmw-fetch-add", "rmw+ld"])
    def test_rmw_composite_nodes(self, test_name):
        test = get_test(test_name)
        _assert_parity(test, _FAST_MODELS)


class TestParityQuick:
    """Kernel vs order enumerator on representative figures (tier-1)."""

    @pytest.mark.parametrize(
        "test_name",
        ["dekker", "mp", "corr", "coww", "iriw", "rsw", "store-forwarding"],
    )
    def test_paper_figures_parity(self, test_name):
        test = get_test(test_name)
        prefix = CandidatePrefix(test)
        _assert_parity(test, ("sc", "gam", "wmm"), prefix=prefix)

    def test_explicit_outcome_with_memory_constraint(self):
        test = get_test("coww")
        addr_outcome = test.parse_outcome({"a": 2})
        for name in ("sc", "gam"):
            model = get_model(name)
            assert is_allowed(test, model, addr_outcome, engine="kernel") == (
                is_allowed(test, model, addr_outcome, engine="orders")
            )


@pytest.mark.slow
class TestParityFull:
    """The differential parity sweep: every registered test and a generated
    suite, across the whole model zoo (auto dispatch included)."""

    def test_registered_suite_parity(self):
        for test in all_tests():
            prefix = CandidatePrefix(test)
            fast = [name for name in MODELS if kernel_supports(get_model(name))]
            _assert_parity(test, fast, prefix=prefix)
            # Auto dispatch must agree with both engines everywhere.
            for name in MODELS:
                model = get_model(name)
                assert enumerate_outcomes(
                    test, model, project="full", prefix=prefix
                ) == enumerate_outcomes(
                    test, model, project="full", prefix=prefix, engine="orders"
                ), f"{test.name} x {name}"

    def test_generated_suite_parity(self):
        for test in resolve_suite("gen:edges=3"):
            prefix = CandidatePrefix(test)
            for name in MODELS:
                model = get_model(name)
                assert is_allowed(test, model, prefix=prefix) == is_allowed(
                    test, model, prefix=prefix, engine="orders"
                ), f"{test.name} x {name}"
                assert enumerate_outcomes(
                    test, model, project="full", prefix=prefix
                ) == enumerate_outcomes(
                    test, model, project="full", prefix=prefix, engine="orders"
                ), f"{test.name} x {name}"
