"""Differential oracle parity: operational engine cells vs the axioms.

The oracle abstraction makes the Figure 17 abstract machines a
first-class engine backend: any ``VerdictSpec``/``OutcomeSpec`` can
target ``oracle="operational:<machine>"`` and flows through the same
batching, pooling and caching as axiomatic cells.  These tests are the
paper's equivalence theorem (Section IV) run through that new path —
machine cells must agree with their axiomatic twins on every registered
test, a generated suite and random programs — plus the engine-contract
properties (verdict semantics, machine-keyed caching, ``--jobs``
determinism) the equivalence checker and oracle campaigns rely on.

Mirrors the structure of ``test_kernel.py``: a tier-1 representative
sweep plus slow-marked exhaustive sweeps.
"""

import pytest

from repro.engine import (
    ORACLE_AXIOMATIC,
    OutcomeSpec,
    VerdictSpec,
    cell_cache_key,
    evaluate_cells,
    operational_machines,
    oracle_descriptor,
    parse_oracle,
)
from repro.litmus.frontend.suite import resolve_suite
from repro.litmus.registry import all_tests, get_test

_MACHINES = ("gam", "gam0", "sc", "tso")


def _parity_cells(tests, machines=_MACHINES):
    """Interleaved (axiomatic, operational) outcome cells per test x machine.

    Each machine name doubles as the axiomatic registry model it must
    agree with — the same convention the equivalence checker's
    definition pairs use.
    """
    cells = []
    for test in tests:
        for machine in machines:
            cells.append(OutcomeSpec(test, machine, project="full"))
            cells.append(
                OutcomeSpec(
                    test, machine, project="full",
                    oracle=f"operational:{machine}",
                )
            )
    return cells


def _assert_oracle_parity(tests, machines=_MACHINES, jobs=1, cache_dir=None):
    cells = _parity_cells(tests, machines)
    results = evaluate_cells(cells, jobs=jobs, cache_dir=cache_dir)
    for i in range(0, len(cells), 2):
        assert results[i] == results[i + 1], (
            f"{cells[i].test.name} x {cells[i + 1].oracle}: "
            "axioms and machine outcome sets diverge"
        )


class TestOracleContract:
    def test_machine_listing_is_sorted_and_complete(self):
        assert operational_machines() == ("gam", "gam0", "sc", "tso")

    def test_parse_oracle(self):
        assert parse_oracle(ORACLE_AXIOMATIC) == ("axiomatic", None)
        assert parse_oracle("operational:gam0") == ("operational", "gam0")
        with pytest.raises(ValueError):
            parse_oracle("operational:arm")
        with pytest.raises(ValueError):
            parse_oracle("oracular")

    def test_descriptor_distinguishes_machines(self):
        descriptors = [
            oracle_descriptor(f"operational:{m}") for m in _MACHINES
        ]
        assert len({str(d) for d in descriptors}) == len(_MACHINES)
        assert oracle_descriptor(ORACLE_AXIOMATIC) == {"kind": "axiomatic"}

    def test_operational_key_ignores_display_model(self):
        # The machine alone determines an operational cell's result, so
        # two specs differing only in the display model share one cache
        # entry (an equiv run and a gam0-labelled hunt reuse each other).
        test = get_test("dekker")
        key_a = cell_cache_key(
            OutcomeSpec(test, "gam", project="full", oracle="operational:sc")
        )
        key_b = cell_cache_key(
            OutcomeSpec(test, "tso", project="full", oracle="operational:sc")
        )
        assert key_a == key_b

    def test_operational_key_depends_on_machine_and_oracle(self):
        test = get_test("dekker")
        keys = {
            cell_cache_key(
                OutcomeSpec(test, "gam", project="full", oracle=oracle)
            )
            for oracle in [ORACLE_AXIOMATIC]
            + [f"operational:{m}" for m in _MACHINES]
        }
        assert len(keys) == 1 + len(_MACHINES)

    def test_operational_verdict_requires_asked(self):
        from repro.engine import EngineWorkerError

        stripped = resolve_suite("rand:n=1,seed=0")[0]
        assert stripped.asked is None
        # Serial failures are translated like pooled ones: an
        # EngineWorkerError naming the test, the original ValueError
        # chained on __cause__.
        with pytest.raises(EngineWorkerError, match="asked") as excinfo:
            evaluate_cells(
                [VerdictSpec(stripped, "gam", oracle="operational:gam")]
            )
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_bad_machine_rejected_at_evaluation(self):
        from repro.engine import EngineWorkerError

        test = get_test("dekker")
        with pytest.raises(EngineWorkerError) as excinfo:
            evaluate_cells(
                [OutcomeSpec(test, "gam", project="full",
                             oracle="operational:wmm")]
            )
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestParityQuick:
    """Machine vs axioms on representative figures (tier-1)."""

    @pytest.mark.parametrize(
        "test_name",
        ["dekker", "mp", "corr", "coww", "iriw", "rsw", "store-forwarding"],
    )
    def test_paper_figures_outcome_parity(self, test_name):
        _assert_oracle_parity([get_test(test_name)])

    @pytest.mark.parametrize("test_name", ["dekker", "mp+addr", "corr"])
    def test_verdict_parity(self, test_name):
        test = get_test(test_name)
        cells = []
        for machine in _MACHINES:
            cells.append(VerdictSpec(test, machine))
            cells.append(
                VerdictSpec(test, machine, oracle=f"operational:{machine}")
            )
        results = evaluate_cells(cells)
        for i in range(0, len(cells), 2):
            assert results[i] == results[i + 1], (
                f"{test_name} x {cells[i + 1].oracle}: verdicts diverge"
            )

    def test_cache_round_trip(self, tmp_path):
        tests = [get_test("mp"), get_test("corr")]
        cells = _parity_cells(tests, machines=("gam", "gam0"))
        cold = evaluate_cells(cells, cache_dir=str(tmp_path))
        warm = evaluate_cells(cells, cache_dir=str(tmp_path))
        assert cold == warm
        _assert_oracle_parity(tests, machines=("gam", "gam0"),
                              cache_dir=str(tmp_path))


@pytest.mark.slow
class TestParityFull:
    """The exhaustive oracle sweep: every registered test, a generated
    suite and a random corpus, across every machine, through the pool."""

    def test_registered_suite_parity(self):
        _assert_oracle_parity(list(all_tests()))

    def test_generated_suite_parity(self):
        _assert_oracle_parity(resolve_suite("gen:edges=3"))

    def test_random_corpus_parity_pooled(self):
        # A jobs=2 run must produce the same (ordered) results as serial;
        # parity is asserted on the pooled results.
        tests = resolve_suite("rand:n=12,seed=5")
        cells = _parity_cells(tests, machines=("gam", "gam0"))
        serial = evaluate_cells(cells, jobs=1)
        pooled = evaluate_cells(cells, jobs=2)
        assert serial == pooled
        for i in range(0, len(cells), 2):
            assert pooled[i] == pooled[i + 1], cells[i].test.name
