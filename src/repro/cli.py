"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list {tests|models|workloads} [--suite SUITE]`` — catalogue contents;
* ``show TEST [--format {pretty,litmus}]`` — print a litmus test;
* ``check TEST [-m MODEL] [--operational] [--jobs N] [--cache DIR]`` —
  allowed or forbidden?
* ``outcomes TEST [-m MODEL] [--full]`` — enumerate the outcome set;
* ``witness TEST [-m MODEL]`` — a concrete ``<mo, rf>`` for the outcome;
* ``diff TEST WEAKER STRONGER`` — outcome-set difference of two models;
* ``matrix [--suite SUITE] [--jobs N] [--cache DIR]`` — the verdict matrix;
* ``equiv [TEST ...] [--suite SUITE] [--jobs N] [--cache DIR]`` —
  axiomatic-vs-operational agreement;
* ``hunt --out DIR [--suite SUITE] [--pair A:B ...] [--shards N]
  [--oracle {axiomatic,operational}]`` — a sharded, resumable
  differential hunt campaign with minimized ``.litmus`` witnesses:
  model-pair verdict splits by default, axiomatic-vs-abstract-machine
  outcome-set divergences under ``--oracle operational``
  (see :mod:`repro.campaign`);
* ``synth TEST [-m MODEL]`` — minimal fences restoring SC;
* ``strength [--suite SUITE] [--jobs N] [--cache DIR]`` — the measured
  model-strength lattice;
* ``gen [--edges N] [--size M] [--seed S] [--dedupe] [-o DIR]`` —
  cycle-based litmus test generation (diy-style);
* ``lint [--suite SUITE] [-m MODEL ...] [--format {text,json}]
  [--strict] [--edges N]`` — static diagnostics over tests and models
  (see :mod:`repro.lint` and ``docs/lint.md``);
* ``stats PATH [OTHER] [--format {text,json}]`` — render a telemetry
  run report (a ``stats.json`` file or a campaign directory), or diff
  the counters of two (see :mod:`repro.obs` and
  ``docs/observability.md``);
* ``cache stats DIR`` / ``cache purge DIR --stale-tmp [--older-than S]``
  — inspect an engine result cache (entry and orphaned temp-file
  counts/bytes) and sweep stale ``*.tmp`` debris left by killed runs;
* ``cache export DIR TARBALL`` / ``cache import DIR TARBALL`` — ship a
  warmed result store between machines as a digest-validated, engine-
  version-stamped gzipped tarball;
* ``serve start --cache DIR [--port P] [--workers N]`` /
  ``serve status --server URL`` / ``serve warm --server URL [--suite
  SUITE]`` — run and operate the verdict daemon (:mod:`repro.serve`,
  ``docs/serving.md``): a long-lived worker pool sharing one result
  store across every client;
* ``import FILE [FILE ...]`` — parse and validate ``.litmus`` files;
* ``export [--suite SUITE] [-o DIR]`` — print/write tests as ``.litmus``;
* ``model show MODEL`` / ``model import FILE ...`` /
  ``model export [--model MODEL ...] [-o DIR]`` — print, validate/register
  and write ``.model`` definitions (see :mod:`repro.models.spec`);
* ``sim [--workloads ...] [--length N] [--checkpoints K]`` — Figure 18 +
  Tables II/III.

``SUITE`` is either a static suite name (``paper``, ``standard``,
``all``), a generator spec (``gen:edges=4[,size=50][,seed=7]``), a
seeded randprog corpus (``rand:n=50[,seed=7]``), or a path to a
``.litmus`` file or a directory of them — so generated, random and
imported suites flow through the same harnesses as the built-in
catalogue.

``MODEL`` — every ``--model``/``-m``, ``WEAKER``/``STRONGER`` and
``--pair`` side — is a *model spec* resolved by
:func:`repro.models.spec.resolve_model`: a registry name or alias, a
``.model`` file or directory, an inline construction point
(``ctor:same_address_loads=arm``), or — where a family makes sense, as in
``hunt --pair "space:same_address_loads=*:gam"`` — a ``space:``
enumeration over the construction lattice.

The engine-backed commands (``check``, ``matrix``, ``equiv``,
``strength``) run on the batch evaluation engine (:mod:`repro.engine`):
per-test candidate work is shared across the model zoo, ``--jobs N``
fans tests out over a process pool, and ``--cache DIR`` keeps a
content-hashed on-disk result cache so repeated runs are incremental.
Operational cells (``check --operational``, ``equiv``, ``hunt --oracle
operational``) flow through the same engine and cache, keyed by the
abstract-machine variant instead of model clauses.  The defaults (one
process, no cache) produce output identical to the historical serial
path.  ``--server URL`` on ``check``/``matrix``/``equiv``/``strength``
routes the same grids through a verdict daemon instead — stdout stays
byte-identical, and an unreachable server falls back to the local
engine transparently (version mismatches are hard errors).

The same commands take the fault-tolerance flags ``--timeout S``
(per-batch deadline), ``--retries N`` (re-run failed batches) and
``--on-error {fail,skip,quarantine}`` (what a failed batch becomes after
retries — see ``docs/robustness.md``).  The defaults (no deadline, no
retries, fail) leave behaviour and output byte-identical to a build
without the flags.

The evaluating commands (``matrix``, ``check``, ``equiv``, ``strength``,
``hunt``) also take ``--stats [text|json]``: the run executes under an
active telemetry recorder (:mod:`repro.obs`) and a run report is printed
to **stderr** after the normal output — stdout stays byte-identical to a
run without the flag, and ``repro matrix --stats json 2> stats.json``
captures a machine-readable report.  Without ``--stats`` the recorder is
the no-op null recorder and the instrumentation costs nothing.

Every command prints plain text and exits non-zero on a failed check, so
the CLI composes with shell scripts and CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser", "CLIUsageError"]


class CLIUsageError(Exception):
    """Bad command-line input detected after argparse (exit status 2).

    Wraps user-input errors (bad ``gen:`` specs, import name collisions)
    so :func:`main` can report them cleanly without catching the broad
    exception types that real bugs raise.
    """


def _resolve_suite(spec: str):
    """Resolve a ``--suite`` spec, mapping bad input to :class:`CLIUsageError`."""
    from .litmus.frontend.parser import LitmusParseError
    from .litmus.frontend.suite import resolve_suite

    try:
        return resolve_suite(spec)
    except LitmusParseError:
        raise  # reported with its line/path context
    except ValueError as exc:  # bad gen:... spec or budget
        raise CLIUsageError(str(exc)) from exc


def _resolve_model(spec: str):
    """Resolve a model spec — the one call site behind every model argument.

    Registry names, ``.model`` paths and ``ctor:`` specs all land here;
    unknown names surface as the registry's listing ``KeyError`` and
    malformed specs as :class:`repro.models.spec.ModelSpecError`, both
    rendered by :func:`main`.
    """
    from .models.spec import resolve_model

    return resolve_model(spec)


def _policy_from_args(args: argparse.Namespace):
    """The :class:`ExecutionPolicy` the fault-tolerance flags describe.

    Returns ``None`` — not ``DEFAULT_POLICY`` — when every flag is at its
    default, so the engine's default dispatch path (and its
    byte-identical output) is untouched by the flags merely existing.
    """
    if args.timeout is None and args.retries == 0 and args.on_error == "fail":
        return None
    from .engine import ExecutionPolicy

    try:
        return ExecutionPolicy(
            timeout=args.timeout, retries=args.retries, on_error=args.on_error
        )
    except ValueError as exc:
        raise CLIUsageError(str(exc)) from exc


def _remote_evaluate(args: argparse.Namespace):
    """The engine backend ``--server`` selects (``None`` = local engine).

    Invalid URLs fail here, before any evaluation starts; transport
    failures later fall back per :class:`repro.serve.RemoteScheduler`.
    """
    server = getattr(args, "server", None)
    if server is None:
        return None
    from .serve import RemoteScheduler

    try:
        return RemoteScheduler(server).evaluate_cells
    except ValueError as exc:
        raise CLIUsageError(str(exc)) from exc


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GAM memory-model reproduction (ISCA 2018) toolbox.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    suite_help = (
        "paper|standard|all, gen:edges=N[,size=M][,seed=S], "
        "rand:n=N[,seed=S], or a .litmus file/directory path"
    )
    model_help = (
        "a registry model name, a .model file/directory path, "
        "or ctor:knob=value,..."
    )

    def add_stats_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--stats",
            nargs="?",
            const="text",
            choices=("text", "json"),
            default=None,
            metavar="FORMAT",
            help="collect engine telemetry and print a run report to "
            "stderr: text (default when the flag is bare) or json "
            "(see docs/observability.md); stdout is unchanged",
        )

    def add_engine_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the batch engine (default: 1, serial)",
        )
        cmd.add_argument(
            "--cache",
            default=None,
            metavar="DIR",
            help="on-disk result cache directory (default: no cache)",
        )

    def add_server_flag(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--server",
            default=None,
            metavar="URL",
            help="route cells through a verdict daemon (repro serve "
            "start) instead of the local engine; output is byte-"
            "identical and an unreachable server falls back locally "
            "(see docs/serving.md)",
        )

    def add_policy_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--timeout",
            type=float,
            default=None,
            metavar="S",
            help="per-batch deadline in seconds; a batch past it is "
            "killed and retried/failed per --on-error (default: none; "
            "forces pooled execution so batches are killable)",
        )
        cmd.add_argument(
            "--retries",
            type=int,
            default=0,
            metavar="N",
            help="re-run a failed batch up to N more times with "
            "exponential backoff (default: 0)",
        )
        cmd.add_argument(
            "--on-error",
            choices=("fail", "skip", "quarantine"),
            default="fail",
            help="what a failed batch becomes once retries are spent: "
            "fail raises (default), skip and quarantine record the "
            "failure and keep going (see docs/robustness.md)",
        )

    list_cmd = sub.add_parser("list", help="list catalogue contents")
    list_cmd.add_argument(
        "what",
        choices=("tests", "models", "workloads"),
        help="which catalogue to list",
    )
    list_cmd.add_argument(
        "--suite",
        default="all",
        metavar="SUITE",
        help=f"restrict 'list tests' to one suite ({suite_help})",
    )

    show = sub.add_parser("show", help="print a litmus test")
    show.add_argument("test", help="litmus test name")
    show.add_argument(
        "--format",
        choices=("pretty", "litmus"),
        default="pretty",
        help="output format: annotated programs or .litmus text",
    )

    check = sub.add_parser("check", help="is the asked outcome allowed?")
    check.add_argument("test", help="litmus test name")
    check.add_argument("-m", "--model", default="gam", help=f"memory model spec ({model_help})")
    check.add_argument(
        "--operational",
        action="store_true",
        help="use the abstract machine instead of the axioms "
        "(models with a machine: gam, gam0, sc, tso)",
    )
    add_engine_flags(check)
    add_server_flag(check)
    add_policy_flags(check)
    add_stats_flag(check)

    outcomes = sub.add_parser("outcomes", help="enumerate allowed outcomes")
    outcomes.add_argument("test", help="litmus test name")
    outcomes.add_argument("-m", "--model", default="gam", help=f"memory model spec ({model_help})")
    outcomes.add_argument(
        "--full", action="store_true", help="project onto all registers"
    )

    witness = sub.add_parser(
        "witness", help="show an execution witnessing the asked outcome"
    )
    witness.add_argument("test", help="litmus test name")
    witness.add_argument("-m", "--model", default="gam", help=f"memory model spec ({model_help})")

    diff = sub.add_parser("diff", help="outcome-set difference of two models")
    diff.add_argument("test", help="litmus test name")
    diff.add_argument("weaker", help=f"the (expectedly) weaker model ({model_help})")
    diff.add_argument("stronger", help=f"the (expectedly) stronger model ({model_help})")

    matrix = sub.add_parser("matrix", help="verdict matrix across the model zoo")
    matrix.add_argument(
        "--suite",
        default="paper",
        metavar="SUITE",
        help=f"which test suite to evaluate ({suite_help})",
    )
    add_engine_flags(matrix)
    add_server_flag(matrix)
    add_policy_flags(matrix)
    add_stats_flag(matrix)

    equiv = sub.add_parser("equiv", help="axiomatic vs operational agreement")
    equiv.add_argument("tests", nargs="*", help="test names (default: paper suite)")
    equiv.add_argument(
        "--suite",
        default=None,
        metavar="SUITE",
        help=f"check a whole suite instead of named tests ({suite_help})",
    )
    equiv.add_argument(
        "--pairs",
        default="gam,gam0",
        help="comma-separated definition pairs (gam,gam0,sc,tso)",
    )
    add_engine_flags(equiv)
    add_server_flag(equiv)
    add_policy_flags(equiv)
    add_stats_flag(equiv)

    synth = sub.add_parser(
        "synth", help="synthesize minimal fences restoring SC"
    )
    synth.add_argument("test", help="litmus test name")
    synth.add_argument("-m", "--model", default="gam", help=f"weak model spec ({model_help})")
    synth.add_argument(
        "--max-fences", type=int, default=3, help="search bound on fence count"
    )

    hunt = sub.add_parser(
        "hunt", help="differential model-hunt campaign (sharded, resumable)"
    )
    hunt.add_argument(
        "--suite",
        default=None,
        metavar="SUITE",
        help=f"suite to hunt over ({suite_help}); optional when resuming",
    )
    hunt.add_argument(
        "--pair",
        action="append",
        default=None,
        metavar="A:B",
        help="pair to differentiate (repeatable).  Axiomatic oracle: a "
        "model-spec pair, e.g. wmm:arm or space:same_address_loads=*:gam "
        "(default: wmm:arm).  Operational oracle: model:machine, or a "
        "bare name for a model vs its own machine (default: gam gam0)",
    )
    hunt.add_argument(
        "--oracle",
        choices=("axiomatic", "operational"),
        default=None,
        help="what each pair differences: two models' verdicts "
        "(axiomatic, the default) or a model's axioms vs an abstract "
        "machine's outcome sets (operational); optional when resuming",
    )
    hunt.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="split the suite into N deterministic shards (default: 4)",
    )
    hunt.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="campaign directory (state, cache, witnesses, report)",
    )
    hunt.add_argument(
        "--resume",
        action="store_true",
        help="require existing campaign state in --out "
        "(an existing matching campaign also resumes without this flag)",
    )
    hunt.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per shard (default: 1, serial)",
    )
    hunt.add_argument(
        "--no-lint",
        action="store_true",
        help="skip the lint pre-flight over the suite and expanded models",
    )
    add_policy_flags(hunt)
    add_stats_flag(hunt)

    strength = sub.add_parser(
        "strength", help="measure the model-strength lattice"
    )
    strength.add_argument(
        "--suite",
        default="paper",
        metavar="SUITE",
        help=f"which test suite to measure over ({suite_help})",
    )
    add_engine_flags(strength)
    add_server_flag(strength)
    add_policy_flags(strength)
    add_stats_flag(strength)

    gen = sub.add_parser(
        "gen", help="generate litmus tests from critical cycles (diy-style)"
    )
    gen.add_argument(
        "--edges", type=int, default=4, metavar="N",
        help="cycle-length budget (default: 4)",
    )
    gen.add_argument(
        "--size", type=int, default=None, metavar="M",
        help="keep at most M tests (default: all)",
    )
    gen.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="deterministic shuffle before the --size cap",
    )
    gen.add_argument(
        "-o", "--out", default=None, metavar="DIR",
        help="write one .litmus file per test into DIR",
    )
    gen.add_argument(
        "--dedupe",
        action="store_true",
        help="drop structurally isomorphic duplicates (canonical-hash)",
    )
    gen.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )

    lint = sub.add_parser(
        "lint", help="static diagnostics for litmus tests and model specs"
    )
    lint.add_argument(
        "--suite",
        default="all",
        metavar="SUITE",
        help=f"which tests to lint ({suite_help}; default: all)",
    )
    lint.add_argument(
        "-m",
        "--model",
        dest="models",
        action="append",
        default=None,
        metavar="MODEL",
        help=f"model spec to lint ({model_help}, or 'zoo' for every "
        "registry model; repeatable; default: zoo)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    lint.add_argument(
        "--edges",
        type=int,
        default=4,
        metavar="N",
        help="cycle budget for edge-signature matching (L010); "
        "0 disables it (default: 4)",
    )

    stats_cmd = sub.add_parser(
        "stats", help="render or diff telemetry run reports (stats.json)"
    )
    stats_cmd.add_argument(
        "path",
        metavar="PATH",
        help="a stats.json file, or a campaign directory containing one",
    )
    stats_cmd.add_argument(
        "other",
        nargs="?",
        default=None,
        metavar="OTHER",
        help="second report; when given, print the counter diff PATH -> OTHER",
    )
    stats_cmd.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="single-report rendering (default: text; ignored when diffing)",
    )

    cache_cmd = sub.add_parser(
        "cache", help="inspect and clean engine result caches"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_sub.add_parser(
        "stats", help="entry and temp-file counts/bytes for a cache directory"
    )
    cache_stats.add_argument(
        "dir",
        metavar="DIR",
        help="cache directory (a --cache DIR or a campaign's cache/)",
    )

    cache_purge = cache_sub.add_parser(
        "purge", help="delete stale cache debris (crash-orphaned temp files)"
    )
    cache_purge.add_argument(
        "dir",
        metavar="DIR",
        help="cache directory (a --cache DIR or a campaign's cache/)",
    )
    cache_purge.add_argument(
        "--stale-tmp",
        action="store_true",
        help="sweep orphaned *.tmp files left behind by killed workers",
    )
    cache_purge.add_argument(
        "--older-than",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="only remove temp files at least this old "
        "(default: 3600 — an hour; live runs rename theirs within seconds)",
    )

    cache_export = cache_sub.add_parser(
        "export",
        help="archive a warmed cache as a digest-validated gzipped tarball",
    )
    cache_export.add_argument(
        "dir",
        metavar="DIR",
        help="cache directory (a --cache DIR or a serve daemon's store)",
    )
    cache_export.add_argument(
        "tarball", metavar="TARBALL", help="output .tar.gz path"
    )

    cache_import = cache_sub.add_parser(
        "import",
        help="merge an exported cache tarball into a directory "
        "(refused on engine-version mismatch or corruption)",
    )
    cache_import.add_argument(
        "dir",
        metavar="DIR",
        help="destination cache directory (created if missing)",
    )
    cache_import.add_argument(
        "tarball", metavar="TARBALL", help="a `repro cache export` archive"
    )

    serve_cmd = sub.add_parser(
        "serve",
        help="run and operate the verdict daemon (docs/serving.md)",
    )
    serve_sub = serve_cmd.add_subparsers(dest="serve_command", required=True)

    serve_start = serve_sub.add_parser(
        "start",
        help="run a verdict daemon in the foreground until interrupted",
    )
    serve_start.add_argument(
        "--cache",
        required=True,
        metavar="DIR",
        help="the shared result store directory (the daemon's whole "
        "point; created if missing)",
    )
    serve_start.add_argument(
        "--host",
        default="127.0.0.1",
        metavar="HOST",
        help="bind address (default: 127.0.0.1 — the protocol is "
        "unauthenticated, do not bind it to a public interface)",
    )
    serve_start.add_argument(
        "--port",
        type=int,
        default=7907,
        metavar="PORT",
        help="bind port (default: 7907; 0 picks a free port)",
    )
    serve_start.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="warm-pool worker processes (default: 2)",
    )
    add_policy_flags(serve_start)

    serve_status = serve_sub.add_parser(
        "status", help="print a running daemon's status payload as JSON"
    )
    serve_status.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="the daemon's URL (e.g. http://127.0.0.1:7907)",
    )

    serve_warm = serve_sub.add_parser(
        "warm",
        help="pre-populate a daemon's shared store from a suite x model grid",
    )
    serve_warm.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="the daemon's URL (e.g. http://127.0.0.1:7907)",
    )
    serve_warm.add_argument(
        "--suite",
        default="paper",
        metavar="SUITE",
        help=f"tests to warm with (default: paper; {suite_help})",
    )

    import_cmd = sub.add_parser(
        "import", help="parse, validate and register .litmus files"
    )
    import_cmd.add_argument(
        "files", nargs="+", metavar="FILE", help=".litmus files or directories"
    )

    export = sub.add_parser("export", help="write tests out as .litmus text")
    export.add_argument(
        "--suite",
        default="all",
        metavar="SUITE",
        help=f"which tests to export ({suite_help})",
    )
    export.add_argument(
        "-o", "--out", default=None, metavar="DIR",
        help="write one .litmus file per test into DIR (default: stdout)",
    )

    model_cmd = sub.add_parser(
        "model", help="inspect, import and export .model definitions"
    )
    model_sub = model_cmd.add_subparsers(dest="model_command", required=True)

    model_show = model_sub.add_parser(
        "show", help="print a model as canonical .model text"
    )
    model_show.add_argument(
        "model",
        metavar="MODEL",
        help=f"model spec ({model_help}, or space:knob=*,... for a family)",
    )

    model_import = model_sub.add_parser(
        "import", help="parse and validate .model files"
    )
    model_import.add_argument(
        "files", nargs="+", metavar="FILE", help=".model files or directories"
    )

    model_export = model_sub.add_parser(
        "export", help="write models out as .model text"
    )
    model_export.add_argument(
        "--model",
        dest="models",
        action="append",
        default=None,
        metavar="MODEL",
        help=f"model spec to export ({model_help}; repeatable; "
        "default: every registry model)",
    )
    model_export.add_argument(
        "-o", "--out", default=None, metavar="DIR",
        help="write one .model file per model into DIR (default: stdout)",
    )

    sim = sub.add_parser("sim", help="run the Section V evaluation")
    sim.add_argument(
        "--workloads",
        default="mcf,gcc.166,hmmer.retro,namd",
        help="comma-separated workload names, or 'all'",
    )
    sim.add_argument("--length", type=int, default=6000, help="uOPs per workload")
    sim.add_argument("--seed", type=int, default=1, help="trace seed")
    sim.add_argument(
        "--checkpoints",
        type=int,
        default=1,
        help="independent trace samples per workload (paper: 10)",
    )
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "tests":
        for test in _resolve_suite(args.suite):
            source = f" ({test.source})" if test.source else ""
            print(f"{test.name:24s}{source} {test.description}")
    elif args.what == "models":
        from .models.registry import REGISTRY

        aliases = REGISTRY.aliases()
        for name in REGISTRY.all_names():
            if name in aliases:
                # An alias row points at its target instead of instantiating
                # (and describing) the same model twice.
                print(f"{name:12s} -> {aliases[name]}")
            else:
                print(f"{name:12s} {REGISTRY.get(name).description}")
    else:
        from .workloads.profiles import PROFILES

        for name, profile in sorted(PROFILES.items()):
            print(
                f"{name:18s} ld={profile.load_frac:.2f} st={profile.store_frac:.2f} "
                f"br={profile.branch_frac:.2f} ws={profile.working_set_kb}KB"
            )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from .litmus.registry import get_test

    test = get_test(args.test)
    if args.format == "litmus":
        from .litmus.frontend.printer import print_litmus

        print(print_litmus(test), end="")
    else:
        print(test)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .engine import VerdictSpec, evaluate_cells
    from .litmus.registry import get_test

    test = get_test(args.test)
    if test.asked is None:
        print(f"test {test.name!r} has no asked outcome")
        return 2
    if args.operational:
        from .engine import operational_machines
        from .models.registry import REGISTRY

        # Aliases resolve before the machine lookup, so `-m rmo` reaches
        # the gam0 machine rather than being rejected as unknown.
        canonical = REGISTRY.canonical_name(args.model)
        if canonical not in operational_machines():
            raise CLIUsageError(
                "--operational supports models: "
                f"{', '.join(operational_machines())}"
            )
        cell = VerdictSpec(test, canonical, oracle=f"operational:{canonical}")
        definition = "abstract machine"
    else:
        cell = VerdictSpec(test, _resolve_model(args.model))
        definition = "axioms"
    evaluate = _remote_evaluate(args) or evaluate_cells
    [allowed] = evaluate(
        [cell], jobs=args.jobs, cache_dir=args.cache,
        policy=_policy_from_args(args),
    )
    from .engine import CellFailure

    if isinstance(allowed, CellFailure):
        print(
            f"{test.name}: SKIPPED under {args.model} — {allowed.reason} "
            f"after {allowed.attempts} attempt(s): {allowed.message}"
        )
        return 1
    verdict = "ALLOWED" if allowed else "FORBIDDEN"
    print(f"{test.name}: {test.asked} is {verdict} under {args.model} ({definition})")
    expected = test.expect.get(args.model)
    if expected is not None and expected != allowed:
        print("WARNING: this contradicts the paper's stated verdict!")
        return 1
    return 0


def _cmd_outcomes(args: argparse.Namespace) -> int:
    from .core.axiomatic import enumerate_outcomes
    from .litmus.registry import get_test

    test = get_test(args.test)
    project = "full" if args.full else "observed"
    outcomes = enumerate_outcomes(test, _resolve_model(args.model), project=project)
    for outcome in sorted(outcomes, key=str):
        print(f"  {outcome}")
    print(f"{len(outcomes)} outcome(s) under {args.model}")
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    from .analysis import find_witness, render_execution
    from .litmus.registry import get_test

    test = get_test(args.test)
    witness = find_witness(test, _resolve_model(args.model))
    if witness is None:
        print(
            f"{test.name}: no witness — {args.model} forbids {test.asked} "
            "(no memory order satisfies the axioms)"
        )
        return 1
    print(render_execution(test, witness))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from .analysis import render_diff
    from .litmus.registry import get_test

    print(
        render_diff(
            get_test(args.test),
            _resolve_model(args.weaker),
            _resolve_model(args.stronger),
        )
    )
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .eval.litmus_matrix import (
        conformance_failures,
        litmus_matrix,
        render_matrix,
    )
    cells = litmus_matrix(
        tests=_resolve_suite(args.suite), jobs=args.jobs, cache_dir=args.cache,
        policy=_policy_from_args(args), evaluate=_remote_evaluate(args),
    )
    # The paper suite keeps its historical figure-listing title; other
    # suites are not the paper's figures and are titled by their spec.
    title = None if args.suite == "paper" else (
        f"Litmus verdict matrix ({args.suite} suite)"
    )
    print(render_matrix(cells, title=title))
    skipped = sorted({c.test_name for c in cells if c.failure is not None})
    if skipped:
        print(
            f"{len(skipped)} test(s) skipped after engine failures: "
            f"{', '.join(skipped)}"
        )
    failures = conformance_failures(cells)
    if failures:
        print(f"{len(failures)} verdicts disagree with the paper")
        return 1
    if all(cell.expected is None for cell in cells):
        print("the paper is silent on this suite; no verdicts to check")
    else:
        print("all verdicts agree with the paper")
    return 0


def _cmd_equiv(args: argparse.Namespace) -> int:
    from .equivalence.checker import check_suite
    from .litmus.registry import get_test, paper_suite

    pair_names = [p.strip() for p in args.pairs.split(",") if p.strip()]
    if args.suite is not None:
        tests = _resolve_suite(args.suite)
        tests += [get_test(name) for name in args.tests]
    elif args.tests:
        tests = [get_test(name) for name in args.tests]
    else:
        tests = list(paper_suite())
    status = 0
    reports = check_suite(
        tests, pair_names=pair_names, jobs=args.jobs, cache_dir=args.cache,
        policy=_policy_from_args(args), evaluate=_remote_evaluate(args),
    )
    for report in reports:
        if report.failure is not None:
            # An unanswered comparison is reported but does not fail the
            # run — that is exactly what skip/quarantine opted into.
            print(
                f"skip {report.test_name:24s} {report.pair_name:5s} "
                f"({report.failure})"
            )
            continue
        mark = "ok " if report.equivalent else "DIFF"
        print(
            f"{mark} {report.test_name:24s} {report.pair_name:5s} "
            f"|axiomatic|={len(report.axiomatic)} "
            f"|machine|={len(report.operational)}"
        )
        if not report.equivalent:
            status = 1
    return status


def _cmd_synth(args: argparse.Namespace) -> int:
    from .litmus.registry import get_test
    from .synthesis import synthesize_fences

    test = get_test(args.test)
    result = synthesize_fences(
        test, _resolve_model(args.model), max_fences=args.max_fences
    )
    if result is None:
        print(
            f"{test.name}: no fence plan with <= {args.max_fences} fences "
            f"restores SC under {args.model}"
        )
        return 1
    if not result.placements:
        print(f"{test.name}: already SC under {args.model}; no fences needed")
        return 0
    print(f"{test.name}: minimal plan ({len(result.placements)} fences, "
          f"{result.plans_checked} plans checked):")
    for placement in result.placements:
        print(f"  {placement}")
    return 0


def _cmd_hunt(args: argparse.Namespace) -> int:
    from .campaign import run_hunt
    from .eval.discrepancy import parse_pair

    pairs = None
    if args.pair:
        try:
            if args.oracle == "operational":
                # A bare name is the self-pair shorthand: `--pair gam`
                # differences the gam axioms against the gam machine.
                pairs = [
                    (spec, spec) if ":" not in spec else parse_pair(spec)
                    for spec in args.pair
                ]
            else:
                pairs = [parse_pair(spec) for spec in args.pair]
        except ValueError as exc:
            raise CLIUsageError(str(exc)) from exc
    # Bad suite specs surface as CampaignError from run_hunt's resolution
    # step (handled in main); a ValueError here would be a real bug.
    report = run_hunt(
        out=args.out,
        suite=args.suite,
        pairs=pairs,
        num_shards=args.shards,
        jobs=args.jobs,
        resume=args.resume,
        lint=not args.no_lint,
        log=print,
        oracle=args.oracle,
        policy=_policy_from_args(args),
        # Heartbeat lines ride with --stats so the default hunt log stays
        # byte-identical to the pre-telemetry output.
        heartbeat=args.stats is not None,
    )
    print()
    print(report.text, end="")
    return 0


def _cmd_strength(args: argparse.Namespace) -> int:
    from .eval.strength import render_strength, strength_matrix

    matrix = strength_matrix(
        tests=_resolve_suite(args.suite), jobs=args.jobs, cache_dir=args.cache,
        policy=_policy_from_args(args), evaluate=_remote_evaluate(args),
    )
    print(render_strength(matrix))
    return 0


def _write_litmus_dir(tests, out_dir: str) -> None:
    import os

    from .litmus.frontend.printer import print_litmus

    os.makedirs(out_dir, exist_ok=True)
    for test in tests:
        path = os.path.join(out_dir, f"{test.name}.litmus")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(print_litmus(test))


def _cmd_gen(args: argparse.Namespace) -> int:
    from .lint import dedupe_tests, preflight_tests
    from .litmus.frontend.gen import generate_suite
    from .litmus.frontend.suite import SuiteRegistry

    try:
        tests = generate_suite(
            max_edges=args.edges, size=args.size, seed=args.seed
        )
    except ValueError as exc:  # budget below the minimum cycle length
        raise CLIUsageError(str(exc)) from exc
    if args.dedupe:
        tests, dropped = dedupe_tests(tests)
        for duplicate, kept_name in dropped:
            print(
                f"dedupe: dropped {duplicate.name} "
                f"(isomorphic to {kept_name})"
            )
        print(f"dedupe: dropped {len(dropped)} isomorphic duplicate(s)")
    # Pre-flight: the generator must never emit tests the linter rejects;
    # an error here is a generator bug, reported rather than registered.
    errors = preflight_tests(tests)
    if errors:
        for finding in errors:
            print(finding.render(), file=sys.stderr)
        print(
            f"error: generated suite fails lint pre-flight "
            f"({len(errors)} error(s))",
            file=sys.stderr,
        )
        return 2
    # Generated names are deterministic functions of their cycle, so
    # re-registering them (e.g. two gen runs in one process) is idempotent.
    SuiteRegistry().register_all(tests, suite="generated", replace=True)
    if not args.quiet:
        for test in tests:
            print(f"{test.name:40s} P={test.num_procs} {test.asked}")
    if args.out is not None:
        _write_litmus_dir(tests, args.out)
        print(f"wrote {len(tests)} .litmus files to {args.out}")
    print(
        f"generated {len(tests)} tests "
        f"(edges<={args.edges}, size={args.size}, seed={args.seed})"
    )
    return 0


def _litmus_header_line(path: str) -> int:
    """1-based line number of a ``.litmus`` file's ``<arch> <name>`` header.

    The header is the first line that is non-blank after comment
    stripping — the same rule the parser uses — so ``L011`` diagnostics
    point at the line that declares the colliding name.
    """
    import re

    comment = re.compile(r"\(\*(.*?)\*\)")
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            if comment.sub("", raw).strip():
                return lineno
    return 1


def _iter_import_files(paths: Sequence[str]) -> list[str]:
    """Expand import arguments: directories become their sorted ``.litmus``
    entries, files pass through — mirroring suite-path resolution."""
    import os

    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            entries = [
                os.path.join(path, entry)
                for entry in sorted(os.listdir(path))
                if entry.endswith(".litmus")
            ]
            if not entries:
                raise CLIUsageError(f"no .litmus files in directory {path!r}")
            files.extend(entries)
        else:
            files.append(path)
    return files


def _cmd_import(args: argparse.Namespace) -> int:
    from .lint import make
    from .litmus.frontend.parser import parse_litmus, parse_litmus_file
    from .litmus.frontend.printer import print_litmus

    # Importing a file that shadows a catalogue name is fine for
    # validation; only duplicate names *within* the import fail, with a
    # file:line diagnostic pointing at both definition sites.
    seen: dict[str, tuple[str, int]] = {}
    for path in _iter_import_files(args.files):
        test = parse_litmus_file(path)  # LitmusParseError reported by main
        header_line = _litmus_header_line(path)
        if test.name in seen:
            first_path, first_line = seen[test.name]
            finding = make(
                "L011",
                test.name,
                f"test name collision: already imported from "
                f"{first_path}:{first_line}",
                source=path,
                line=header_line,
            )
            print(finding.render(), file=sys.stderr)
            return 2
        seen[test.name] = (path, header_line)
        # Validate the printer/parser round trip on every import.
        if parse_litmus(print_litmus(test)) != test:
            print(f"error: {test.name!r} does not round-trip", file=sys.stderr)
            return 2
        instrs = sum(len(program) for program in test.programs)
        print(
            f"imported {test.name:32s} P={test.num_procs} "
            f"instrs={instrs} asked={test.asked}"
        )
    print(f"{len(seen)} test(s) imported")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import LintReport, lint_models, lint_tests

    from .models.registry import REGISTRY
    from .models.spec import resolve_models

    tests = _resolve_suite(args.suite)
    models = []
    for spec in args.models or ["zoo"]:
        if spec == "zoo":
            models.extend(REGISTRY.get(name) for name in REGISTRY.names())
        else:
            models.extend(resolve_models(spec))
    findings = lint_tests(tests, signature_edges=args.edges)
    findings.extend(lint_models(models))
    report = LintReport(findings=tuple(findings))
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_status(strict=args.strict)


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import diff_reports, load_report

    # Missing files surface as OSError (handled in main); malformed or
    # schema-violating payloads are user input, hence CLIUsageError.
    try:
        report = load_report(args.path)
        other = load_report(args.other) if args.other is not None else None
    except ValueError as exc:
        raise CLIUsageError(str(exc)) from exc
    if other is not None:
        print(diff_reports(report, other), end="")
    elif args.format == "json":
        print(report.render_json(), end="")
    else:
        print(report.render_text(), end="")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import os
    import time

    from .engine import ResultCache

    # Guard before ResultCache touches the path: the constructor creates
    # missing directories, and a typo'd path must not become one.
    # `import` is the exception — its destination is allowed to be new.
    if args.cache_command != "import" and not os.path.isdir(args.dir):
        raise CLIUsageError(f"not a cache directory: {args.dir!r}")
    cache = ResultCache(args.dir)
    if args.cache_command == "export":
        count = cache.export_tarball(args.tarball)
        print(f"exported {count} entr{'y' if count == 1 else 'ies'} to {args.tarball}")
        return 0
    if args.cache_command == "import":
        imported, skipped = cache.import_tarball(args.tarball)
        print(
            f"imported {imported} entr{'y' if imported == 1 else 'ies'} "
            f"into {args.dir} ({skipped} already present)"
        )
        return 0
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache {args.dir}")
        print(f"  entries:         {stats.entries} ({stats.entry_bytes} bytes)")
        print(f"  stale tmp files: {stats.tmp_files} ({stats.tmp_bytes} bytes)")
        return 0
    # purge
    if not args.stale_tmp:
        raise CLIUsageError(
            "nothing selected to purge; pass --stale-tmp to sweep "
            "orphaned temp files"
        )
    # The clock read stays here in the CLI: the engine's cache method
    # takes `now` as data so the engine itself stays clock-free (R005).
    removed, reclaimed = cache.purge_stale_tmp(
        older_than=args.older_than, now=time.time()
    )
    print(
        f"removed {removed} stale tmp file(s) older than "
        f"{args.older_than:g}s ({reclaimed} bytes reclaimed)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    if args.serve_command == "start":
        from .serve import VerdictServer, VerdictService

        service = VerdictService(
            args.cache, workers=args.workers, policy=_policy_from_args(args)
        )
        server = VerdictServer(service, host=args.host, port=args.port)
        host, port = server.address
        print(
            f"verdict daemon on http://{host}:{port} "
            f"(store: {args.cache}, workers: {args.workers})",
            flush=True,
        )
        try:
            server.serve_forever()
        finally:
            server.close()
        return 0

    from .serve import ServeClient

    client = ServeClient(args.server)
    if args.serve_command == "status":
        print(json.dumps(client.status(), indent=2, sort_keys=True))
        return 0

    # warm: push the suite x model-zoo verdict grid through the daemon so
    # its shared store answers the matching `matrix --server` run with
    # zero kernel enumerations.
    from .engine import VerdictSpec
    from .eval.litmus_matrix import _MATRIX_MODELS
    from .serve.protocol import encode_cell, request_envelope

    tests = [t for t in _resolve_suite(args.suite) if t.asked is not None]
    cells = [
        encode_cell(VerdictSpec(test, model))
        for test in tests
        for model in _MATRIX_MODELS
    ]
    if not cells:
        print(f"suite {args.suite!r} has no asked outcomes; nothing to warm")
        return 0
    payload = client.post("batch", request_envelope(cells))
    stats = payload.get("stats") or {}
    print(
        f"warmed {len(cells)} cells ({len(tests)} tests x "
        f"{len(_MATRIX_MODELS)} models): "
        f"{stats.get('remote_hits', 0)} already stored, "
        f"{stats.get('evaluated', 0)} evaluated"
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .litmus.frontend.printer import print_litmus

    tests = _resolve_suite(args.suite)
    if args.out is not None:
        _write_litmus_dir(tests, args.out)
        print(f"wrote {len(tests)} .litmus files to {args.out}")
        return 0
    for i, test in enumerate(tests):
        if i:
            print()
        print(print_litmus(test), end="")
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    from .models.spec import load_model_path, print_model, resolve_models

    if args.model_command == "show":
        models = resolve_models(args.model)
        for i, model in enumerate(models):
            if i:
                print()
            print(print_model(model), end="")
        if len(models) != 1:
            print(f"# family of {len(models)} models from {args.model!r}")
        return 0
    if args.model_command == "import":
        from .models.spec import parse_model

        # Like `repro import` for .litmus files this validates without
        # touching the process-wide registry: shadowing a zoo name is fine
        # for validation, only duplicates *within* the import fail.
        seen: dict[str, str] = {}
        for path in args.files:
            for model in load_model_path(path):
                if model.name in seen:
                    raise CLIUsageError(
                        f"duplicate model name {model.name!r} in import "
                        f"(files {seen[model.name]!r} and {path!r})"
                    )
                seen[model.name] = path
                # Validate the printer/parser round trip on every import.
                text = print_model(model)
                if print_model(parse_model(text)) != text:
                    print(
                        f"error: {model.name!r} does not round-trip",
                        file=sys.stderr,
                    )
                    return 2
                print(
                    f"imported {model.name:32s} "
                    f"clauses={','.join(model.clause_names())} "
                    f"loadvalue={model.load_value}"
                )
        print(f"{len(seen)} model(s) imported")
        return 0
    # export
    if args.models:
        models = [model for spec in args.models for model in resolve_models(spec)]
    else:
        from .models.registry import REGISTRY

        models = [REGISTRY.get(name) for name in REGISTRY.names()]
    if args.out is not None:
        import os

        os.makedirs(args.out, exist_ok=True)
        for model in models:
            path = os.path.join(args.out, f"{model.name}.model")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(print_model(model))
        print(f"wrote {len(models)} .model files to {args.out}")
        return 0
    for i, model in enumerate(models):
        if i:
            print()
        print(print_model(model), end="")
    return 0


def _cmd_sim(args: argparse.Namespace) -> int:
    from .eval.figure18 import render_figure18, run_figure18
    from .eval.table2 import render_table2, table2
    from .eval.table3 import render_table3, table3
    from .workloads.profiles import profile_names

    if args.workloads == "all":
        workloads: Sequence[str] = profile_names()
    else:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    result = run_figure18(
        workloads=workloads,
        trace_length=args.length,
        seed=args.seed,
        checkpoints=args.checkpoints,
    )
    print(render_figure18(result))
    print()
    print(render_table2(table2(result)))
    print()
    print(render_table3(table3(result)))
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "show": _cmd_show,
    "check": _cmd_check,
    "outcomes": _cmd_outcomes,
    "witness": _cmd_witness,
    "diff": _cmd_diff,
    "matrix": _cmd_matrix,
    "equiv": _cmd_equiv,
    "hunt": _cmd_hunt,
    "synth": _cmd_synth,
    "strength": _cmd_strength,
    "gen": _cmd_gen,
    "lint": _cmd_lint,
    "stats": _cmd_stats,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "import": _cmd_import,
    "export": _cmd_export,
    "model": _cmd_model,
    "sim": _cmd_sim,
}


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, under a stats recorder when asked.

    With ``--stats`` the command executes inside
    :func:`repro.obs.collecting` and its run report is printed to
    *stderr* after the command's own output — stdout stays byte-for-byte
    what it would have been without the flag, and shell redirection
    (``2> stats.json``) captures the report alone.
    """
    stats_format = getattr(args, "stats", None)
    if stats_format is None:
        return _COMMANDS[args.command](args)
    from .obs import RunReport, collecting

    with collecting() as recorder:
        status = _COMMANDS[args.command](args)
        snapshot = recorder.snapshot()
    # Only deterministic inputs belong in meta; skip unset optionals.
    meta = {
        key: value
        for key in ("suite", "jobs", "oracle")
        if (value := getattr(args, key, None)) is not None
    }
    report = RunReport.from_snapshot(snapshot, command=args.command, meta=meta)
    if stats_format == "json":
        print(report.render_json(), end="", file=sys.stderr)
    else:
        print(report.render_text(), end="", file=sys.stderr)
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from .campaign.state import CampaignError
    from .core.axiomatic import DomainOverflowError
    from .engine import CacheTransferError, EngineWorkerError
    from .litmus.frontend.parser import LitmusParseError
    from .litmus.frontend.printer import LitmusPrintError
    from .models.spec import ModelSpecError
    from .serve import ServeError

    try:
        return _dispatch(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except (
        CampaignError,
        CacheTransferError,
        DomainOverflowError,
        EngineWorkerError,
        LitmusParseError,
        LitmusPrintError,
        ModelSpecError,
        ServeError,
        CLIUsageError,
        OSError,
    ) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
