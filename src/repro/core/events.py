"""Memory events and executions — the vocabulary of the axiomatic definition.

An axiomatic *program behaviour* is the triple ``<po, mo, rf>`` of
Section II-A.  Here:

* program order ``<po`` is implicit in each processor's dynamic instruction
  stream (a :class:`~repro.isa.program.ProgramRun`);
* the global memory order ``<mo`` is a tuple of :class:`EventId`;
* the read-from relation ``rf`` maps each load event to the store event it
  reads (initialization stores are explicit events on pseudo-processor -1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..isa.program import ProgramRun

__all__ = [
    "EventId",
    "INIT_PROC",
    "RMW_STORE_PART",
    "store_part",
    "base_index",
    "po_sort_key",
    "MemEvent",
    "Execution",
    "build_events",
    "init_events",
]

EventId = tuple[int, int]
"""``(processor, static instruction index)``.  Unique per dynamic memory
access because litmus programs are loop-free.  Initialization stores use
processor :data:`INIT_PROC`; the *store half* of an RMW uses the
instruction index offset by :data:`RMW_STORE_PART` (its load half keeps
the plain index)."""

INIT_PROC = -1
"""Pseudo-processor id owning the initialization stores."""

RMW_STORE_PART = 1 << 20
"""Index offset marking the store half of an RMW instruction."""


def store_part(index: int) -> int:
    """The event index of an RMW's store half."""
    return index + RMW_STORE_PART


def base_index(index: int) -> int:
    """The instruction index behind an event index (RMW halves share one)."""
    return index - RMW_STORE_PART if index >= RMW_STORE_PART else index


def po_sort_key(index: int) -> tuple[int, int]:
    """Program-order sort key: RMW store halves follow their load half."""
    return (base_index(index), 1 if index >= RMW_STORE_PART else 0)


@dataclass(frozen=True)
class MemEvent:
    """One dynamic memory access (or initialization store).

    Attributes:
        proc: processor id, or :data:`INIT_PROC` for initialization.
        index: static instruction index (or a counter for init events).
        is_store: True for stores (including init), False for loads.
        addr: the resolved address.
        value: store data, or the load's (candidate) return value.
        is_init: True for initialization stores.
    """

    proc: int
    index: int
    is_store: bool
    addr: int
    value: int
    is_init: bool = False

    @property
    def eid(self) -> EventId:
        """The event's identifier."""
        return (self.proc, self.index)

    def __repr__(self) -> str:
        kind = "Init" if self.is_init else ("St" if self.is_store else "Ld")
        return f"{kind}(P{self.proc}#{self.index} [{self.addr:#x}]={self.value})"


def build_events(runs: tuple[ProgramRun, ...]) -> tuple[MemEvent, ...]:
    """Extract the memory events of a candidate execution, per processor.

    Loads carry their *assigned* value; whether an assignment is legal is
    decided later against a concrete memory order.  An RMW contributes two
    events: a load half at the instruction index (value = loaded) and a
    store half at :func:`store_part` (value = stored data).
    """
    events: list[MemEvent] = []
    for proc, run in enumerate(runs):
        for executed in run.memory_accesses():
            instr = executed.instr
            if instr.is_load and instr.is_store:  # RMW
                events.append(
                    MemEvent(
                        proc=proc,
                        index=executed.index,
                        is_store=False,
                        addr=executed.addr,
                        value=executed.value,
                    )
                )
                events.append(
                    MemEvent(
                        proc=proc,
                        index=store_part(executed.index),
                        is_store=True,
                        addr=executed.addr,
                        value=executed.data,
                    )
                )
            else:
                events.append(
                    MemEvent(
                        proc=proc,
                        index=executed.index,
                        is_store=instr.is_store,
                        addr=executed.addr,
                        value=executed.value,
                    )
                )
    return tuple(events)


def init_events(
    events: tuple[MemEvent, ...],
    initial_memory: Mapping[int, int],
) -> tuple[MemEvent, ...]:
    """Synthesize one initialization store per address an execution touches.

    Addresses listed in ``initial_memory`` get their declared value; every
    other touched address starts at 0 (the litmus convention).  Init events
    sit at the front of every memory order.
    """
    addrs = {e.addr for e in events} | set(initial_memory)
    return tuple(
        MemEvent(
            proc=INIT_PROC,
            index=i,
            is_store=True,
            addr=addr,
            value=initial_memory.get(addr, 0),
            is_init=True,
        )
        for i, addr in enumerate(sorted(addrs))
    )


@dataclass(frozen=True)
class Execution:
    """A complete, axiom-satisfying execution of a litmus test.

    Attributes:
        runs: per-processor dynamic instruction streams (defines ``<po``).
        events: real memory events (no init), one per dynamic access.
        inits: the initialization store events.
        mo: the global memory order over ``inits + events`` ids, oldest first.
        rf: read-from; maps each load's id to the id of the store it reads.
        final_regs: ``(proc, reg) -> value`` after all processors finish.
        final_mem: ``addr -> value`` of the memory-order-youngest store.
    """

    runs: tuple[ProgramRun, ...]
    events: tuple[MemEvent, ...]
    inits: tuple[MemEvent, ...]
    mo: tuple[EventId, ...]
    rf: Mapping[EventId, EventId]
    final_regs: Mapping[tuple[int, str], int]
    final_mem: Mapping[int, int]

    def event(self, eid: EventId) -> MemEvent:
        """Look up an event (real or init) by id."""
        for e in self.events:
            if e.eid == eid:
                return e
        for e in self.inits:
            if e.eid == eid:
                return e
        raise KeyError(f"no event {eid}")

    def mo_position(self, eid: EventId) -> int:
        """Position of ``eid`` in the global memory order."""
        return self.mo.index(eid)

    def loads(self) -> tuple[MemEvent, ...]:
        """All load events."""
        return tuple(e for e in self.events if not e.is_store)

    def stores(self, include_init: bool = False) -> tuple[MemEvent, ...]:
        """All store events, optionally with initialization stores."""
        stores = tuple(e for e in self.events if e.is_store)
        if include_init:
            return self.inits + stores
        return stores
