"""The GAM abstract machine (Figures 16-17) with exhaustive exploration.

The machine is a monolithic memory plus, per processor, a PC and an ROB
whose entries carry exactly the fields the paper lists: a done bit, the
execution result, address-available/address, data-available/data and the
predicted branch target.  Each of the paper's eight rules is transliterated
below; the exploration driver fires every enabled rule from every reachable
state (with memoization), so the set of terminal register/memory states is
the machine's full behaviour set.

Two deliberate deviations, both behaviour-preserving:

* **Eager fetch.**  Rule Fetch is applied to closure whenever possible
  (branching over both predicted targets).  Every guard in Figure 17
  quantifies only over *older* ROB entries, so fetching earlier never
  disables a rule and never changes an older entry's behaviour; terminal
  states require everything fetched anyway.  This collapses an exponential
  amount of irrelevant interleaving.
* **Variants.**  The machine is parameterized over the same-address
  load-load policy so the GAM0 machine (no SALdLd stalls or
  load-address-resolution kills) can be explored with the same code; the
  paper's Figure 17 corresponds to :data:`GAM_MACHINE`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Optional

from ..isa.expr import evaluate, registers_read
from ..isa.instructions import (
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
)
from ..isa.program import Program
from ..litmus.test import LitmusTest, Outcome
from ..obs import current as _obs_current
from ..obs import time_block as _obs_time_block
from .axiomatic import project_outcome

__all__ = [
    "RobEntry",
    "ProcState",
    "MachineState",
    "MachineVariant",
    "GAM_MACHINE",
    "GAM0_MACHINE",
    "ExplorationResult",
    "explore",
    "operational_outcomes",
    "operational_allows",
]


@dataclass(frozen=True)
class MachineVariant:
    """Configuration of the abstract machine.

    Attributes:
        name: display name.
        same_address_loads: ``"saldld"`` — the Figure 17 machine (loads
            stall behind older unissued same-address loads, and address
            resolution kills younger done same-address loads); ``"none"`` —
            the GAM0 machine (neither mechanism; only *store* address
            resolution kills, which LdVal correctness requires).
    """

    name: str
    same_address_loads: str = "saldld"

    def __post_init__(self) -> None:
        if self.same_address_loads not in ("saldld", "none"):
            raise ValueError(
                f"unknown same-address-load policy {self.same_address_loads!r}"
            )


GAM_MACHINE = MachineVariant("gam-machine", same_address_loads="saldld")
GAM0_MACHINE = MachineVariant("gam0-machine", same_address_loads="none")


@dataclass(frozen=True)
class RobEntry:
    """One ROB entry (Section IV-B's field list, verbatim)."""

    index: int
    done: bool = False
    result: Optional[int] = None
    addr_avail: bool = False
    addr: Optional[int] = None
    data_avail: bool = False
    data: Optional[int] = None
    pred_next: Optional[int] = None


@dataclass(frozen=True)
class ProcState:
    """One processor: program counter and ROB."""

    pc: int
    rob: tuple[RobEntry, ...]


@dataclass(frozen=True)
class MachineState:
    """Whole-machine state: monolithic memory plus per-processor state."""

    memory: tuple[tuple[int, int], ...]
    procs: tuple[ProcState, ...]

    def read_mem(self, addr: int) -> int:
        """Monolithic memory read (unwritten addresses are 0)."""
        for a, v in self.memory:
            if a == addr:
                return v
        return 0

    def write_mem(self, addr: int, value: int) -> tuple[tuple[int, int], ...]:
        """A new memory image with ``addr`` updated."""
        items = dict(self.memory)
        items[addr] = value
        return tuple(sorted(items.items()))


class _Machine:
    """Rule implementations bound to one litmus test and variant."""

    def __init__(self, test: LitmusTest, variant: MachineVariant) -> None:
        self.test = test
        self.variant = variant
        self.programs = test.programs

    # -- generic helpers ---------------------------------------------------

    def _instr(self, proc: int, entry: RobEntry) -> Instruction:
        return self.programs[proc][entry.index]

    def _source_value(
        self,
        proc: int,
        rob: tuple[RobEntry, ...],
        upto: int,
        reg: str,
    ) -> Optional[int]:
        """Value of ``reg`` as seen by the entry at position ``upto``.

        Searches older entries for the youngest writer; returns ``None``
        when that writer has not finished execution (operand not ready).
        Registers with no in-flight writer read the initial value 0.
        """
        for pos in range(upto - 1, -1, -1):
            entry = rob[pos]
            instr = self._instr(proc, entry)
            if reg in instr.write_set():
                if not entry.done:
                    return None
                return entry.result
        return 0

    def _operands(
        self,
        proc: int,
        rob: tuple[RobEntry, ...],
        upto: int,
        regs: Iterable[str],
    ) -> Optional[dict[str, int]]:
        """All of ``regs`` if ready, else ``None``."""
        values: dict[str, int] = {}
        for reg in sorted(regs):
            value = self._source_value(proc, rob, upto, reg)
            if value is None:
                return None
            values[reg] = value
        return values

    # -- fetch (eager, with branch-prediction nondeterminism) --------------

    def fetch_closure(self, state: MachineState) -> Iterator[MachineState]:
        """Apply rule Fetch to exhaustion, branching over predictions."""
        pending = [state]
        while pending:
            current = pending.pop()
            advanced = False
            for proc, pstate in enumerate(current.procs):
                program = self.programs[proc]
                if pstate.pc >= len(program):
                    continue
                advanced = True
                instr = program[pstate.pc]
                if isinstance(instr, Branch):
                    taken_pc = program.labels[instr.target]
                    fall_pc = pstate.pc + 1
                    for predicted in dict.fromkeys((fall_pc, taken_pc)):
                        entry = RobEntry(index=pstate.pc, pred_next=predicted)
                        procs = list(current.procs)
                        procs[proc] = ProcState(predicted, pstate.rob + (entry,))
                        pending.append(replace(current, procs=tuple(procs)))
                else:
                    entry = RobEntry(index=pstate.pc)
                    procs = list(current.procs)
                    procs[proc] = ProcState(pstate.pc + 1, pstate.rob + (entry,))
                    pending.append(replace(current, procs=tuple(procs)))
                break
            if not advanced:
                yield current

    # -- kills -------------------------------------------------------------

    def _kill_from(
        self,
        state: MachineState,
        proc: int,
        rob: tuple[RobEntry, ...],
        first_dead: int,
        new_pc: int,
    ) -> Iterator[MachineState]:
        """Squash ROB entries from position ``first_dead``; refetch eagerly."""
        procs = list(state.procs)
        procs[proc] = ProcState(new_pc, rob[:first_dead])
        yield from self.fetch_closure(replace(state, procs=tuple(procs)))

    # -- rules -------------------------------------------------------------

    def successors(self, state: MachineState) -> Iterator[MachineState]:
        """All states reachable by firing one non-fetch rule (then refetching)."""
        for proc, pstate in enumerate(state.procs):
            rob = pstate.rob
            for pos, entry in enumerate(rob):
                instr = self._instr(proc, entry)
                if isinstance(instr, RegOp):
                    yield from self._execute_regop(state, proc, pos)
                elif isinstance(instr, Branch):
                    yield from self._execute_branch(state, proc, pos)
                elif isinstance(instr, Fence):
                    yield from self._execute_fence(state, proc, pos)
                elif isinstance(instr, Rmw):
                    yield from self._compute_mem_addr(state, proc, pos)
                    yield from self._execute_rmw(state, proc, pos)
                elif isinstance(instr, Load):
                    yield from self._compute_mem_addr(state, proc, pos)
                    yield from self._execute_load(state, proc, pos)
                elif isinstance(instr, Store):
                    yield from self._compute_mem_addr(state, proc, pos)
                    yield from self._compute_store_data(state, proc, pos)
                    yield from self._execute_store(state, proc, pos)
                elif isinstance(instr, Nop):
                    yield from self._execute_nop(state, proc, pos)

    def _update_entry(
        self,
        state: MachineState,
        proc: int,
        pos: int,
        **changes,
    ) -> MachineState:
        pstate = state.procs[proc]
        rob = list(pstate.rob)
        rob[pos] = replace(rob[pos], **changes)
        procs = list(state.procs)
        procs[proc] = ProcState(pstate.pc, tuple(rob))
        return replace(state, procs=tuple(procs))

    def _execute_regop(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Execute-Reg-to-Reg."""
        entry = state.procs[proc].rob[pos]
        if entry.done:
            return
        instr = self._instr(proc, entry)
        operands = self._operands(proc, state.procs[proc].rob, pos, instr.read_set())
        if operands is None:
            return
        result = evaluate(instr.expr, operands)
        yield self._update_entry(state, proc, pos, done=True, result=result)

    def _execute_nop(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """No-ops execute unconditionally (treated like a trivial reg-op)."""
        entry = state.procs[proc].rob[pos]
        if entry.done:
            return
        yield self._update_entry(state, proc, pos, done=True, result=0)

    def _execute_branch(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Execute-Branch (kills younger entries on misprediction)."""
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.done:
            return
        instr = self._instr(proc, entry)
        operands = self._operands(proc, rob, pos, instr.read_set())
        if operands is None:
            return
        taken = evaluate(instr.cond, operands) != 0
        program = self.programs[proc]
        actual = program.labels[instr.target] if taken else entry.index + 1
        done_state = self._update_entry(
            state, proc, pos, done=True, result=actual
        )
        if actual == entry.pred_next:
            yield done_state
        else:
            yield from self._kill_from(
                done_state, proc, done_state.procs[proc].rob, pos + 1, actual
            )

    def _execute_fence(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Execute-Fence: waits for older type-X memory instructions."""
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.done:
            return
        fence = self._instr(proc, entry)
        for older in rob[:pos]:
            older_instr = self._instr(proc, older)
            if fence.orders_before(older_instr) and not older.done:
                return
        yield self._update_entry(state, proc, pos, done=True)

    def _compute_mem_addr(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Compute-Mem-Addr, including the younger-load kill search."""
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.addr_avail:
            return
        instr = self._instr(proc, entry)
        operands = self._operands(proc, rob, pos, instr.addr_read_set())
        if operands is None:
            return
        addr = evaluate(instr.addr, operands)
        resolved = self._update_entry(state, proc, pos, addr_avail=True, addr=addr)
        if isinstance(instr, Load) and self.variant.same_address_loads != "saldld":
            # GAM0 machine: a *load* resolving its address kills nothing.
            yield resolved
            return
        rob2 = resolved.procs[proc].rob
        for later_pos in range(pos + 1, len(rob2)):
            later = rob2[later_pos]
            later_instr = self._instr(proc, later)
            if not later_instr.is_memory or not later.addr_avail:
                continue
            if later.addr != addr:
                continue
            if isinstance(later_instr, Load) and later.done:
                yield from self._kill_from(
                    resolved, proc, rob2, later_pos, later.index
                )
                return
            break  # first same-address memory instruction is not a done load
        yield resolved

    def _execute_load(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Execute-Load: bypass, memory read, or stall."""
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.done or not entry.addr_avail:
            return
        for older in rob[:pos]:
            older_instr = self._instr(proc, older)
            if isinstance(older_instr, Fence) and older_instr.post == "L":
                if not older.done:
                    return
        addr = entry.addr
        for older_pos in range(pos - 1, -1, -1):
            older = rob[older_pos]
            older_instr = self._instr(proc, older)
            if not older_instr.is_memory or older.done:
                continue
            if not older.addr_avail or older.addr != addr:
                continue
            if older_instr.is_store:
                # RMWs never provide forwarding data; plain stores do once
                # their data is computed.
                if isinstance(older_instr, Store) and older.data_avail:
                    yield self._update_entry(
                        state, proc, pos, done=True, result=older.data
                    )
                return
            if self.variant.same_address_loads == "saldld":
                return  # stall behind the older unissued same-address load
            continue  # GAM0: ignore older loads entirely
        yield self._update_entry(
            state, proc, pos, done=True, result=state.read_mem(addr)
        )

    def _execute_rmw(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Execute-RMW: the Section III-C extension.

        An RMW obeys the Execute-Store guards (it is a store) and reads the
        monolithic memory at the instant it writes it (it is a load that
        cannot forward): old value out, new value in, one rule firing.
        """
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.done or not entry.addr_avail:
            return
        instr = self._instr(proc, entry)
        operands = self._operands(proc, rob, pos, instr.read_set())
        if operands is None:
            return
        for older in rob[:pos]:
            older_instr = self._instr(proc, older)
            if older_instr.is_branch and not older.done:
                return  # BrSt
            if older_instr.is_memory and not older.addr_avail:
                return  # AddrSt
            if older_instr.is_memory and older.addr == entry.addr and not older.done:
                return  # SAMemSt (and the load-half ordering)
            if isinstance(older_instr, Fence) and not older.done:
                return  # an RMW is both fence post-types
        old_value = state.read_mem(entry.addr)
        new_value = evaluate(instr.data, {**operands, instr.dst: old_value})
        memory = state.write_mem(entry.addr, new_value)
        updated = self._update_entry(
            state, proc, pos, done=True, result=old_value, data_avail=True,
            data=new_value,
        )
        yield replace(updated, memory=memory)

    def _compute_store_data(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Compute-Store-Data."""
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.data_avail:
            return
        instr = self._instr(proc, entry)
        operands = self._operands(
            proc, rob, pos, registers_read(instr.data)
        )
        if operands is None:
            return
        data = evaluate(instr.data, operands)
        yield self._update_entry(state, proc, pos, data_avail=True, data=data)

    def _execute_store(
        self, state: MachineState, proc: int, pos: int
    ) -> Iterator[MachineState]:
        """Rule Execute-Store: the six guard conditions of Figure 17."""
        rob = state.procs[proc].rob
        entry = rob[pos]
        if entry.done or not entry.addr_avail or not entry.data_avail:
            return
        for older in rob[:pos]:
            older_instr = self._instr(proc, older)
            if older_instr.is_branch and not older.done:
                return  # guard 3
            if older_instr.is_memory and not older.addr_avail:
                return  # guard 4
            if older_instr.is_memory and older.addr == entry.addr and not older.done:
                return  # guard 5
            if isinstance(older_instr, Fence) and older_instr.post == "S":
                if not older.done:
                    return  # guard 6
        memory = state.write_mem(entry.addr, entry.data)
        updated = self._update_entry(state, proc, pos, done=True)
        yield replace(updated, memory=memory)

    # -- terminal states ----------------------------------------------------

    def is_terminal(self, state: MachineState) -> bool:
        """All instructions fetched and every ROB entry done."""
        for proc, pstate in enumerate(state.procs):
            if pstate.pc < len(self.programs[proc]):
                return False
            if any(not entry.done for entry in pstate.rob):
                return False
        return True

    def final_state(
        self, state: MachineState
    ) -> tuple[dict[tuple[int, str], int], dict[int, int]]:
        """Final register file (youngest writer per register) and memory."""
        regs: dict[tuple[int, str], int] = {}
        for proc, pstate in enumerate(state.procs):
            names: set[str] = set(self.programs[proc].registers())
            for reg in names:
                value = 0
                for entry in pstate.rob:
                    instr = self._instr(proc, entry)
                    if reg in instr.write_set():
                        value = entry.result
                regs[(proc, reg)] = value
        return regs, dict(state.memory)


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome set plus exploration statistics."""

    outcomes: frozenset[Outcome]
    states_visited: int
    terminal_states: int


def explore(
    test: LitmusTest,
    variant: MachineVariant = GAM_MACHINE,
    project: str = "observed",
    max_states: int = 2_000_000,
) -> ExplorationResult:
    """Exhaustively explore the abstract machine on ``test``.

    Raises ``RuntimeError`` if more than ``max_states`` distinct states are
    visited (a safety valve; litmus tests stay far below it).
    """
    machine = _Machine(test, variant)
    initial_memory = tuple(sorted(test.initial_memory.items()))
    empty = MachineState(
        memory=initial_memory,
        procs=tuple(ProcState(0, ()) for _ in test.programs),
    )
    with _obs_time_block("operational.explore.time"):
        stack = list(machine.fetch_closure(empty))
        seen: set[MachineState] = set(stack)
        outcomes: set[Outcome] = set()
        terminals = 0
        while stack:
            state = stack.pop()
            if machine.is_terminal(state):
                terminals += 1
                regs, mem = machine.final_state(state)
                outcomes.add(project_outcome(test, regs, mem, project))
                continue
            for successor in machine.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    if len(seen) > max_states:
                        raise RuntimeError(
                            f"state-space explosion exploring {test.name!r}"
                        )
                    stack.append(successor)
    recorder = _obs_current()
    if recorder.active:
        recorder.incr("operational.explore.runs")
        recorder.incr("operational.explore.states", len(seen))
        recorder.incr("operational.explore.terminals", terminals)
    return ExplorationResult(
        outcomes=frozenset(outcomes),
        states_visited=len(seen),
        terminal_states=terminals,
    )


def operational_outcomes(
    test: LitmusTest,
    variant: MachineVariant = GAM_MACHINE,
    project: str = "observed",
) -> frozenset[Outcome]:
    """The abstract machine's allowed outcome set (projected)."""
    return explore(test, variant, project).outcomes


def operational_allows(
    test: LitmusTest,
    variant: MachineVariant = GAM_MACHINE,
    outcome: Optional[Outcome] = None,
) -> bool:
    """Does the machine allow ``outcome`` (default: the asked outcome)?"""
    if outcome is None:
        outcome = test.asked
    if outcome is None:
        raise ValueError(f"test {test.name!r} has no asked outcome")
    machine = _Machine(test, variant)
    initial_memory = tuple(sorted(test.initial_memory.items()))
    empty = MachineState(
        memory=initial_memory,
        procs=tuple(ProcState(0, ()) for _ in test.programs),
    )
    stack = list(machine.fetch_closure(empty))
    seen: set[MachineState] = set(stack)
    while stack:
        state = stack.pop()
        if machine.is_terminal(state):
            regs, mem = machine.final_state(state)
            if outcome.matches(regs, mem):
                return True
            continue
        for successor in machine.successors(state):
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False
