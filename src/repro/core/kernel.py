"""Frontier-memoized bitmask enumeration kernel — the engine's fast path.

The exact enumerator (:func:`repro.core.axiomatic._orders_with_load_values`)
backtracks through *every* topological order of the memory-event DAG:
factorial in event count, and a *forbidden* verdict — the dominant case in
differential hunts — must exhaust the whole space.  This module collapses
that search into a dynamic program over DAG antichains.

**The abstract-state argument.**  Within one candidate value combination the
program runs are fixed, so final registers are fixed; the only thing a
memory order still decides is final memory and whether the combination is
realizable at all.  During the left-to-right construction of a memory
order, every remaining decision depends on exactly two things:

* *which events are already placed* — this determines the ready frontier
  (the antichain of events whose ppo predecessors are all placed) and
  whether a load's youngest program-order-earlier same-address store is
  still unplaced (the LoadValueGAM forwarding case);
* *the latest placed store's value per address* — this determines the value
  a non-forwarding load must return, and, at full placement, the final
  memory itself.

Two partial orders reaching the same ``(placed set, last-store values)``
state therefore have identical sets of legal completions and identical
reachable final memories; exploring the state once is exact.  Event
identity of the last store is irrelevant on this path because nothing
downstream reads it: read-from sources, coherence side conditions and
execution-dependent (dynamic) ppo clauses are exactly the features the
dispatch in :mod:`repro.core.axiomatic` routes to the slow path.

**Representation.**  Events and edges are integer bitmasks: node ``i``'s
predecessors are a single ``pred_mask[i]`` int, readiness is two mask
operations, and the placed set is one int — no per-level ready-list
rescans, no dict-of-EventId successor maps, no set churn.  An RMW's two
halves form one composite node (the load half is checked against the
pre-placement state, then the store half's write is applied), realizing the
"accesses the memory system at one instant" semantics of Section III-C.

**Complexity.**  The DP visits each reachable ``(placed_mask, last_values)``
state once and scans the ``n`` nodes per state: ``O(S * n)`` where ``S`` is
bounded by (number of antichain-downsets of the ppo DAG) x (number of
reachable per-address value tuples) — for litmus-sized tests a few hundred
states where the order enumerator walks millions of interleavings.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..obs import incr as _obs_incr
from ..obs import observe as _obs_observe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .axiomatic import MemoryModel, _Candidate

__all__ = ["kernel_supports", "FrontierKernel"]


def kernel_supports(model: "MemoryModel") -> bool:
    """Can the frontier kernel serve this model exactly?

    The kernel never materializes read-from relations or complete orders,
    so models with execution-dependent ppo clauses (ARM's SALdLdARM) or a
    per-location-SC side condition (``plsc``) need the exact enumerator.
    """
    return not model.dynamic_clauses and not model.requires_coherence


class FrontierKernel:
    """The frontier DP for one candidate DAG and load-value axiom.

    Built from a specialized candidate (events plus the model's static-ppo
    memory DAG); :meth:`final_memories` answers "which final memories can a
    legal memory order reach?" without materializing any order.  Instances
    are cached per ``(combo, DAG, axiom)`` by
    :class:`repro.core.axiomatic.CandidatePrefix`, so models with identical
    clause sets share one solved DP.
    """

    __slots__ = (
        "addresses",
        "_n",
        "_full",
        "_pred_mask",
        "_checks",
        "_writes",
        "_init_values",
        "_memo",
        "_finals",
    )

    def __init__(self, candidate: "_Candidate", load_value_mode: str) -> None:
        pairs = candidate.rmw_pairs
        folded = set(pairs.values())
        node_eids = [e.eid for e in candidate.events if e.eid not in folded]
        node_of = {eid: i for i, eid in enumerate(node_eids)}
        for load_eid, store_eid in pairs.items():
            node_of[store_eid] = node_of[load_eid]

        n = len(node_eids)
        pred_mask = [0] * n
        for a, b in candidate.mem_edges:
            node_a, node_b = node_of[a], node_of[b]
            if node_a != node_b:
                pred_mask[node_b] |= 1 << node_a

        self.addresses: tuple[int, ...] = tuple(
            sorted({e.addr for e in itertools.chain(candidate.inits, candidate.events)})
        )
        slot = {addr: i for i, addr in enumerate(self.addresses)}
        init_values = [0] * len(self.addresses)
        for event in candidate.inits:
            init_values[slot[event.addr]] = event.value

        # Per node: an optional load check ``(slot, expected, fwd_bit,
        # fwd_value)`` (fwd_bit < 0: no forwarding candidate) and an
        # optional store write ``(slot, value)`` (the store half for RMWs).
        checks: list[Optional[tuple[int, int, int, int]]] = [None] * n
        writes: list[Optional[tuple[int, int]]] = [None] * n
        for i, eid in enumerate(node_eids):
            event = candidate.event_by_id[eid]
            if event.is_store:
                writes[i] = (slot[event.addr], event.value)
                continue
            fwd_bit, fwd_value = -1, 0
            if load_value_mode == "gam" and eid not in candidate.no_forward:
                po_stores = candidate.po_stores.get(eid, ())
                if po_stores:
                    youngest = po_stores[-1]
                    fwd_bit = node_of[youngest.eid]
                    fwd_value = youngest.value
            checks[i] = (slot[event.addr], event.value, fwd_bit, fwd_value)
            store_eid = pairs.get(eid)
            if store_eid is not None:
                store_event = candidate.event_by_id[store_eid]
                writes[i] = (slot[store_event.addr], store_event.value)

        self._n = n
        self._full = (1 << n) - 1
        self._pred_mask = pred_mask
        self._checks = checks
        self._writes = writes
        self._init_values = tuple(init_values)
        self._memo: dict[tuple[int, tuple[int, ...]], frozenset] = {}
        self._finals: Optional[frozenset[tuple[int, ...]]] = None
        _obs_incr("kernel.builds")

    def final_memories(self) -> frozenset[tuple[int, ...]]:
        """All final memories (values aligned with :attr:`addresses`) some
        legal memory order reaches; empty iff no order satisfies the
        LoadValue axiom (the combination is unrealizable)."""
        if self._finals is None:
            self._finals = self._solve(0, self._init_values)
            # Telemetry at the solve boundary only — never in the DP loop.
            _obs_incr("kernel.dp.states", len(self._memo))
            _obs_observe("kernel.frontier.nodes", len(self._finals))
        return self._finals

    def as_memory(self, values: tuple[int, ...]) -> dict[int, int]:
        """One :meth:`final_memories` tuple as an ``addr -> value`` dict."""
        return dict(zip(self.addresses, values))

    def _solve(
        self, placed: int, last: tuple[int, ...]
    ) -> frozenset[tuple[int, ...]]:
        if placed == self._full:
            return frozenset((last,))
        key = (placed, last)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        pred_mask = self._pred_mask
        checks = self._checks
        writes = self._writes
        results: set[tuple[int, ...]] = set()
        for i in range(self._n):
            bit = 1 << i
            if placed & bit or pred_mask[i] & ~placed:
                continue
            check = checks[i]
            if check is not None:
                addr_slot, expected, fwd_bit, fwd_value = check
                if fwd_bit >= 0 and not placed >> fwd_bit & 1:
                    value = fwd_value
                else:
                    value = last[addr_slot]
                if value != expected:
                    continue
            write = writes[i]
            if write is not None:
                addr_slot, value = write
                if last[addr_slot] == value:
                    successor = last
                else:
                    mutable = list(last)
                    mutable[addr_slot] = value
                    successor = tuple(mutable)
            else:
                successor = last
            results.update(self._solve(placed | bit, successor))
        outcome = frozenset(results)
        self._memo[key] = outcome
        return outcome
