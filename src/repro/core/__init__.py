"""The paper's contribution: GAM's axiomatic and operational definitions.

* :mod:`repro.core.events` / :mod:`repro.core.dependencies` /
  :mod:`repro.core.ppo` — the vocabulary of Section IV-A (events, ddep/adep,
  preserved program order).
* :mod:`repro.core.axiomatic` — the axiomatic checking engine.
* :mod:`repro.core.kernel` — the frontier-memoized bitmask enumeration
  kernel (the engine's fast path for models without dynamic clauses).
* :mod:`repro.core.operational` — the Figure 17 abstract machine with
  exhaustive exploration.
* :mod:`repro.core.construction` — Section III's construction procedure as
  a model factory.
* :mod:`repro.core.perloc_sc` — the per-location SC property.
"""

from .axiomatic import (
    CandidatePrefix,
    DomainOverflowError,
    MemoryModel,
    enumerate_executions,
    enumerate_outcomes,
    is_allowed,
    value_domain,
)
from .construction import CONSTRAINTS, assemble, derivation_chain
from .dependencies import adep_edges, ddep_edges
from .events import EventId, Execution, MemEvent
from .kernel import FrontierKernel, kernel_supports
from .perloc_sc import execution_is_per_location_sc, per_location_orders
from .ppo import (
    AddrSt,
    BrSt,
    Clause,
    DynamicClause,
    FenceOrd,
    PairwiseOrder,
    PpoContext,
    RegRAW,
    SALdLd,
    SALdLdARM,
    SAMemSt,
    SARmwLd,
    SAStLd,
    compute_ppo,
    project_to_memory,
)

__all__ = [
    "MemoryModel",
    "CandidatePrefix",
    "DomainOverflowError",
    "enumerate_executions",
    "enumerate_outcomes",
    "is_allowed",
    "value_domain",
    "FrontierKernel",
    "kernel_supports",
    "assemble",
    "derivation_chain",
    "CONSTRAINTS",
    "EventId",
    "MemEvent",
    "Execution",
    "ddep_edges",
    "adep_edges",
    "execution_is_per_location_sc",
    "per_location_orders",
    "PpoContext",
    "Clause",
    "DynamicClause",
    "SAMemSt",
    "SAStLd",
    "SALdLd",
    "SARmwLd",
    "RegRAW",
    "BrSt",
    "AddrSt",
    "FenceOrd",
    "PairwiseOrder",
    "SALdLdARM",
    "compute_ppo",
    "project_to_memory",
]
