"""Reference operational machines for the strong baselines: SC and TSO.

The SC machine is Figure 1: processors attached directly to a monolithic
memory, one instruction executed atomically per step.  The TSO machine adds
a private FIFO store buffer per processor (the classic abstraction the
paper recalls in Section II-B): stores enter the buffer, drain to memory
nondeterministically, loads check their own buffer first, and ``FenceSL``
(the only fence TSO needs) waits for an empty buffer.

Both machines are explored exhaustively; their outcome sets are compared
against the corresponding axiomatic models in the equivalence tests, which
cross-validates the axiomatic engine from a second direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..isa.expr import evaluate
from ..isa.instructions import (
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
)
from ..litmus.test import LitmusTest, Outcome
from .axiomatic import project_outcome

__all__ = ["sc_outcomes", "tso_outcomes"]


@dataclass(frozen=True)
class _SeqProcState:
    """In-order processor state: pc, registers, FIFO store buffer."""

    pc: int
    regs: tuple[tuple[str, int], ...]
    store_buffer: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class _SeqState:
    memory: tuple[tuple[int, int], ...]
    procs: tuple[_SeqProcState, ...]


def _reg_read(pstate: _SeqProcState, name: str) -> int:
    for reg, value in pstate.regs:
        if reg == name:
            return value
    return 0


def _reg_write(pstate: _SeqProcState, name: str, value: int) -> tuple[tuple[str, int], ...]:
    regs = dict(pstate.regs)
    regs[name] = value
    return tuple(sorted(regs.items()))


def _mem_read(state: _SeqState, addr: int) -> int:
    for a, v in state.memory:
        if a == addr:
            return v
    return 0


def _mem_write(state: _SeqState, addr: int, value: int) -> tuple[tuple[int, int], ...]:
    memory = dict(state.memory)
    memory[addr] = value
    return tuple(sorted(memory.items()))


def _step_proc(
    test: LitmusTest,
    state: _SeqState,
    proc: int,
    with_store_buffer: bool,
) -> Iterator[_SeqState]:
    """Execute the next instruction of ``proc`` (one atomic machine step)."""
    pstate = state.procs[proc]
    program = test.programs[proc]
    if pstate.pc >= len(program):
        return
    instr = program[pstate.pc]
    regs = {name: _reg_read(pstate, name) for name in program.registers()}
    next_pc = pstate.pc + 1
    new_pstate: Optional[_SeqProcState] = None
    new_memory = state.memory

    if isinstance(instr, Rmw):
        if with_store_buffer and pstate.store_buffer:
            return  # locked RMW drains the store buffer first (x86-style)
        addr = evaluate(instr.addr, regs)
        old_value = _mem_read(state, addr)
        new_value = evaluate(instr.data, {**regs, instr.dst: old_value})
        new_memory = _mem_write(state, addr, new_value)
        new_pstate = replace(
            pstate, pc=next_pc, regs=_reg_write(pstate, instr.dst, old_value)
        )
    elif isinstance(instr, Load):
        addr = evaluate(instr.addr, regs)
        value: Optional[int] = None
        if with_store_buffer:
            for buf_addr, buf_value in reversed(pstate.store_buffer):
                if buf_addr == addr:
                    value = buf_value
                    break
        if value is None:
            value = _mem_read(state, addr)
        new_pstate = replace(
            pstate, pc=next_pc, regs=_reg_write(pstate, instr.dst, value)
        )
    elif isinstance(instr, Store):
        addr = evaluate(instr.addr, regs)
        data = evaluate(instr.data, regs)
        if with_store_buffer:
            new_pstate = replace(
                pstate,
                pc=next_pc,
                store_buffer=pstate.store_buffer + ((addr, data),),
            )
        else:
            new_memory = _mem_write(state, addr, data)
            new_pstate = replace(pstate, pc=next_pc)
    elif isinstance(instr, RegOp):
        result = evaluate(instr.expr, regs)
        new_pstate = replace(
            pstate, pc=next_pc, regs=_reg_write(pstate, instr.dst, result)
        )
    elif isinstance(instr, Branch):
        if evaluate(instr.cond, regs) != 0:
            next_pc = program.labels[instr.target]
        new_pstate = replace(pstate, pc=next_pc)
    elif isinstance(instr, Fence):
        if with_store_buffer and instr.pre == "S" and instr.post == "L":
            if pstate.store_buffer:
                return  # FenceSL waits for the store buffer to drain
        new_pstate = replace(pstate, pc=next_pc)
    elif isinstance(instr, Nop):
        new_pstate = replace(pstate, pc=next_pc)
    else:
        raise TypeError(f"unknown instruction {instr!r}")

    procs = list(state.procs)
    procs[proc] = new_pstate
    yield _SeqState(memory=new_memory, procs=tuple(procs))


def _drain_one(state: _SeqState, proc: int) -> Iterator[_SeqState]:
    """Write the oldest store-buffer entry of ``proc`` to memory."""
    pstate = state.procs[proc]
    if not pstate.store_buffer:
        return
    (addr, value), rest = pstate.store_buffer[0], pstate.store_buffer[1:]
    procs = list(state.procs)
    procs[proc] = replace(pstate, store_buffer=rest)
    yield _SeqState(memory=_mem_write(state, addr, value), procs=tuple(procs))


def _explore(
    test: LitmusTest,
    with_store_buffer: bool,
    project: str,
) -> frozenset[Outcome]:
    initial = _SeqState(
        memory=tuple(sorted(test.initial_memory.items())),
        procs=tuple(_SeqProcState(0, ()) for _ in test.programs),
    )
    stack = [initial]
    seen = {initial}
    outcomes: set[Outcome] = set()
    while stack:
        state = stack.pop()
        successors = []
        for proc in range(len(test.programs)):
            successors.extend(_step_proc(test, state, proc, with_store_buffer))
            if with_store_buffer:
                successors.extend(_drain_one(state, proc))
        if not successors:
            final_regs = {
                (proc, reg): _reg_read(pstate, reg)
                for proc, pstate in enumerate(state.procs)
                for reg in test.programs[proc].registers()
            }
            outcomes.add(
                project_outcome(test, final_regs, dict(state.memory), project)
            )
            continue
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return frozenset(outcomes)


def sc_outcomes(test: LitmusTest, project: str = "observed") -> frozenset[Outcome]:
    """All outcomes of the SC abstract machine (Figure 1)."""
    return _explore(test, with_store_buffer=False, project=project)


def tso_outcomes(test: LitmusTest, project: str = "observed") -> frozenset[Outcome]:
    """All outcomes of the TSO store-buffer machine."""
    return _explore(test, with_store_buffer=True, project=project)
