"""Per-location SC: the coherence property of Section III-E.

Per-location SC requires that all accesses to each single address appear to
execute in some sequential order consistent with every processor's commit
order.  The standard equivalent formulation (Cantin et al. [79]) is
acyclicity, per address, of the union of:

* ``po-loc`` — program order restricted to same-address accesses,
* ``rf``     — read-from,
* ``co``     — the coherence order of stores (here: ``<mo`` per address),
* ``fr``     — from-read: a load precedes every store coherence-after the
  store it read.

GAM is per-location SC by construction (SALdLd closes the only gap GAM0
leaves); the property tests assert this over random programs.
"""

from __future__ import annotations

from typing import Iterable

from .events import EventId, Execution, MemEvent, po_sort_key

__all__ = ["execution_is_per_location_sc", "coherence_edges", "per_location_orders"]


def _has_cycle(nodes: Iterable[EventId], edges: set[tuple[EventId, EventId]]) -> bool:
    """Iterative three-colour DFS cycle detection."""
    succs: dict[EventId, list[EventId]] = {n: [] for n in nodes}
    for a, b in edges:
        if a in succs and b in succs and a != b:
            succs[a].append(b)
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {n: WHITE for n in succs}
    for root in succs:
        if colour[root] != WHITE:
            continue
        stack: list[tuple[EventId, int]] = [(root, 0)]
        colour[root] = GREY
        while stack:
            node, child = stack[-1]
            if child < len(succs[node]):
                stack[-1] = (node, child + 1)
                nxt = succs[node][child]
                if colour[nxt] == GREY:
                    return True
                if colour[nxt] == WHITE:
                    colour[nxt] = GREY
                    stack.append((nxt, 0))
            else:
                colour[node] = BLACK
                stack.pop()
    return False


def coherence_edges(
    execution: Execution,
    addr: int,
) -> tuple[list[EventId], set[tuple[EventId, EventId]]]:
    """The per-address coherence graph (nodes and po-loc/rf/co/fr edges)."""
    mo_pos = {eid: i for i, eid in enumerate(execution.mo)}
    events = [e for e in execution.inits + execution.events if e.addr == addr]
    nodes = [e.eid for e in events]
    node_set = set(nodes)
    edges: set[tuple[EventId, EventId]] = set()

    # po-loc: consecutive same-address accesses per processor.
    per_proc: dict[int, list[MemEvent]] = {}
    for event in execution.events:
        if event.addr == addr:
            per_proc.setdefault(event.proc, []).append(event)
    for stream in per_proc.values():
        stream.sort(key=lambda e: po_sort_key(e.index))
        for older, younger in zip(stream, stream[1:]):
            edges.add((older.eid, younger.eid))

    # co: stores in memory order (init events are at the front of mo).
    stores = sorted(
        (e for e in events if e.is_store), key=lambda e: mo_pos[e.eid]
    )
    for older, younger in zip(stores, stores[1:]):
        edges.add((older.eid, younger.eid))

    # rf and fr.
    co_rank = {e.eid: i for i, e in enumerate(stores)}
    for load in execution.events:
        if load.is_store or load.addr != addr:
            continue
        source = execution.rf.get(load.eid)
        if source is None or source not in node_set:
            continue
        edges.add((source, load.eid))
        rank = co_rank[source]
        if rank + 1 < len(stores):
            edges.add((load.eid, stores[rank + 1].eid))
    return nodes, edges


def execution_is_per_location_sc(execution: Execution) -> bool:
    """True when every address's coherence graph is acyclic."""
    addrs = {e.addr for e in execution.events}
    for addr in addrs:
        nodes, edges = coherence_edges(execution, addr)
        if _has_cycle(nodes, edges):
            return False
    return True


def per_location_orders(execution: Execution) -> dict[int, tuple[EventId, ...]]:
    """A witness sequentialization per address (topological order).

    Raises ``ValueError`` if the execution is not per-location SC; useful in
    examples to *show* the sequential order the property promises.
    """
    witness: dict[int, tuple[EventId, ...]] = {}
    for addr in {e.addr for e in execution.events}:
        nodes, edges = coherence_edges(execution, addr)
        succs: dict[EventId, list[EventId]] = {n: [] for n in nodes}
        indeg: dict[EventId, int] = {n: 0 for n in nodes}
        for a, b in edges:
            if a != b:
                succs[a].append(b)
                indeg[b] += 1
        ready = sorted(n for n in nodes if indeg[n] == 0)
        order: list[EventId] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for nxt in succs[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(nodes):
            raise ValueError(f"address {addr:#x} is not sequentializable")
        witness[addr] = tuple(order)
    return witness
