"""Preserved program order: Definition 6 as composable clauses.

Each numbered case of Definition 6 is a :class:`Clause` producing edges
between *same-processor* dynamic instructions (identified by static index).
A memory model is essentially a choice of clauses; GAM uses the eight
below plus transitivity, which :func:`compute_ppo` applies by closing the
edge set over the whole instruction stream (memory and non-memory alike)
before :func:`project_to_memory` keeps the pairs the InstOrder axiom
constrains.

The ARM alternative ``SALdLdARM`` (Section III-E2) depends on the read-from
relation and is therefore a :class:`DynamicClause`, evaluated against each
candidate execution rather than statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from ..isa.instructions import Fence, Instruction
from ..isa.program import ExecutedInstr, ProgramRun
from .dependencies import adep_edges, ddep_edges
from .events import EventId

__all__ = [
    "PpoContext",
    "Clause",
    "DynamicClause",
    "SAMemSt",
    "SAStLd",
    "SALdLd",
    "SARmwLd",
    "RegRAW",
    "BrSt",
    "AddrSt",
    "FenceOrd",
    "PairwiseOrder",
    "SALdLdARM",
    "STATIC_CLAUSES",
    "DYNAMIC_CLAUSES",
    "PARAMETRIC_CLAUSES",
    "clause_spec",
    "build_clause",
    "compute_ppo",
    "transitive_closure",
    "project_to_memory",
]


@dataclass(frozen=True)
class PpoContext:
    """One processor's dynamic stream plus its dependency relations.

    Built once per candidate execution per processor; clauses query it.
    """

    run: ProgramRun
    ddep: frozenset[tuple[int, int]]
    adep: frozenset[tuple[int, int]]

    @staticmethod
    def from_run(run: ProgramRun) -> "PpoContext":
        """Construct a context, computing ``<ddep`` and ``<adep``."""
        return PpoContext(run=run, ddep=ddep_edges(run), adep=adep_edges(run))

    @property
    def executed(self) -> tuple[ExecutedInstr, ...]:
        """The dynamic instruction stream in program order."""
        return self.run.executed

    def memory_instrs(self) -> tuple[ExecutedInstr, ...]:
        """Dynamic loads and stores in program order."""
        return self.run.memory_accesses()


class Clause:
    """One static case of Definition 6.

    Subclasses yield ``(older_index, younger_index)`` edges; indexes are
    static instruction indices within the processor's program.
    """

    #: short identifier used in reports (e.g. ``"SAMemSt"``).
    name: str = ""
    #: where the constraint comes from in the paper.
    paper_ref: str = ""

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        """Yield the clause's edges for one processor's dynamic stream."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<clause {self.name}>"


class DynamicClause:
    """A ppo case that depends on the execution (read-from relation).

    ``rf_local`` maps this processor's load indices to the identity of the
    store each reads (an :class:`~repro.core.events.EventId`, where
    initialization stores use pseudo-processor -1).
    """

    name: str = ""
    paper_ref: str = ""

    def edges(
        self,
        ctx: PpoContext,
        rf_local: Mapping[int, EventId],
    ) -> Iterable[tuple[int, int]]:
        """Yield execution-dependent edges given the local read-from map."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<dynamic clause {self.name}>"


class SAMemSt(Clause):
    """Same-address memory access to store (Definition 6 case 1).

    A store must be ordered after every older memory instruction for the
    same address — the essence of single-thread correctness.
    """

    name = "SAMemSt"
    paper_ref = "Figure 7 / Definition 6(1)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        mem = ctx.memory_instrs()
        for j, younger in enumerate(mem):
            if not younger.instr.is_store:
                continue
            for older in mem[:j]:
                if older.addr == younger.addr:
                    yield (older.index, younger.index)


class SAStLd(Clause):
    """Same-address store to load (Definition 6 case 2).

    A load that (would) forward from the immediately preceding same-address
    store is ordered after the instructions producing that store's address
    and data: ``I1 <ddep S <po I2`` with no same-address store between
    ``S`` and ``I2``.
    """

    name = "SAStLd"
    paper_ref = "Figure 7 / Definition 6(2)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        mem = ctx.memory_instrs()
        for j, load in enumerate(mem):
            if load.instr.is_store:
                continue
            forwarding_store: Optional[ExecutedInstr] = None
            for older in reversed(mem[:j]):
                if older.instr.is_store and older.addr == load.addr:
                    forwarding_store = older
                    break
            if forwarding_store is None:
                continue
            for producer, consumer in ctx.ddep:
                if consumer == forwarding_store.index:
                    yield (producer, load.index)


class SALdLd(Clause):
    """Same-address load-load ordering (Definition 6 case 3).

    The constraint that turns GAM0 into GAM: two same-address loads with no
    intervening same-address store keep their commit order, restoring
    per-location SC (Section III-E1).
    """

    name = "SALdLd"
    paper_ref = "Section III-E1 / Definition 6(3)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        mem = ctx.memory_instrs()
        for i, older in enumerate(mem):
            if older.instr.is_store:
                continue
            for younger in mem[i + 1:]:
                if younger.addr != older.addr:
                    continue
                if younger.instr.is_store:
                    break  # an intervening same-address store ends the window
                yield (older.index, younger.index)


class SARmwLd(Clause):
    """Same-address RMW to load: the RMW extension of Section III-C.

    A younger load cannot forward from an RMW (an RMW "must be executed by
    accessing the memory system"), so unlike the plain store-to-load case
    the load is ordered after the whole RMW.  Required for the LoadValue
    axiom to stay implementable once RMWs exist; vacuous otherwise.
    """

    name = "SARmwLd"
    paper_ref = "Section III-C (RMW sketch)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        mem = ctx.memory_instrs()
        for i, older in enumerate(mem):
            if not (older.instr.is_store and older.instr.is_load):
                continue  # only RMWs
            for younger in mem[i + 1:]:
                if younger.addr == older.addr and younger.instr.is_load:
                    yield (older.index, younger.index)


class RegRAW(Clause):
    """Register read-after-write (Definition 6 case 4): all ``<ddep`` pairs."""

    name = "RegRAW"
    paper_ref = "Figure 7 / Definition 6(4)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        return iter(ctx.ddep)


class BrSt(Clause):
    """Branch to store (Definition 6 case 5): stores never issue speculatively."""

    name = "BrSt"
    paper_ref = "Figure 7 / Definition 6(5)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        branch_indices: list[int] = []
        for executed in ctx.executed:
            if executed.instr.is_branch:
                branch_indices.append(executed.index)
            elif executed.instr.is_store:
                for b in branch_indices:
                    yield (b, executed.index)


class AddrSt(Clause):
    """Address to store (Definition 6 case 6).

    A store waits for the address producers of every older memory
    instruction; otherwise issuing the store could violate SAMemSt if an
    older access turned out to alias it.
    """

    name = "AddrSt"
    paper_ref = "Figure 7 / Definition 6(6)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        positions = {e.index: pos for pos, e in enumerate(ctx.executed)}
        store_positions = [
            (positions[e.index], e.index) for e in ctx.executed if e.instr.is_store
        ]
        for producer, mem_instr in ctx.adep:
            for store_pos, store_index in store_positions:
                if positions[mem_instr] < store_pos:
                    yield (producer, store_index)


class FenceOrd(Clause):
    """Fence ordering (Definition 6 cases 7-8).

    ``FenceXY`` follows all older type-X memory instructions and precedes
    all younger type-Y memory instructions.  Fence-fence ordering arises
    only through transitivity, exactly as the paper notes.
    """

    name = "FenceOrd"
    paper_ref = "Figure 12 / Definition 6(7,8)"

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        stream = ctx.executed
        for pos, executed in enumerate(stream):
            fence = executed.instr
            if not isinstance(fence, Fence):
                continue
            for older in stream[:pos]:
                if fence.orders_before(older.instr):
                    yield (older.index, executed.index)
            for younger in stream[pos + 1:]:
                if fence.orders_after(younger.instr):
                    yield (executed.index, younger.index)


@dataclass(frozen=True)
class PairwiseOrder(Clause):
    """Order all older type-``pre`` with all younger type-``post`` accesses.

    Not part of GAM — this is the building block for the strong baselines:
    SC is all four instantiations, TSO drops only store-to-load.
    """

    pre: str = "L"
    post: str = "L"

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"Order{self.pre}{self.post}"

    paper_ref = "Figure 3 (baseline construction)"

    def _matches(self, instr: Instruction, kind: str) -> bool:
        return instr.is_load if kind == "L" else instr.is_store

    def edges(self, ctx: PpoContext) -> Iterable[tuple[int, int]]:
        mem = ctx.memory_instrs()
        for i, older in enumerate(mem):
            if not self._matches(older.instr, self.pre):
                continue
            for younger in mem[i + 1:]:
                if self._matches(younger.instr, self.post):
                    yield (older.index, younger.index)


class SALdLdARM(DynamicClause):
    """ARM's alternative same-address load-load constraint (Section III-E2).

    Two same-address loads that do **not** read from the same store (store
    identity, not value) keep their commit order.  Strictly weaker than
    SALdLd: it permits the RSW behaviour while forbidding RNSW, the
    asymmetry the paper criticizes.

    Interpretation note: like SALdLd, the constraint exempts load pairs
    separated by an intervening same-address store.  The paper's statement
    does not spell this out, but its implementation sketch does — a load
    forwarding from a local store is never killed when an older load
    returns ("kills all younger loads whose values have been overwritten by
    other processors") — and without the exemption SALdLdARM would not be
    strictly weaker than SALdLd, contradicting Section III-E2.
    """

    name = "SALdLdARM"
    paper_ref = "Section III-E2"

    def edges(
        self,
        ctx: PpoContext,
        rf_local: Mapping[int, EventId],
    ) -> Iterable[tuple[int, int]]:
        mem = ctx.memory_instrs()
        for i, older in enumerate(mem):
            if older.instr.is_store:
                continue
            for younger in mem[i + 1:]:
                if younger.addr != older.addr:
                    continue
                if younger.instr.is_store:
                    break  # intervening same-address store ends the window
                if rf_local.get(older.index) != rf_local.get(younger.index):
                    yield (older.index, younger.index)


STATIC_CLAUSES: dict[str, type] = {
    "SAMemSt": SAMemSt,
    "SAStLd": SAStLd,
    "SALdLd": SALdLd,
    "SARmwLd": SARmwLd,
    "RegRAW": RegRAW,
    "BrSt": BrSt,
    "AddrSt": AddrSt,
    "FenceOrd": FenceOrd,
}
"""Zero-argument static clauses by spec name (the Definition 6 vocabulary)."""

DYNAMIC_CLAUSES: dict[str, type] = {
    "SALdLdARM": SALdLdARM,
}
"""Zero-argument execution-dependent clauses by spec name."""

PARAMETRIC_CLAUSES: dict[str, type] = {
    "PairwiseOrder": PairwiseOrder,
}
"""Parameterized clauses by spec name; arguments are validated by
:func:`build_clause` (``PairwiseOrder`` takes two access kinds, each ``L``
or ``S``)."""


def clause_spec(clause: "Clause | DynamicClause") -> str:
    """The textual spec of a clause instance (inverse of :func:`build_clause`).

    Zero-argument clauses print as their name; parameterized clauses print
    as ``Name(arg,...)`` — e.g. ``PairwiseOrder(S,L)``.
    """
    if isinstance(clause, PairwiseOrder):
        return f"PairwiseOrder({clause.pre},{clause.post})"
    return clause.name


def build_clause(name: str, args: tuple[str, ...] = ()) -> "Clause | DynamicClause":
    """Instantiate the clause named ``name`` with textual arguments.

    This is the introspection hook the ``.model`` spec layer builds on:
    every clause a model file may mention is constructed through here, so
    unknown names and malformed arguments fail with a message listing the
    vocabulary.

    Raises:
        ValueError: unknown clause name, or arguments that do not fit it.
    """
    if name in STATIC_CLAUSES or name in DYNAMIC_CLAUSES:
        if args:
            raise ValueError(f"clause {name} takes no arguments, got {args!r}")
        catalog = STATIC_CLAUSES if name in STATIC_CLAUSES else DYNAMIC_CLAUSES
        return catalog[name]()
    if name == "PairwiseOrder":
        if len(args) != 2 or any(arg not in ("L", "S") for arg in args):
            raise ValueError(
                f"PairwiseOrder takes two access kinds (L or S), got {args!r}"
            )
        return PairwiseOrder(args[0], args[1])
    known = sorted({**STATIC_CLAUSES, **DYNAMIC_CLAUSES, **PARAMETRIC_CLAUSES})
    raise ValueError(
        f"unknown clause {name!r}; vocabulary: {', '.join(known)}"
    )


def transitive_closure(
    ctx: PpoContext,
    edges: Iterable[tuple[int, int]],
) -> frozenset[tuple[int, int]]:
    """Close an edge set transitively over the dynamic instruction stream.

    This is Definition 6 case 9.  Closure works on stream *positions* so
    the result respects program order even for instructions with equal
    static indices (impossible here, but cheap to keep correct).
    """
    order = [e.index for e in ctx.executed]
    position = {index: pos for pos, index in enumerate(order)}
    n = len(order)
    reach = [[False] * n for _ in range(n)]
    for a, b in edges:
        reach[position[a]][position[b]] = True
    for k in range(n):
        row_k = reach[k]
        for i in range(n):
            if reach[i][k]:
                row_i = reach[i]
                for j in range(n):
                    if row_k[j]:
                        row_i[j] = True
    return frozenset(
        (order[i], order[j]) for i in range(n) for j in range(n) if reach[i][j]
    )


def compute_ppo(
    ctx: PpoContext,
    clauses: Iterable[Clause],
    dynamic_clauses: Iterable[DynamicClause] = (),
    rf_local: Optional[Mapping[int, EventId]] = None,
) -> frozenset[tuple[int, int]]:
    """Compute ``<ppo`` for one processor under the given clauses.

    Static clauses always apply; dynamic clauses apply when ``rf_local`` is
    provided.  The result is transitively closed (Definition 6 case 9).
    """
    edges: set[tuple[int, int]] = set()
    for clause in clauses:
        edges.update(clause.edges(ctx))
    if rf_local is not None:
        for dyn in dynamic_clauses:
            edges.update(dyn.edges(ctx, rf_local))
    return transitive_closure(ctx, edges)


def project_to_memory(
    ctx: PpoContext,
    edges: Iterable[tuple[int, int]],
) -> frozenset[tuple[int, int]]:
    """Keep only edges between memory instructions.

    These are the pairs the InstOrder axiom lifts into the global memory
    order; edges involving fences, branches and reg-ops act through
    transitivity only.
    """
    memory = {e.index for e in ctx.memory_instrs()}
    return frozenset((a, b) for a, b in edges if a in memory and b in memory)
