"""The axiomatic checking engine (Section IV-A made executable).

Given a litmus test and a :class:`MemoryModel`, the engine enumerates every
execution ``<po, mo, rf>`` satisfying the model's axioms:

1. **Candidate load values.**  A closed value domain is computed
   (:func:`value_domain`); each processor's program is replayed under every
   assignment of domain values to its loads, which fixes addresses, store
   data and branch paths (``<po`` is the replayed stream).
2. **Memory orders.**  The static ppo clauses are evaluated per processor
   and projected onto memory events; every topological order of the
   resulting DAG is a candidate ``<mo`` (axiom InstOrder holds by
   construction).  During enumeration each load's value is derived from the
   LoadValue axiom incrementally and mismatching prefixes are pruned.
3. **Post-checks.**  Execution-dependent clauses (ARM's SALdLdARM) and the
   per-location-SC side condition are verified against the completed
   execution; survivors are yielded as :class:`~repro.core.events.Execution`.

The engine is exact (sound and complete) for the model classes in this
repository because every static clause edge goes forward in program order
(so the per-processor projection is acyclic) and every model orders
same-address stores by program order (so load values are determined as soon
as the load is placed — see :func:`_place_load_value`).

Two enumeration engines serve step 2.  Models with no execution-dependent
clauses and no coherence side condition take the **frontier kernel**
(:mod:`repro.core.kernel`): a bitmask DP over ``(placed events, last store
per address)`` abstract states that answers outcome-set and verdict
queries without materializing any order.  ARM, ``plsc`` and every
:func:`enumerate_executions` consumer take the exact order enumerator
below.  Both paths share all candidate preparation through
:class:`CandidatePrefix`, and the parity suite holds them byte-identical
on every registered test.
"""

from __future__ import annotations

import bisect
import itertools
import os
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..isa.expr import Const, evaluate, registers_read
from ..isa.instructions import (
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
)
from ..isa.program import ExecutedInstr, Program, ProgramError, ProgramRun
from ..litmus.test import LitmusTest, Outcome
from ..obs import current as _obs_current
from ..obs import incr as _obs_incr
from .events import (
    EventId,
    Execution,
    MemEvent,
    build_events,
    init_events,
    store_part,
)
from .kernel import FrontierKernel, kernel_supports
from .ppo import Clause, DynamicClause, PpoContext, compute_ppo, project_to_memory

__all__ = [
    "MemoryModel",
    "DomainOverflowError",
    "ValueDomains",
    "CandidatePrefix",
    "value_domain",
    "value_domains",
    "enumerate_executions",
    "enumerate_outcomes",
    "is_allowed",
    "kernel_supports",
    "project_outcome",
]

_DOMAIN_CAP = 64
_COMBO_CAP = 4096


class DomainOverflowError(RuntimeError):
    """Raised when a test's candidate value domain exceeds the safety cap.

    Litmus tests have tiny domains; hitting this means the input is not a
    litmus-style program and explicit enumeration is the wrong tool.
    """


@dataclass(frozen=True)
class MemoryModel:
    """An axiomatic memory model: ppo clauses plus a load-value axiom.

    Attributes:
        name: registry key (``"gam"``, ``"sc"``...).
        clauses: static ppo clauses (cases of Definition 6).
        dynamic_clauses: execution-dependent clauses (ARM's SALdLdARM).
        load_value: ``"gam"`` for the LoadValueGAM axiom (the youngest
            same-address store earlier in ``<mo`` *or* local ``<po``), or
            ``"sc"`` for LoadValueSC (``<mo`` only, Figure 3).
        requires_coherence: if True, executions must additionally be
            per-location sequentializable (used by the ``plsc`` yardstick).
        description: one-line summary for reports.
    """

    name: str
    clauses: tuple[Clause, ...]
    dynamic_clauses: tuple[DynamicClause, ...] = ()
    load_value: str = "gam"
    requires_coherence: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.load_value not in ("gam", "sc"):
            raise ValueError(f"unknown load-value axiom {self.load_value!r}")
        if not self._orders_same_address_stores():
            raise ValueError(
                f"model {self.name!r} must order same-address stores by program "
                "order (include SAMemSt or OrderSS); the enumeration engine "
                "relies on it and so does single-thread correctness"
            )

    def _orders_same_address_stores(self) -> bool:
        return any(c.name in ("SAMemSt", "OrderSS") for c in self.clauses)

    def clause_names(self) -> tuple[str, ...]:
        """Names of all clauses, static then dynamic."""
        return tuple(c.name for c in self.clauses) + tuple(
            c.name for c in self.dynamic_clauses
        )

    def to_spec(self) -> str:
        """This model as canonical ``.model`` text.

        The inverse of :meth:`from_spec`; the round trip is byte-stable
        (``MemoryModel.from_spec(m.to_spec()).to_spec() == m.to_spec()``).
        """
        from ..models.spec import print_model  # cycle-free import

        return print_model(self)

    @classmethod
    def from_spec(cls, text: str) -> "MemoryModel":
        """Parse canonical (or hand-written) ``.model`` text into a model.

        Raises :class:`repro.models.spec.ModelSpecError` — with the
        offending line number — on malformed input.
        """
        from ..models.spec import parse_model  # cycle-free import

        return parse_model(text)

    def __repr__(self) -> str:
        return f"<MemoryModel {self.name}: {', '.join(self.clause_names())}>"


@dataclass(frozen=True)
class ValueDomains:
    """Per-address over-approximations of load-returnable values.

    ``by_addr[a]`` holds values known storable at the statically-addressed
    location ``a`` (plus its initial value); ``wild`` holds values that may
    land anywhere (stores through computed addresses, asked-outcome values,
    and 0 for untouched memory).  A load from address ``a`` can only return
    ``by_addr.get(a, ()) | wild``.
    """

    by_addr: Mapping[int, frozenset[int]]
    wild: frozenset[int]

    def for_address(self, addr: int) -> frozenset[int]:
        """Candidate values for a load of ``addr``."""
        return self.by_addr.get(addr, frozenset()) | self.wild

    def everything(self) -> frozenset[int]:
        """The flat union (used when a load's address set is unknown)."""
        union = set(self.wild)
        for values in self.by_addr.values():
            union |= values
        return frozenset(union)


def value_domains(
    test: LitmusTest,
    extra: Iterable[int] = (),
    cap: int = _DOMAIN_CAP,
) -> ValueDomains:
    """Compute per-address value domains by abstract interpretation.

    Each program is repeatedly walked with register possible-sets (control
    flow ignored, so the result over-approximates): loads draw from their
    address's current domain when the address is a constant, else from the
    flat union; store data lands in the target address's domain (or in
    ``wild`` for computed addresses).  Iteration stops at a fixed point or
    raises :class:`DomainOverflowError` beyond ``cap`` values — which can
    only happen for non-litmus-style programs with arithmetic feedback.
    """
    wild: set[int] = {0}
    wild.update(extra)
    if test.asked is not None:
        wild.update(v for _, _, v in test.asked.regs)
        wild.update(v for _, v in test.asked.mem)
    by_addr: dict[int, set[int]] = {
        addr: {value} for addr, value in test.initial_memory.items()
    }

    # Every store instruction executes at most once (programs are loop
    # free), so any load-returnable value is derived through at most
    # ``total_stores`` store executions; that many closure rounds suffice
    # even when the abstract feedback (e.g. a fetch-and-add) never reaches
    # a fixed point.
    total_stores = sum(
        1 for program in test.programs for instr in program if instr.is_store
    )
    for _round in range(total_stores + 1):
        changed = False
        flat = set(wild)
        for values in by_addr.values():
            flat |= values
        for program in test.programs:
            for addr, value in _producible_stores(program, by_addr, wild, flat):
                if addr is None:
                    if value not in wild:
                        wild.add(value)
                        changed = True
                elif value not in by_addr.setdefault(addr, set()):
                    by_addr[addr].add(value)
                    changed = True
        total = len(wild) + sum(len(v) for v in by_addr.values())
        if total > cap:
            raise DomainOverflowError(
                f"value domain exceeded {cap} values for test {test.name!r}"
            )
        if not changed:
            break
    return ValueDomains(
        by_addr={addr: frozenset(v) for addr, v in by_addr.items()},
        wild=frozenset(wild),
    )


def value_domain(
    test: LitmusTest,
    extra: Iterable[int] = (),
    cap: int = _DOMAIN_CAP,
) -> frozenset[int]:
    """The flat union of :func:`value_domains` (compatibility helper)."""
    return value_domains(test, extra, cap).everything()


def _producible_stores(
    program: Program,
    by_addr: Mapping[int, set[int]],
    wild: set[int],
    flat: set[int],
) -> Iterator[tuple[Optional[int], int]]:
    """Yield ``(static address or None, data value)`` a program can store."""
    possible: dict[str, set[int]] = {reg: {0} for reg in program.registers()}
    for instr in program:
        if isinstance(instr, Rmw):
            # The load half fills dst; the store half writes data(dst).
            if isinstance(instr.addr, Const):
                addr = instr.addr.value
                possible[instr.dst] = set(by_addr.get(addr, set())) | wild
            else:
                possible[instr.dst] = set(flat)
            data_values = _eval_over(instr.data, possible)
            if isinstance(instr.addr, Const):
                for value in data_values:
                    yield instr.addr.value, value
            else:
                for value in data_values:
                    yield None, value
        elif isinstance(instr, Load):
            if isinstance(instr.addr, Const):
                addr = instr.addr.value
                possible[instr.dst] = set(by_addr.get(addr, set())) | wild
            else:
                possible[instr.dst] = set(flat)
        elif isinstance(instr, RegOp):
            possible[instr.dst] = _eval_over(instr.expr, possible)
        elif isinstance(instr, Store):
            data_values = _eval_over(instr.data, possible)
            if isinstance(instr.addr, Const):
                for value in data_values:
                    yield instr.addr.value, value
            else:
                for value in data_values:
                    yield None, value


def _eval_over(expr, possible: Mapping[str, set[int]]) -> set[int]:
    """Evaluate ``expr`` over the cartesian product of register possible-sets."""
    regs = sorted(registers_read(expr))
    combos = 1
    for reg in regs:
        combos *= max(1, len(possible.get(reg, {0})))
        if combos > _COMBO_CAP:
            raise DomainOverflowError("register possible-set product too large")
    results: set[int] = set()
    for values in itertools.product(*(sorted(possible.get(r, {0})) for r in regs)):
        results.add(evaluate(expr, dict(zip(regs, values))))
    return results


def _enumerate_runs(
    program: Program,
    domains: ValueDomains,
) -> list[ProgramRun]:
    """Replay ``program`` under every assignment of domain values to loads.

    Branches are resolved during replay, so only loads that actually execute
    consume a domain choice, and each load's candidates come from its
    *resolved address's* domain (the address is always known by the time the
    replay reaches the load).

    One DFS replay forks at each executed load over its candidate values in
    ascending order — the same run order as enumerating assignments
    load-by-load with one full :meth:`~repro.isa.program.Program.execute`
    replay each, but every instruction along a shared prefix executes once
    instead of once per revisit.
    """
    instructions = program.instructions
    labels = program.labels
    runs: list[ProgramRun] = []

    def step(pc: int, regs: dict[str, int], executed: list[ExecutedInstr]) -> None:
        while pc < len(instructions):
            instr = instructions[pc]
            next_pc = pc + 1
            if isinstance(instr, Rmw):
                addr = evaluate(instr.addr, regs)
                for value in sorted(domains.for_address(addr)):
                    forked = dict(regs)
                    forked[instr.dst] = value
                    data = evaluate(instr.data, forked)
                    step(
                        next_pc,
                        forked,
                        executed
                        + [ExecutedInstr(pc, instr, addr=addr, value=value, data=data)],
                    )
                return
            if isinstance(instr, Load):
                addr = evaluate(instr.addr, regs)
                for value in sorted(domains.for_address(addr)):
                    forked = dict(regs)
                    forked[instr.dst] = value
                    step(
                        next_pc,
                        forked,
                        executed + [ExecutedInstr(pc, instr, addr=addr, value=value)],
                    )
                return
            if isinstance(instr, Store):
                addr = evaluate(instr.addr, regs)
                data = evaluate(instr.data, regs)
                executed.append(ExecutedInstr(pc, instr, addr=addr, value=data))
            elif isinstance(instr, RegOp):
                result = evaluate(instr.expr, regs)
                regs[instr.dst] = result
                executed.append(ExecutedInstr(pc, instr, value=result))
            elif isinstance(instr, Branch):
                cond = evaluate(instr.cond, regs)
                taken = cond != 0
                executed.append(ExecutedInstr(pc, instr, value=cond, taken=taken))
                if taken:
                    next_pc = labels[instr.target]
            elif isinstance(instr, (Fence, Nop)):
                executed.append(ExecutedInstr(pc, instr))
            else:
                raise ProgramError(f"unknown instruction kind: {instr!r}")
            pc = next_pc
        runs.append(ProgramRun(tuple(executed), regs))

    step(0, {name: 0 for name in program.registers()}, [])
    return runs


@dataclass
class _Candidate:
    """One candidate execution before a memory order is chosen.

    Everything except ``mem_edges`` is *model-independent*: it is derived
    from the test and the chosen program runs alone, which is what lets a
    :class:`CandidatePrefix` share one ``_Candidate`` base across a whole
    model zoo (``_prepare_base`` builds it with ``mem_edges`` empty and
    ``_with_model_edges`` specializes it per clause set).
    """

    runs: tuple[ProgramRun, ...]
    events: tuple[MemEvent, ...]
    inits: tuple[MemEvent, ...]
    contexts: tuple[PpoContext, ...]
    mem_edges: frozenset[tuple[EventId, EventId]]
    po_stores: Mapping[EventId, tuple[MemEvent, ...]]
    event_by_id: Mapping[EventId, MemEvent]
    rmw_pairs: Mapping[EventId, EventId]  # load-half id -> store-half id
    no_forward: frozenset[EventId]  # loads barred from program-order forwarding

    def src_eid(self, proc: int, index: int) -> EventId:
        """Event id carrying an instruction's *finish* time (RMW: store half)."""
        candidate = (proc, store_part(index))
        if candidate in self.event_by_id:
            return candidate
        return (proc, index)


def _prepare_base(
    test: LitmusTest,
    runs: tuple[ProgramRun, ...],
) -> Optional[_Candidate]:
    """Build the model-independent candidate base; prune impossible values.

    Returns ``None`` when some load's assigned value cannot come from any
    store to its address (nor from the initial memory) — a cheap necessary
    condition for the LoadValue axiom under *every* model.  The returned
    candidate has an empty ``mem_edges``; see :func:`_with_model_edges`.
    """
    events = build_events(runs)
    inits = init_events(events, test.initial_memory)
    storable: dict[int, set[int]] = {}
    for event in itertools.chain(inits, events):
        if event.is_store:
            storable.setdefault(event.addr, set()).add(event.value)
    for event in events:
        if not event.is_store and event.value not in storable.get(event.addr, set()):
            return None

    by_id = {e.eid: e for e in itertools.chain(inits, events)}
    rmw_pairs: dict[EventId, EventId] = {}
    no_forward: set[EventId] = set()
    for proc, run in enumerate(runs):
        for executed in run.memory_accesses():
            instr = executed.instr
            if instr.is_load and instr.is_store:
                load_eid = (proc, executed.index)
                rmw_pairs[load_eid] = (proc, store_part(executed.index))
                no_forward.add(load_eid)

    contexts = tuple(PpoContext.from_run(run) for run in runs)

    po_stores: dict[EventId, tuple[MemEvent, ...]] = {}
    for proc, run in enumerate(runs):
        seen_stores: list[MemEvent] = []
        for executed in run.memory_accesses():
            instr = executed.instr
            eid = (proc, executed.index)
            if instr.is_load:
                po_stores[eid] = tuple(
                    s for s in seen_stores if s.addr == executed.addr
                )
            if instr.is_store:
                store_eid = (
                    (proc, store_part(executed.index))
                    if instr.is_load
                    else eid
                )
                seen_stores.append(by_id[store_eid])

    return _Candidate(
        runs=runs,
        events=events,
        inits=inits,
        contexts=contexts,
        mem_edges=frozenset(),
        po_stores=po_stores,
        event_by_id=by_id,
        rmw_pairs=rmw_pairs,
        no_forward=frozenset(no_forward),
    )


def _static_memory_edges(
    base: _Candidate,
    clauses: tuple[Clause, ...],
) -> frozenset[tuple[EventId, EventId]]:
    """Evaluate a model's static clauses over a candidate base."""
    mem_edges: set[tuple[EventId, EventId]] = set()
    for proc, ctx in enumerate(base.contexts):
        ppo = compute_ppo(ctx, clauses)
        for a, b in project_to_memory(ctx, ppo):
            mem_edges.add((base.src_eid(proc, a), (proc, b)))
    return frozenset(mem_edges)


def _with_model_edges(base: _Candidate, model: MemoryModel) -> _Candidate:
    """Specialize a model-independent base with the model's static-ppo DAG."""
    return replace(base, mem_edges=_static_memory_edges(base, model.clauses))


def _prepare_candidate(
    test: LitmusTest,
    runs: tuple[ProgramRun, ...],
    model: MemoryModel,
) -> Optional[_Candidate]:
    """Build events, contexts and the static-ppo DAG; prune impossible values."""
    base = _prepare_base(test, runs)
    if base is None:
        return None
    return _with_model_edges(base, model)


def _orders_with_load_values(
    candidate: _Candidate,
    load_value_mode: str,
) -> Iterator[tuple[tuple[EventId, ...], dict[EventId, EventId]]]:
    """Yield ``(mo, rf)`` for every topological order with consistent loads.

    The incremental LoadValue check: when a load is placed, its value is
    already determined — either the youngest *unplaced* program-order-earlier
    same-address store (which, by store coherence, will be the
    memory-order-youngest candidate), or the latest placed store to the
    address.  Mismatches prune the whole subtree.

    An RMW's two halves form one composite placement unit keyed by the load
    half: the load half's value is checked against the latest placed store,
    then the store half is placed immediately after, which realizes the
    "executes by accessing the memory system at one instant" semantics of
    Section III-C (atomicity holds because nothing intervenes in ``<mo``).
    """
    pairs = candidate.rmw_pairs
    folded = set(pairs.values())
    nodes = [e.eid for e in candidate.events if e.eid not in folded]
    node_of = {eid: eid for eid in nodes}
    for load_eid, store_eid in pairs.items():
        node_of[store_eid] = load_eid
    succs: dict[EventId, list[EventId]] = {eid: [] for eid in nodes}
    indegree: dict[EventId, int] = {eid: 0 for eid in nodes}
    for a, b in candidate.mem_edges:
        node_a, node_b = node_of[a], node_of[b]
        if node_a != node_b:
            succs[node_a].append(node_b)
            indegree[node_b] += 1

    last_store: dict[int, MemEvent] = {e.addr: e for e in candidate.inits}
    placed: list[EventId] = []
    placed_nodes: set[EventId] = set()
    placed_stores: set[EventId] = set()
    rf: dict[EventId, EventId] = {}

    def determined_value(event: MemEvent) -> tuple[int, EventId]:
        if load_value_mode == "gam" and event.eid not in candidate.no_forward:
            for store in reversed(candidate.po_stores.get(event.eid, ())):
                if store.eid not in placed_stores:
                    return store.value, store.eid
                break  # the youngest program-order store is already placed
        source = last_store[event.addr]
        return source.value, source.eid

    def place_events(node: EventId) -> Optional[list[tuple[MemEvent, object]]]:
        """Place the node's event(s); None means a load value mismatched."""
        undo: list[tuple[MemEvent, object]] = []
        event = candidate.event_by_id[node]
        if event.is_store:
            undo.append((event, last_store.get(event.addr)))
            last_store[event.addr] = event
            placed_stores.add(event.eid)
            placed.append(event.eid)
            return undo
        value, source = determined_value(event)
        if value != event.value:
            return None
        rf[node] = source
        placed.append(node)
        undo.append((event, None))
        store_eid = pairs.get(node)
        if store_eid is not None:
            store_event = candidate.event_by_id[store_eid]
            undo.append((store_event, last_store.get(store_event.addr)))
            last_store[store_event.addr] = store_event
            placed_stores.add(store_eid)
            placed.append(store_eid)
        return undo

    def unplace_events(node: EventId, undo: list[tuple[MemEvent, object]]) -> None:
        for event, saved in reversed(undo):
            placed.pop()
            if event.is_store:
                placed_stores.discard(event.eid)
                if saved is None:
                    last_store.pop(event.addr, None)
                else:
                    last_store[event.addr] = saved
            else:
                rf.pop(event.eid, None)

    # The ready frontier is maintained incrementally (drop the placed node,
    # insort successors whose last predecessor was just placed) rather than
    # rescanning every node at every depth; keeping it sorted by position in
    # ``nodes`` preserves the exact enumeration order of the rescan.
    node_position = {eid: i for i, eid in enumerate(nodes)}

    def backtrack(
        ready: list[EventId],
    ) -> Iterator[tuple[tuple[EventId, ...], dict[EventId, EventId]]]:
        if len(placed_nodes) == len(nodes):
            init_order = tuple(e.eid for e in candidate.inits)
            yield init_order + tuple(placed), dict(rf)
            return
        for position, node in enumerate(ready):
            undo = place_events(node)
            if undo is None:
                continue
            placed_nodes.add(node)
            next_ready = ready[:position] + ready[position + 1 :]
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    bisect.insort(next_ready, succ, key=node_position.__getitem__)
            yield from backtrack(next_ready)
            for succ in succs[node]:
                indegree[succ] += 1
            placed_nodes.remove(node)
            unplace_events(node, undo)

    yield from backtrack([eid for eid in nodes if indegree[eid] == 0])


def _dynamic_memory_edges(
    candidate: _Candidate,
    model: MemoryModel,
    proc: int,
    rf_local: Mapping[int, EventId],
) -> tuple[tuple[EventId, EventId], ...]:
    """One processor's (static + dynamic) ppo projected onto memory events."""
    ctx = candidate.contexts[proc]
    ppo = compute_ppo(ctx, model.clauses, model.dynamic_clauses, rf_local)
    return tuple(
        (candidate.src_eid(proc, a), (proc, b))
        for a, b in project_to_memory(ctx, ppo)
    )


def _dynamic_clauses_hold(
    candidate: _Candidate,
    model: MemoryModel,
    mo: tuple[EventId, ...],
    rf: Mapping[EventId, EventId],
    memo: Optional[dict] = None,
    memo_key: object = None,
) -> bool:
    """Post-check execution-dependent ppo clauses against a completed order.

    Recomputes the full (static + dynamic) transitive ppo per processor and
    requires every memory-to-memory edge to agree with ``mo``.  The dynamic
    ppo depends on the execution only through each processor's local
    read-from map, so the projected edges are memoized under
    ``(memo_key, proc, rf_local)`` when a ``memo`` dict is supplied — many
    memory orders share the same read-from and skip the ppo re-closure.
    """
    if not model.dynamic_clauses:
        return True
    position = {eid: i for i, eid in enumerate(mo)}
    for proc in range(len(candidate.contexts)):
        rf_local = {
            index: rf[(proc, index)]
            for (p, index) in rf
            if p == proc
        }
        if memo is None:
            edges = _dynamic_memory_edges(candidate, model, proc, rf_local)
        else:
            key = (memo_key, proc, frozenset(rf_local.items()))
            edges = memo.get(key)
            if edges is None:
                edges = memo[key] = _dynamic_memory_edges(
                    candidate, model, proc, rf_local
                )
        for a, b in edges:
            if position[a] >= position[b]:
                return False
    return True


def _final_memory(
    candidate: _Candidate,
    mo: tuple[EventId, ...],
) -> dict[int, int]:
    """Final memory: the memory-order-youngest store per address."""
    final: dict[int, int] = {}
    for eid in mo:
        event = candidate.event_by_id[eid]
        if event.is_store:
            final[event.addr] = event.value
    return final


class _MemoizedOrders:
    """A replayable view over one ``_orders_with_load_values`` generator.

    Multiple consumers (models sharing the same static-ppo DAG and
    load-value axiom) iterate independently; items already produced are
    served from the cache, and the underlying generator is advanced only
    when some consumer runs past it.  A short-circuiting consumer (e.g.
    :func:`is_allowed`) therefore pays only for the prefix it needs, while
    a later full enumeration resumes where it left off.
    """

    __slots__ = ("_gen", "_cache", "_exhausted")

    def __init__(self, gen: Iterator) -> None:
        self._gen = gen
        self._cache: list = []
        self._exhausted = False

    def __iter__(self) -> Iterator:
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
                index += 1
                continue
            if self._exhausted:
                return
            try:
                item = next(self._gen)
            except StopIteration:
                self._exhausted = True
                return
            self._cache.append(item)
            # Re-check the cache rather than yielding ``item`` directly: a
            # concurrently iterating consumer may have advanced the
            # generator while this one was suspended at ``yield``.


class CandidatePrefix:
    """The model-independent prefix of :func:`enumerate_executions`.

    Building a verdict for one ``(test, model)`` pair starts with work that
    does not depend on the model at all: the value domains, the per-program
    run enumeration, and the event/candidate construction of
    ``_prepare_base``.  A ``CandidatePrefix`` computes that prefix once per
    test and lets any number of models be judged against it — the core of
    the batch evaluation engine (:mod:`repro.engine`).

    Three memoization layers live here, keyed per run-combination:

    1. ``base(i)`` — the model-independent candidate (events, dependency
       contexts, forwarding metadata), built lazily and shared by all.
    2. ``edges_for(i, model)`` — the static-ppo memory DAG, keyed by the
       model's *clause names*; models with identical clause sets (e.g. ARM
       vs GAM0, PLSC vs Alpha) share one evaluation.  Clause names fully
       determine clause behaviour in this repository's vocabulary.
    3. ``orders_for(...)`` — the ``(mo, rf)`` enumeration, keyed by the
       resulting DAG and the load-value axiom, wrapped in a
       :class:`_MemoizedOrders` so partial consumption is never wasted.

    ``extra_values`` must cover whatever a later caller would have passed
    to :func:`enumerate_executions`; asked-outcome values are always
    included by :func:`value_domains`, so a plain ``CandidatePrefix(test)``
    serves default verdicts, outcome enumeration and equivalence checks.
    """

    def __init__(self, test: LitmusTest, extra_values: Iterable[int] = ()) -> None:
        self.test = test
        self.extra_values = frozenset(extra_values)
        self.domains = value_domains(test, self.extra_values)
        per_proc = [_enumerate_runs(program, self.domains) for program in test.programs]
        self.combos: tuple[tuple[ProgramRun, ...], ...] = tuple(
            itertools.product(*per_proc)
        )
        self._bases: dict[int, Optional[_Candidate]] = {}
        self._edges: dict[tuple[int, tuple[str, ...]], frozenset] = {}
        self._orders: dict[tuple[int, frozenset, str], _MemoizedOrders] = {}
        self._kernels: dict[tuple[int, frozenset, str], FrontierKernel] = {}
        self._dynamic_memo: dict = {}

    def covers(self, extra_values: Iterable[int]) -> bool:
        """Would this prefix's domains be unchanged under ``extra_values``?

        Extras feed the ``wild`` seed of :func:`value_domains`; values
        already in ``wild`` are no-ops, so containment is exact.
        """
        return set(extra_values) <= self.domains.wild

    def base(self, combo_index: int) -> Optional[_Candidate]:
        """The shared model-independent candidate for one run combination."""
        if combo_index not in self._bases:
            self._bases[combo_index] = _prepare_base(
                self.test, self.combos[combo_index]
            )
        return self._bases[combo_index]

    def candidate(self, combo_index: int, model: MemoryModel) -> Optional[_Candidate]:
        """The base specialized with ``model``'s static-ppo DAG (memoized)."""
        base = self.base(combo_index)
        if base is None:
            return None
        key = (combo_index, tuple(c.name for c in model.clauses))
        edges = self._edges.get(key)
        if edges is None:
            edges = self._edges[key] = _static_memory_edges(base, model.clauses)
        return replace(base, mem_edges=edges)

    def orders_for(
        self, combo_index: int, candidate: _Candidate, load_value_mode: str
    ) -> _MemoizedOrders:
        """The memoized ``(mo, rf)`` stream for one DAG + load-value axiom."""
        key = (combo_index, candidate.mem_edges, load_value_mode)
        orders = self._orders.get(key)
        if orders is None:
            orders = self._orders[key] = _MemoizedOrders(
                _orders_with_load_values(candidate, load_value_mode)
            )
        return orders

    def kernel_for(
        self, combo_index: int, candidate: _Candidate, load_value_mode: str
    ) -> FrontierKernel:
        """The frontier kernel for one DAG + load-value axiom (memoized).

        Keyed exactly like :meth:`orders_for`, so models whose clause sets
        induce the same memory DAG share one solved DP.
        """
        key = (combo_index, candidate.mem_edges, load_value_mode)
        kernel = self._kernels.get(key)
        if kernel is None:
            kernel = self._kernels[key] = FrontierKernel(candidate, load_value_mode)
        return kernel

    def dynamic_memo(self) -> dict:
        """Shared memo for :func:`_dynamic_clauses_hold` projections."""
        return self._dynamic_memo


def enumerate_executions(
    test: LitmusTest,
    model: MemoryModel,
    extra_values: Iterable[int] = (),
    prefix: Optional[CandidatePrefix] = None,
) -> Iterator[Execution]:
    """Yield every execution of ``test`` the model's axioms allow.

    ``prefix`` shares the model-independent work (value domains, program
    runs, candidate bases) across calls for the same test; a prefix whose
    domains do not cover ``extra_values`` is ignored and rebuilt.
    """
    from .perloc_sc import execution_is_per_location_sc  # cycle-free import

    if prefix is None or not prefix.covers(extra_values):
        prefix = CandidatePrefix(test, extra_values)
    for combo_index in range(len(prefix.combos)):
        candidate = prefix.candidate(combo_index, model)
        if candidate is None:
            continue
        dynamic_key = (combo_index, model.clause_names())
        final_regs = _final_regs_of(candidate.runs)
        for mo, rf in prefix.orders_for(combo_index, candidate, model.load_value):
            if not _dynamic_clauses_hold(
                candidate,
                model,
                mo,
                rf,
                memo=prefix.dynamic_memo(),
                memo_key=dynamic_key,
            ):
                continue
            execution = Execution(
                runs=candidate.runs,
                events=candidate.events,
                inits=candidate.inits,
                mo=mo,
                rf=rf,
                final_regs=final_regs,
                final_mem=_final_memory(candidate, mo),
            )
            if model.requires_coherence and not execution_is_per_location_sc(execution):
                continue
            yield execution


def project_outcome(
    test: LitmusTest,
    final_regs: Mapping[tuple[int, str], int],
    final_mem: Mapping[int, int],
    project: str = "observed",
) -> Outcome:
    """Project a final state onto an :class:`Outcome` for set comparisons.

    ``project="observed"`` keeps the registers the test declares interesting
    (falling back to all registers when none are declared);
    ``project="full"`` keeps every register.  Named locations' final values
    are always included, so memory-constrained outcomes compare correctly.
    """
    if project not in ("observed", "full"):
        raise ValueError(f"unknown projection {project!r}")
    keep = test.observed if (project == "observed" and test.observed) else None
    regs = frozenset(
        (proc, reg, value)
        for (proc, reg), value in final_regs.items()
        if keep is None or (proc, reg) in keep
    )
    mem = frozenset(
        (addr, final_mem.get(addr, test.initial_memory.get(addr, 0)))
        for addr in test.locations.values()
    )
    return Outcome(regs=regs, mem=mem)


def _kernel_selected(model: MemoryModel, engine: str) -> bool:
    """Resolve the ``engine`` argument: should the frontier kernel serve?

    ``"auto"`` picks the kernel whenever it is exact for the model (no
    dynamic clauses, no coherence side condition — see
    :func:`repro.core.kernel.kernel_supports`) unless the environment sets
    ``REPRO_ENUM_KERNEL=0``; ``"kernel"`` forces it (raising for models it
    cannot serve); ``"orders"`` forces the exact order enumerator.
    """
    if engine == "orders":
        return False
    if engine == "kernel":
        if not kernel_supports(model):
            raise ValueError(
                f"model {model.name!r} needs the exact order enumerator "
                "(execution-dependent clauses or a coherence side condition)"
            )
        return True
    if engine != "auto":
        raise ValueError(f"unknown engine {engine!r}; expected auto|kernel|orders")
    if os.environ.get("REPRO_ENUM_KERNEL", "").strip() == "0":
        return False
    return kernel_supports(model)


def _count_dispatch(model: MemoryModel, kernel_selected: bool) -> None:
    """Record which enumeration engine answers a query (telemetry only).

    ``kernel`` when the frontier DP serves; ``orders`` when the kernel
    could serve but was forced off (``engine="orders"`` or
    ``REPRO_ENUM_KERNEL=0``); ``backtracker`` when the model needs the
    exact enumerator (dynamic clauses / coherence side condition).
    """
    if not _obs_current().active:
        return
    if kernel_selected:
        _obs_incr("engine.dispatch.kernel")
    elif kernel_supports(model):
        _obs_incr("engine.dispatch.orders")
    else:
        _obs_incr("engine.dispatch.backtracker")


def _final_regs_of(runs: Sequence[ProgramRun]) -> dict[tuple[int, str], int]:
    """The fixed final register file of one run combination."""
    return {
        (proc, reg): value
        for proc, run in enumerate(runs)
        for reg, value in run.final_regs.items()
    }


def _regs_feasible(runs: Sequence[ProgramRun], outcome: Outcome) -> bool:
    """Can this run combination's (fixed) final registers match ``outcome``?"""
    for proc, reg, value in outcome.regs:
        if proc >= len(runs) or runs[proc].final_regs.get(reg) != value:
            return False
    return True


def _kernel_outcomes(
    prefix: CandidatePrefix, model: MemoryModel, project: str
) -> frozenset[Outcome]:
    """Outcome enumeration through the frontier kernel (fast path)."""
    test = prefix.test
    outcomes: set[Outcome] = set()
    for combo_index in range(len(prefix.combos)):
        candidate = prefix.candidate(combo_index, model)
        if candidate is None:
            continue
        kernel = prefix.kernel_for(combo_index, candidate, model.load_value)
        finals = kernel.final_memories()
        if not finals:
            continue
        final_regs = _final_regs_of(candidate.runs)
        for values in finals:
            outcomes.add(
                project_outcome(test, final_regs, kernel.as_memory(values), project)
            )
    return frozenset(outcomes)


def _kernel_is_allowed(
    prefix: CandidatePrefix, model: MemoryModel, outcome: Outcome
) -> bool:
    """Verdict through the frontier kernel, with outcome-directed pruning.

    Within one run combination the final registers are fixed before any
    memory order is chosen, so combinations whose registers cannot match
    ``outcome`` are skipped before candidate events, ppo DAGs or the DP are
    ever built — the dominant saving for *forbidden* verdicts, which must
    otherwise exhaust every combination.
    """
    for combo_index, runs in enumerate(prefix.combos):
        if not _regs_feasible(runs, outcome):
            _obs_incr("kernel.prune.regs_infeasible")
            continue
        candidate = prefix.candidate(combo_index, model)
        if candidate is None:
            continue
        kernel = prefix.kernel_for(combo_index, candidate, model.load_value)
        finals = kernel.final_memories()
        if not outcome.mem:
            if finals:
                return True
            continue
        for values in finals:
            memory = kernel.as_memory(values)
            if all(memory.get(addr, 0) == value for addr, value in outcome.mem):
                return True
    return False


def enumerate_outcomes(
    test: LitmusTest,
    model: MemoryModel,
    extra_values: Iterable[int] = (),
    project: str = "observed",
    prefix: Optional[CandidatePrefix] = None,
    engine: str = "auto",
) -> frozenset[Outcome]:
    """The set of allowed outcomes, projected per :func:`project_outcome`.

    Dispatches to the frontier kernel when it is exact for ``model`` (see
    :func:`_kernel_selected`); ``engine="orders"`` forces the exact order
    enumerator, ``engine="kernel"`` forces the kernel.  Both engines return
    identical sets — the parity suite enforces it.
    """
    if project not in ("observed", "full"):
        raise ValueError(f"unknown projection {project!r}")
    kernel_selected = _kernel_selected(model, engine)
    _count_dispatch(model, kernel_selected)
    if kernel_selected:
        if prefix is None or not prefix.covers(extra_values):
            prefix = CandidatePrefix(test, extra_values)
        return _kernel_outcomes(prefix, model, project)
    outcomes: set[Outcome] = set()
    for execution in enumerate_executions(test, model, extra_values, prefix=prefix):
        outcomes.add(
            project_outcome(test, execution.final_regs, execution.final_mem, project)
        )
    return frozenset(outcomes)


def is_allowed(
    test: LitmusTest,
    model: MemoryModel,
    outcome: Optional[Outcome] = None,
    extra_values: Iterable[int] = (),
    prefix: Optional[CandidatePrefix] = None,
    engine: str = "auto",
) -> bool:
    """Does the model allow ``outcome`` (default: the test's asked outcome)?

    Dispatches like :func:`enumerate_outcomes`; the kernel path additionally
    prunes whole run combinations whose fixed final registers cannot match
    the outcome before any enumeration work happens.
    """
    if outcome is None:
        outcome = test.asked
    if outcome is None:
        raise ValueError(f"test {test.name!r} has no asked outcome")
    extra = set(extra_values)
    extra.update(v for _, _, v in outcome.regs)
    extra.update(v for _, v in outcome.mem)
    kernel_selected = _kernel_selected(model, engine)
    _count_dispatch(model, kernel_selected)
    if kernel_selected:
        if prefix is None or not prefix.covers(extra):
            prefix = CandidatePrefix(test, extra)
        return _kernel_is_allowed(prefix, model, outcome)
    for execution in enumerate_executions(test, model, extra, prefix=prefix):
        if outcome.matches(execution.final_regs, execution.final_mem):
            return True
    return False
