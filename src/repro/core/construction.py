"""The construction procedure of Section III as a model factory.

The paper derives GAM in three steps:

1. **Uniprocessor constraints** (Figure 7): SAMemSt, SAStLd, RegRAW, BrSt,
   AddrSt — what an aggressive OOO core must preserve anyway.
2. **Multiprocessor lift** (Figure 11): LMOrd and LdVal — these are not ppo
   clauses but the InstOrder/LoadValue axioms the engine itself implements.
3. **Programmability** (Figures 12, Section III-E): FenceOrd yields GAM0;
   adding SALdLd (per-location SC) yields GAM.

:func:`assemble` exposes the same decision points as keyword knobs, so users
can re-run the construction with different choices — e.g. drop AddrSt and
find the litmus test that distinguishes the result (``lb+addrpo-st``), or
pick ARM's SALdLdARM and reproduce the RSW/RNSW asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .axiomatic import MemoryModel
from .ppo import (
    AddrSt,
    BrSt,
    Clause,
    FenceOrd,
    RegRAW,
    SALdLd,
    SALdLdARM,
    SAMemSt,
    SARmwLd,
    SAStLd,
)

__all__ = [
    "ConstraintInfo",
    "CONSTRAINTS",
    "CTOR_KNOBS",
    "assemble",
    "assemble_from_knobs",
    "ctor_name",
    "derivation_chain",
]


@dataclass(frozen=True)
class ConstraintInfo:
    """Provenance record for one constraint of the construction.

    Attributes:
        name: the paper's constraint name.
        stage: ``"uniprocessor"``, ``"multiprocessor"``, ``"fence"`` or
            ``"programming"`` — which construction step introduces it.
        paper_ref: figure/section it comes from.
        statement: the paper's one-line statement.
        origin: why the constraint is necessary (the paper's justification).
    """

    name: str
    stage: str
    paper_ref: str
    statement: str
    origin: str


CONSTRAINTS: dict[str, ConstraintInfo] = {
    "SAMemSt": ConstraintInfo(
        "SAMemSt",
        "uniprocessor",
        "Figure 7",
        "A store must be ordered after older memory instructions for the same address.",
        "A store written to L1 cannot be undone; single-thread correctness.",
    ),
    "SAStLd": ConstraintInfo(
        "SAStLd",
        "uniprocessor",
        "Figure 7",
        "A load is ordered after the producers of the address and data of the "
        "immediately preceding same-address store.",
        "Store-to-load forwarding needs the forwarded store's address and data.",
    ),
    "RegRAW": ConstraintInfo(
        "RegRAW",
        "uniprocessor",
        "Figure 7",
        "An instruction is ordered after the producers of its source operands (except PC).",
        "No value prediction: operands must be computed before issue.",
    ),
    "BrSt": ConstraintInfo(
        "BrSt",
        "uniprocessor",
        "Figure 7",
        "A store must be ordered after an older branch.",
        "Stores cannot issue speculatively; a mispredicted branch would squash them.",
    ),
    "AddrSt": ConstraintInfo(
        "AddrSt",
        "uniprocessor",
        "Figure 7",
        "A store must be ordered after producers of older memory instructions' addresses.",
        "An older access could alias the store; issuing early could break SAMemSt.",
    ),
    "LMOrd": ConstraintInfo(
        "LMOrd",
        "multiprocessor",
        "Figure 11",
        "The global memory order of same-processor accesses matches their execution order.",
        "Atomic memory: L1-access times define a total order (the InstOrder axiom).",
    ),
    "LdVal": ConstraintInfo(
        "LdVal",
        "multiprocessor",
        "Figure 11",
        "A load reads the youngest same-address store earlier in the global memory "
        "order or the local commit order.",
        "Combines monolithic-memory reads with local store forwarding (LoadValue axiom).",
    ),
    "FenceOrd": ConstraintInfo(
        "FenceOrd",
        "fence",
        "Figure 12",
        "FenceXY orders older type-X accesses before younger type-Y accesses.",
        "Programmers need a way to restore SC; yields GAM0.",
    ),
    "SALdLd": ConstraintInfo(
        "SALdLd",
        "programming",
        "Section III-E1",
        "Same-address loads with no intervening same-address store keep commit order.",
        "Per-location SC; the cost is rare load kills/stalls (Section V).",
    ),
    "SARmwLd": ConstraintInfo(
        "SARmwLd",
        "uniprocessor",
        "Section III-C",
        "A load must be ordered after an older same-address RMW.",
        "An RMW executes by accessing memory; its result cannot be forwarded.",
    ),
    "SALdLdARM": ConstraintInfo(
        "SALdLdARM",
        "programming",
        "Section III-E2",
        "Same-address loads reading different stores keep commit order.",
        "ARM's weaker alternative; allows RSW yet forbids RNSW, which the paper "
        "deems confusing for no performance gain.",
    ),
}
"""Every constraint of the construction with its provenance."""


def assemble(
    name: str,
    *,
    dependency_ordering: bool = True,
    speculative_stores: bool = False,
    same_address_loads: str = "none",
    description: str = "",
) -> MemoryModel:
    """Run the construction procedure with explicit choices.

    Args:
        name: name for the resulting model.
        dependency_ordering: keep RegRAW + SAStLd + AddrSt (no value
            prediction, store-forwarding correctness).  Turning this off
            reproduces Alpha-style relaxation — and the OOTA behaviour.
        speculative_stores: if True, drop BrSt and AddrSt (a hypothetical
            machine that issues stores speculatively; the paper's OOOU
            forbids this).
        same_address_loads: ``"none"`` (GAM0), ``"saldld"`` (GAM) or
            ``"arm"`` (SALdLdARM).

    Returns:
        the assembled :class:`~repro.core.axiomatic.MemoryModel`; SAMemSt,
        FenceOrd and the LoadValue/InstOrder axioms are always included
        (they are not choices — they come from atomic memory and
        single-thread correctness).
    """
    clauses: list[Clause] = [SAMemSt(), SARmwLd(), FenceOrd()]
    if dependency_ordering:
        clauses.extend((RegRAW(), SAStLd()))
        if not speculative_stores:
            clauses.append(AddrSt())
    if not speculative_stores:
        clauses.append(BrSt())
    dynamic = ()
    if same_address_loads == "saldld":
        clauses.append(SALdLd())
    elif same_address_loads == "arm":
        dynamic = (SALdLdARM(),)
    elif same_address_loads != "none":
        raise ValueError(f"unknown same-address-load policy {same_address_loads!r}")
    return MemoryModel(
        name=name,
        clauses=tuple(clauses),
        dynamic_clauses=dynamic,
        load_value="gam",
        description=description or f"constructed model ({same_address_loads})",
    )


CTOR_KNOBS: dict[str, tuple[str, ...]] = {
    "dependency_ordering": ("1", "0"),
    "speculative_stores": ("0", "1"),
    "same_address_loads": ("none", "saldld", "arm"),
}
"""The construction lattice: every :func:`assemble` decision point, as
textual knobs.  The first value of each tuple is the default; the knob
order here is the canonical order ``ctor:``/``space:`` model specs and
generated variant names list knobs in."""

_BOOL_KNOBS = ("dependency_ordering", "speculative_stores")


def ctor_name(knobs: Mapping[str, str]) -> str:
    """The deterministic name of a constructed variant.

    Lists exactly the knobs given (validated, canonical ``CTOR_KNOBS``
    order), so equal specs name equal variants:
    ``ctor(same_address_loads=arm)``, or ``ctor()`` for all-defaults.
    """
    parts = [f"{knob}={knobs[knob]}" for knob in CTOR_KNOBS if knob in knobs]
    return f"ctor({','.join(parts)})"


def assemble_from_knobs(
    knobs: Mapping[str, str],
    name: str = "",
    description: str = "",
) -> MemoryModel:
    """Run :func:`assemble` from textual ``CTOR_KNOBS`` values.

    This is the introspection hook behind ``ctor:`` and ``space:`` model
    specs: knobs arrive as strings, are validated against the lattice and
    converted to :func:`assemble` keywords.  Unset knobs take the lattice
    default; ``name`` defaults to :func:`ctor_name` of the given knobs.

    Raises:
        ValueError: an unknown knob, or a value outside the knob's domain.
    """
    for knob, value in knobs.items():
        if knob not in CTOR_KNOBS:
            raise ValueError(
                f"unknown construction knob {knob!r}; "
                f"available: {', '.join(CTOR_KNOBS)}"
            )
        if value not in CTOR_KNOBS[knob]:
            raise ValueError(
                f"bad value {value!r} for construction knob {knob!r}; "
                f"expected one of {', '.join(CTOR_KNOBS[knob])}"
            )
    resolved = {
        knob: knobs.get(knob, values[0]) for knob, values in CTOR_KNOBS.items()
    }
    return assemble(
        name or ctor_name(knobs),
        dependency_ordering=resolved["dependency_ordering"] == "1",
        speculative_stores=resolved["speculative_stores"] == "1",
        same_address_loads=resolved["same_address_loads"],
        description=description
        or f"constructed variant ({', '.join(f'{k}={v}' for k, v in resolved.items())})",
    )


def derivation_chain() -> tuple[tuple[str, MemoryModel], ...]:
    """The paper's derivation: base -> GAM0 -> GAM (plus the ARM detour).

    Returns ``(stage description, model)`` pairs, in construction order;
    used by the quickstart example to narrate the construction.
    """
    base = assemble(
        "base",
        same_address_loads="none",
        description="uniprocessor constraints + atomic memory + fences",
    )
    gam0 = assemble(
        "gam0",
        same_address_loads="none",
        description="GAM0: the base model of Section III-D",
    )
    arm = assemble(
        "arm",
        same_address_loads="arm",
        description="GAM0 + SALdLdARM (the ARM detour of Section III-E2)",
    )
    gam = assemble(
        "gam",
        same_address_loads="saldld",
        description="GAM: GAM0 + SALdLd (per-location SC)",
    )
    return (
        ("uniprocessor constraints lifted to atomic memory (= GAM0 core)", base),
        ("add fences for programmability: GAM0", gam0),
        ("alternative: ARM's SALdLdARM", arm),
        ("add SALdLd for per-location SC: GAM", gam),
    )
