"""Syntactic dependency relations: Definitions 4 and 5 of the paper.

``I1 <ddep I2`` (data dependency) holds when some register in
``WS(I1) ∩ RS(I2)`` is *live* from I1 to I2 — no intervening instruction
rewrites it.  ``I1 <adep I2`` (address dependency) is the same with
``ARS(I2)`` in place of ``RS(I2)``; address dependency implies data
dependency.

Both relations are computed over a *dynamic* instruction stream (a
:class:`~repro.isa.program.ProgramRun`), because branches determine which
instructions exist and therefore which writes are live.  Edges are pairs of
static instruction indices, which uniquely identify dynamic instances in
loop-free programs.
"""

from __future__ import annotations

from typing import Iterable

from ..isa.program import ProgramRun

__all__ = ["ddep_edges", "adep_edges", "dependency_closure"]


def _raw_edges(run: ProgramRun, use_addr_read_set: bool) -> frozenset[tuple[int, int]]:
    """Shared read-after-write walk for ddep/adep.

    Tracks the youngest writer of each register; an instruction depends on
    the youngest writer of each register it reads, which is exactly the
    "no intervening write to r" condition of Definitions 4-5.
    """
    last_writer: dict[str, int] = {}
    edges: set[tuple[int, int]] = set()
    for executed in run.executed:
        instr = executed.instr
        reads = instr.addr_read_set() if use_addr_read_set else instr.read_set()
        for reg in reads:
            if reg in last_writer:
                edges.add((last_writer[reg], executed.index))
        for reg in instr.write_set():
            last_writer[reg] = executed.index
    return frozenset(edges)


def ddep_edges(run: ProgramRun) -> frozenset[tuple[int, int]]:
    """Data dependencies ``<ddep`` (Definition 4) as static-index pairs."""
    return _raw_edges(run, use_addr_read_set=False)


def adep_edges(run: ProgramRun) -> frozenset[tuple[int, int]]:
    """Address dependencies ``<adep`` (Definition 5) as static-index pairs.

    Every adep edge is also a ddep edge (``ARS ⊆ RS``), matching the paper's
    remark that data dependency includes address dependency.
    """
    return _raw_edges(run, use_addr_read_set=True)


def dependency_closure(edges: Iterable[tuple[int, int]]) -> frozenset[tuple[int, int]]:
    """Transitive closure of a dependency edge set.

    Useful for queries such as "is there a dependency chain from I1 to I2";
    the ppo machinery performs its own closure, so this is a convenience for
    analyses and tests.
    """
    edge_set = set(edges)
    succ: dict[int, set[int]] = {}
    for a, b in edge_set:
        succ.setdefault(a, set()).add(b)
    changed = True
    while changed:
        changed = False
        for a in list(succ):
            reachable = set(succ[a])
            for b in list(reachable):
                reachable |= succ.get(b, set())
            if reachable != succ[a]:
                succ[a] = reachable
                changed = True
    return frozenset((a, b) for a, bs in succ.items() for b in bs)
