"""Simulation statistics: the quantities Figure 18 and Tables II-III report."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimStats"]


@dataclass
class SimStats:
    """Counters collected by one simulator run.

    All ``*_per_1k`` helpers normalize by *committed* uOPs, matching the
    paper's "events per 1K uOPs" reporting.
    """

    workload: str = ""
    policy: str = ""
    cycles: int = 0
    committed_uops: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    mispredicted_branches: int = 0
    saldld_kills: int = 0
    saldld_stalls: int = 0
    conflict_kills: int = 0
    ldld_forwards: int = 0
    ldld_forwards_would_miss: int = 0
    sb_forwards: int = 0
    l1_load_hits: int = 0
    l1_load_misses: int = 0
    l2_load_hits: int = 0
    l3_load_hits: int = 0
    memory_loads: int = 0

    @property
    def upc(self) -> float:
        """Committed uOPs per cycle — the paper's headline metric."""
        if self.cycles == 0:
            return 0.0
        return self.committed_uops / self.cycles

    def per_1k(self, count: int) -> float:
        """Normalize an event count to per-1000-committed-uOPs."""
        if self.committed_uops == 0:
            return 0.0
        return 1000.0 * count / self.committed_uops

    @property
    def kills_per_1k(self) -> float:
        """SALdLd kills per 1K uOPs (Table II row 1)."""
        return self.per_1k(self.saldld_kills)

    @property
    def stalls_per_1k(self) -> float:
        """SALdLd stalls per 1K uOPs (Table II rows 2-3)."""
        return self.per_1k(self.saldld_stalls)

    @property
    def ldld_forwards_per_1k(self) -> float:
        """Load-load forwardings per 1K uOPs (Table III row 1)."""
        return self.per_1k(self.ldld_forwards)

    @property
    def l1_load_misses_per_1k(self) -> float:
        """L1 load misses per 1K uOPs (input to Table III row 2)."""
        return self.per_1k(self.l1_load_misses)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.workload}/{self.policy}: uPC={self.upc:.3f} "
            f"kills/1k={self.kills_per_1k:.2f} stalls/1k={self.stalls_per_1k:.2f} "
            f"ldld/1k={self.ldld_forwards_per_1k:.2f} "
            f"L1miss/1k={self.l1_load_misses_per_1k:.2f}"
        )
