"""Micro-operations and traces for the timing simulator.

The paper's evaluation runs GEM5's O3 model on SPEC CPU2006 and reports
per-uOP statistics ("since GEM5 cracks an instruction into micro-ops, we
use uOP counts").  Our simulator is trace-driven at the same granularity: a
workload is a sequence of :class:`Uop` records carrying register
dependencies, resolved effective addresses and branch-misprediction flags.
The *timing* of address resolution still emerges from the pipeline (a
load's address is known only once its source registers are produced), which
is what lets same-address load-load kills and stalls arise naturally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["UopKind", "Uop", "Trace", "NUM_ARCH_REGS"]

NUM_ARCH_REGS = 32
"""Architectural integer/FP registers visible to the trace generator."""


class UopKind(enum.Enum):
    """Functional classes, matching the Table I function units."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self in (UopKind.LOAD, UopKind.STORE)


@dataclass(slots=True)
class Uop:
    """One dynamic micro-operation.

    Attributes:
        kind: functional class.
        dst: destination architectural register, or ``None``.
        srcs: source registers (address sources for memory ops).
        addr: cache-line-aligned-ish effective address for memory ops.
        mispredicted: for branches, whether the front end mispredicts it.
    """

    kind: UopKind
    dst: Optional[int] = None
    srcs: tuple[int, ...] = ()
    addr: Optional[int] = None
    mispredicted: bool = False


@dataclass
class Trace:
    """A named dynamic uOP stream plus provenance metadata."""

    name: str
    uops: list[Uop] = field(default_factory=list)
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.uops)

    def __iter__(self):
        return iter(self.uops)

    def __getitem__(self, index: int) -> Uop:
        return self.uops[index]

    def kind_counts(self) -> dict[UopKind, int]:
        """Histogram of uOP kinds (used to sanity-check generated mixes)."""
        counts: dict[UopKind, int] = {}
        for uop in self.uops:
            counts[uop.kind] = counts.get(uop.kind, 0) + 1
        return counts
