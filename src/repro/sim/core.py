"""A cycle-driven out-of-order core with model-specific load scheduling.

This is the reproduction's stand-in for the paper's modified GEM5 O3 model
(Section V-A).  It simulates the mechanisms the four evaluated memory
models actually vary:

* register renaming and dataflow wake-up through a 60-entry window,
* speculative load execution past unresolved store addresses, with
  conflict kills when a store's address resolution exposes a violation
  (constraint LdVal / SAStLd) and a store-set–style memory dependence
  predictor that suppresses repeat violations (GEM5's O3 has the same),
* same-address load-load **kills** and **stalls** (constraint SALdLd; GAM),
  stalls only (ARM), or neither (GAM0),
* store-to-load forwarding from the store buffer, and optionally load-load
  data forwarding (Alpha*),
* mispredicted-branch fetch redirects, ROB/RS/LB/SB capacity stalls,
  LSU-port and MSHR back-pressure, function-unit contention and the
  Table I cache hierarchy.

Simplifications relative to GEM5, none of which affect the *relative*
behaviour of the four policies: the trace is the committed path (wrong-path
execution is charged as a fetch bubble rather than simulated), writeback
bandwidth is not a separate limiter, and stores write the cache at commit
via the store-buffer drain.
"""

from __future__ import annotations

from typing import Optional

from .cache import CacheHierarchy
from .config import CoreConfig
from .policies import GAM, ModelPolicy
from .stats import SimStats
from .uops import Trace, Uop, UopKind

__all__ = ["OOOCore", "simulate"]

_NONPIPELINED = (UopKind.INT_MUL, UopKind.INT_DIV, UopKind.FP_MUL, UopKind.FP_DIV)


class _Entry:
    """One in-flight uOP (an ROB entry)."""

    __slots__ = (
        "idx",
        "uop",
        "producers",
        "issued",
        "done_cycle",
        "addr_ready_cycle",
        "bound",
        "source_store_idx",
        "stall_counted",
        "committed",
        "squashed",
    )

    def __init__(self, idx: int, uop: Uop, producers: tuple["_Entry", ...]) -> None:
        self.idx = idx
        self.uop = uop
        self.producers = producers
        self.issued = False
        self.done_cycle: Optional[int] = None
        self.addr_ready_cycle: Optional[int] = None
        self.bound = False  # loads: memory action decided (value source fixed)
        self.source_store_idx: Optional[int] = None
        self.stall_counted = False
        self.committed = False
        self.squashed = False

    def addr_resolved(self, now: int) -> bool:
        return self.addr_ready_cycle is not None and self.addr_ready_cycle <= now

    def result_ready(self, now: int) -> bool:
        return self.done_cycle is not None and self.done_cycle <= now

    def sources_ready(self, now: int) -> bool:
        for producer in self.producers:
            if producer.committed:
                continue
            if not producer.result_ready(now):
                return False
        return True

    def next_source_cycle(self) -> Optional[int]:
        """Earliest cycle all known producers finish, if all are scheduled."""
        latest = 0
        for producer in self.producers:
            if producer.committed:
                continue
            if producer.done_cycle is None:
                return None
            latest = max(latest, producer.done_cycle)
        return latest


class OOOCore:
    """The out-of-order core; one instance simulates one trace.

    Args:
        config: core and cache parameters (default: Table I).
        policy: the memory-model load-scheduling rules.
    """

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        policy: ModelPolicy = GAM,
    ) -> None:
        self.config = config or CoreConfig.haswell_like()
        self.policy = policy

    # -- public API ---------------------------------------------------------

    def run(self, trace: Trace, max_cycles: Optional[int] = None) -> SimStats:
        """Simulate ``trace`` to completion and return the statistics."""
        config = self.config
        policy = self.policy
        hierarchy = CacheHierarchy(config)
        stats = SimStats(workload=trace.name, policy=policy.name)
        uops = trace.uops
        limit = max_cycles or (600 * len(uops) + 200_000)

        rob: list[_Entry] = []
        last_writer: dict[int, _Entry] = {}
        next_fetch = 0
        fetch_resume = 0
        block_branch: Optional[_Entry] = None
        pending_writes: list[int] = []
        loads_in_rob = 0
        stores_in_rob = 0
        busy_units: dict[UopKind, list[int]] = {kind: [] for kind in _NONPIPELINED}
        # Store-set–style memory dependence predictor: loads that were once
        # killed by a store conflict wait for older store addresses.
        store_conflict_set: set[int] = set()

        def squash_from(position: int, reason: str, now: int) -> None:
            nonlocal next_fetch, fetch_resume, block_branch
            nonlocal loads_in_rob, stores_in_rob
            if reason == "saldld":
                stats.saldld_kills += 1
            else:
                stats.conflict_kills += 1
            next_fetch = rob[position].idx
            for entry in rob[position:]:
                entry.squashed = True
                if entry.uop.kind == UopKind.LOAD:
                    loads_in_rob -= 1
                elif entry.uop.kind == UopKind.STORE:
                    stores_in_rob -= 1
            del rob[position:]
            if block_branch is not None and block_branch.squashed:
                block_branch = None
            last_writer.clear()
            for entry in rob:
                if entry.uop.dst is not None:
                    last_writer[entry.uop.dst] = entry
            fetch_resume = max(fetch_resume, now + config.kill_penalty)

        def resolve_address(position: int, entry: _Entry, now: int) -> None:
            """Address-resolution kill checks (Compute-Mem-Addr analogue)."""
            kind = entry.uop.kind
            if kind == UopKind.LOAD and not policy.saldld_kills:
                return
            addr = entry.uop.addr
            for later_pos in range(position + 1, len(rob)):
                later = rob[later_pos]
                if not later.uop.kind.is_memory:
                    continue
                if not later.addr_resolved(now) or later.uop.addr != addr:
                    continue
                if later.uop.kind == UopKind.LOAD and later.bound:
                    stale = (
                        later.source_store_idx is None
                        or later.source_store_idx <= entry.idx
                    )
                    if stale:
                        if kind == UopKind.STORE:
                            store_conflict_set.add(later.idx)
                            squash_from(later_pos, "conflict", now)
                        else:
                            squash_from(later_pos, "saldld", now)
                return  # first same-address entry decides; stop either way

        def try_load_action(position: int, entry: _Entry, now: int) -> bool:
            """Attempt the memory action of a load whose address is known.

            Returns True if the load *bound* (value source fixed this cycle).
            """
            addr = entry.uop.addr
            if entry.idx in store_conflict_set:
                # Memory dependence predictor: wait for older store addresses.
                for older_pos in range(position - 1, -1, -1):
                    older = rob[older_pos]
                    if older.uop.kind == UopKind.STORE and not older.addr_resolved(now):
                        return False
            forward_from: Optional[_Entry] = None
            ldld_from: Optional[_Entry] = None
            stalled = False
            for older_pos in range(position - 1, -1, -1):
                older = rob[older_pos]
                if not older.uop.kind.is_memory:
                    continue
                if not older.addr_resolved(now) or older.uop.addr != addr:
                    continue
                if older.uop.kind == UopKind.STORE:
                    forward_from = older
                    break  # same-address store: forwarding barrier
                if not older.bound:
                    if policy.saldld_stalls:
                        stalled = True
                        break
                    continue  # GAM0/Alpha*: unstarted older loads are transparent
                if policy.ldld_forwarding:
                    ldld_from = older
                    break
                continue  # started older loads are transparent (Fig 17 skips done)
            if stalled:
                if not entry.stall_counted:
                    entry.stall_counted = True
                    stats.saldld_stalls += 1
                return False
            if forward_from is not None:
                if not forward_from.result_ready(now):
                    return False  # store data not produced yet (SAStLd timing)
                entry.bound = True
                entry.source_store_idx = forward_from.idx
                entry.done_cycle = now + 1
                stats.sb_forwards += 1
                return True
            if ldld_from is not None:
                entry.bound = True
                entry.source_store_idx = ldld_from.source_store_idx
                entry.done_cycle = max(now + 1, ldld_from.done_cycle + 1)
                stats.ldld_forwards += 1
                if hierarchy.would_miss_l1(addr):
                    stats.ldld_forwards_would_miss += 1
                return True
            if not hierarchy.l1.mshr_available(now) and hierarchy.would_miss_l1(addr):
                return False  # L1 MSHRs full: retry (creates stall windows)
            result = hierarchy.access(addr, now, is_store=False)
            entry.bound = True
            entry.source_store_idx = None
            entry.done_cycle = result.ready_cycle
            if result.level == "l1":
                stats.l1_load_hits += 1
            else:
                stats.l1_load_misses += 1
                if result.level == "l2":
                    stats.l2_load_hits += 1
                elif result.level == "l3":
                    stats.l3_load_hits += 1
                else:
                    stats.memory_loads += 1
            return True

        now = 0
        while next_fetch < len(uops) or rob or pending_writes:
            if now > limit:
                raise RuntimeError(
                    f"simulation of {trace.name!r} exceeded {limit} cycles"
                )
            progressed = False

            # 0. Store-buffer drain completions.
            if pending_writes:
                drained = [t for t in pending_writes if t > now]
                if len(drained) != len(pending_writes):
                    pending_writes = drained
                    progressed = True

            # 1. Address-resolution events (kill checks fire exactly once).
            position = 0
            while position < len(rob):
                entry = rob[position]
                if entry.addr_ready_cycle == now and entry.uop.kind.is_memory:
                    resolve_address(position, entry, now)
                position += 1

            # 2. Memory actions for loads with known addresses (LSU ports).
            action_budget = config.lsu_units
            position = 0
            while position < len(rob) and action_budget > 0:
                entry = rob[position]
                if (
                    entry.uop.kind == UopKind.LOAD
                    and entry.issued
                    and not entry.bound
                    and entry.addr_resolved(now)
                ):
                    if try_load_action(position, entry, now):
                        action_budget -= 1
                        progressed = True
                position += 1

            # 3. In-order commit.
            committed_this_cycle = 0
            while (
                rob
                and committed_this_cycle < config.commit_width
                and rob[0].result_ready(now)
            ):
                head = rob.pop(0)
                head.committed = True
                committed_this_cycle += 1
                progressed = True
                stats.committed_uops += 1
                kind = head.uop.kind
                if kind == UopKind.LOAD:
                    stats.committed_loads += 1
                    loads_in_rob -= 1
                elif kind == UopKind.STORE:
                    stats.committed_stores += 1
                    stores_in_rob -= 1
                    write = hierarchy.access(head.uop.addr, now, is_store=True)
                    pending_writes.append(write.ready_cycle)
                elif kind == UopKind.BRANCH:
                    stats.committed_branches += 1
                    if head.uop.mispredicted:
                        stats.mispredicted_branches += 1
                if head.uop.dst is not None and last_writer.get(head.uop.dst) is head:
                    del last_writer[head.uop.dst]

            # 4. Fetch / rename.
            if block_branch is not None and block_branch.done_cycle is not None:
                resume = block_branch.done_cycle + config.mispredict_penalty
                if now >= resume:
                    block_branch = None
            if block_branch is None and now >= fetch_resume:
                fetched = 0
                while fetched < config.fetch_width and next_fetch < len(uops):
                    if len(rob) >= config.rob_entries:
                        break
                    uop = uops[next_fetch]
                    if uop.kind == UopKind.LOAD and loads_in_rob >= config.lb_entries:
                        break
                    if uop.kind == UopKind.STORE and (
                        stores_in_rob + len(pending_writes) >= config.sb_entries
                    ):
                        break
                    producers = tuple(
                        last_writer[src] for src in uop.srcs if src in last_writer
                    )
                    entry = _Entry(next_fetch, uop, producers)
                    if uop.dst is not None:
                        last_writer[uop.dst] = entry
                    rob.append(entry)
                    if uop.kind == UopKind.LOAD:
                        loads_in_rob += 1
                    elif uop.kind == UopKind.STORE:
                        stores_in_rob += 1
                    next_fetch += 1
                    fetched += 1
                    progressed = True
                    if uop.kind == UopKind.BRANCH and uop.mispredicted:
                        block_branch = entry
                        break

            # 5. Issue (oldest first, within the reservation-station window).
            issue_budget = config.issue_width
            lsu_budget = config.lsu_units
            per_kind_issued: dict[UopKind, int] = {}
            window_seen = 0
            for entry in rob:
                if entry.issued:
                    continue
                window_seen += 1
                if window_seen > config.rs_entries or issue_budget == 0:
                    break
                kind = entry.uop.kind
                if not entry.sources_ready(now):
                    continue
                if kind.is_memory:
                    if lsu_budget == 0:
                        continue
                    entry.issued = True
                    entry.addr_ready_cycle = now + 1
                    if kind == UopKind.STORE:
                        entry.done_cycle = now + 1
                    lsu_budget -= 1
                    issue_budget -= 1
                    progressed = True
                    continue
                cap = config.units_of(kind)
                if per_kind_issued.get(kind, 0) >= cap:
                    continue
                if kind in busy_units:
                    busy = busy_units[kind]
                    busy[:] = [t for t in busy if t > now]
                    if len(busy) >= cap:
                        continue
                latency = config.latency_of(kind)
                entry.issued = True
                entry.done_cycle = now + latency
                if kind in busy_units:
                    busy_units[kind].append(now + latency)
                per_kind_issued[kind] = per_kind_issued.get(kind, 0) + 1
                issue_budget -= 1
                progressed = True

            # 6. Advance time; if the cycle was idle, skip to the next event.
            if progressed:
                now += 1
            else:
                now = self._next_event(
                    now, rob, pending_writes, fetch_resume, block_branch, config
                )

        stats.cycles = now
        return stats

    @staticmethod
    def _next_event(
        now: int,
        rob: list[_Entry],
        pending_writes: list[int],
        fetch_resume: int,
        block_branch: Optional[_Entry],
        config: CoreConfig,
    ) -> int:
        """The next cycle at which anything can change (idle fast-forward)."""
        candidates: list[int] = []
        for entry in rob:
            if entry.done_cycle is not None and entry.done_cycle > now:
                candidates.append(entry.done_cycle)
            if entry.addr_ready_cycle is not None and entry.addr_ready_cycle > now:
                candidates.append(entry.addr_ready_cycle)
        candidates.extend(t for t in pending_writes if t > now)
        if fetch_resume > now:
            candidates.append(fetch_resume)
        if block_branch is not None and block_branch.done_cycle is not None:
            candidates.append(block_branch.done_cycle + config.mispredict_penalty)
        if not candidates:
            return now + 1
        return max(now + 1, min(candidates))


def simulate(
    trace: Trace,
    policy: ModelPolicy = GAM,
    config: Optional[CoreConfig] = None,
) -> SimStats:
    """Convenience wrapper: simulate one trace under one policy."""
    return OOOCore(config=config, policy=policy).run(trace)
