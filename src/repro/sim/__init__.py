"""The timing-simulation substrate: OOO core, caches, model policies."""

from .cache import CacheHierarchy, CacheLevel
from .config import CacheConfig, CoreConfig
from .core import OOOCore, simulate
from .policies import ALL_POLICIES, ALPHA_STAR, ARM, GAM, GAM0, ModelPolicy
from .stats import SimStats
from .uops import Trace, Uop, UopKind

__all__ = [
    "OOOCore",
    "simulate",
    "CoreConfig",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "ModelPolicy",
    "GAM",
    "ARM",
    "GAM0",
    "ALPHA_STAR",
    "ALL_POLICIES",
    "SimStats",
    "Trace",
    "Uop",
    "UopKind",
]
