"""A non-blocking three-level cache hierarchy with LRU and MSHRs.

This stands in for GEM5's "classic memory system" (Table I): 64B lines,
write-back write-allocate, per-level MSHR limits, and a flat 200-cycle
memory behind L3.  Tag state is modelled exactly (so hit/miss sequences are
deterministic and repeatable); contention is modelled through MSHR
occupancy windows rather than per-packet queuing, which preserves the
statistics the evaluation needs (hit/miss counts per level and load
latency) at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .config import CacheConfig, CoreConfig

__all__ = ["CacheLevel", "CacheHierarchy", "AccessResult"]


@dataclass
class AccessResult:
    """Outcome of one hierarchy access.

    Attributes:
        ready_cycle: cycle at which the data is available to the core.
        level: ``"l1" | "l2" | "l3" | "mem"`` — where the access hit.
    """

    ready_cycle: int
    level: str


class CacheLevel:
    """One set-associative write-back cache level with LRU replacement."""

    def __init__(self, name: str, config: CacheConfig) -> None:
        self.name = name
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self._mshr_busy_until: list[int] = []
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self.config.line_bytes
        return line % self.config.num_sets, line // self.config.num_sets

    def probe(self, addr: int) -> bool:
        """Non-destructive lookup: would this address hit right now?"""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def lookup(self, addr: int) -> bool:
        """Lookup with LRU update; returns hit/miss and counts it."""
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, addr: int) -> Optional[int]:
        """Fill a line, evicting LRU if the set is full.

        Returns the evicted line's base address (for statistics), or None.
        """
        index, tag = self._index_tag(addr)
        ways = self._sets[index]
        evicted = None
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.config.ways:
            victim = ways.pop(0)
            evicted = (victim * self.config.num_sets + index) * self.config.line_bytes
            self.evictions += 1
        ways.append(tag)
        return evicted

    def mshr_available(self, now: int) -> bool:
        """True if an MSHR can be allocated at cycle ``now``."""
        self._mshr_busy_until = [t for t in self._mshr_busy_until if t > now]
        return len(self._mshr_busy_until) < self.config.mshrs

    def allocate_mshr(self, until: int) -> None:
        """Occupy one MSHR until the given cycle."""
        self._mshr_busy_until.append(until)


class CacheHierarchy:
    """L1D + L2 + L3 + memory, as a single access-latency oracle.

    ``access`` walks the levels, fills upward on a miss, and returns when
    the data arrives.  When a level's MSHRs are exhausted the *miss
    penalty grows* by the wait for the oldest outstanding miss — a
    contention approximation that keeps the model single-pass.
    """

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.l1 = CacheLevel("l1", config.l1d)
        self.l2 = CacheLevel("l2", config.l2)
        self.l3 = CacheLevel("l3", config.l3)
        self.memory_accesses = 0

    def _miss_start(self, level: CacheLevel, now: int) -> int:
        """Cycle at which a miss can start occupying an MSHR at ``level``."""
        if level.mshr_available(now):
            return now
        earliest = min(level._mshr_busy_until)
        return earliest

    def access(self, addr: int, now: int, is_store: bool = False) -> AccessResult:
        """One load/store access starting at cycle ``now``.

        Stores take the same path (write-allocate); their latency matters
        because a store-buffer entry is held until the write completes.
        """
        t = now + self.l1.config.hit_latency
        if self.l1.lookup(addr):
            return AccessResult(ready_cycle=t, level="l1")
        start = self._miss_start(self.l1, t)
        t = start + self.l2.config.hit_latency
        if self.l2.lookup(addr):
            self.l1.insert(addr)
            self.l1.allocate_mshr(t)
            return AccessResult(ready_cycle=t, level="l2")
        start = self._miss_start(self.l2, t)
        t = start + self.l3.config.hit_latency
        if self.l3.lookup(addr):
            self.l2.insert(addr)
            self.l1.insert(addr)
            self.l1.allocate_mshr(t)
            self.l2.allocate_mshr(t)
            return AccessResult(ready_cycle=t, level="l3")
        start = self._miss_start(self.l3, t)
        t = start + self.config.memory_latency
        self.memory_accesses += 1
        self.l3.insert(addr)
        self.l2.insert(addr)
        self.l1.insert(addr)
        self.l1.allocate_mshr(t)
        self.l2.allocate_mshr(t)
        self.l3.allocate_mshr(t)
        return AccessResult(ready_cycle=t, level="mem")

    def would_miss_l1(self, addr: int) -> bool:
        """Non-destructive L1 miss test (used for Table III's analysis)."""
        return not self.l1.probe(addr)
