"""The four memory-model variants evaluated in Section V.

Each policy configures the load-scheduling rules of the OOO core; nothing
else differs between the simulated machines, exactly as in the paper:

* **GAM**  — SALdLd kills *and* stalls; no load-load data forwarding.
* **ARM**  — SALdLdARM: stalls only ("we ignore the kills when loads read
  values from the memory system, so the performance of ARM is an
  optimistic estimation" — Section V-A).
* **GAM0** — no same-address load-load mechanism at all (corrected RMO).
* **Alpha**** — GAM0 plus load-load data forwarding (the Alpha-style
  relaxation that breaks dependency ordering).

Store-address conflict kills (a younger load that executed before an older
same-address store resolved) are part of LdVal correctness and are enabled
in every policy.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelPolicy", "GAM", "ARM", "GAM0", "ALPHA_STAR", "ALL_POLICIES"]


@dataclass(frozen=True)
class ModelPolicy:
    """Load-scheduling rules for one simulated memory model.

    Attributes:
        name: display name (matches the paper's Figure 18 legend).
        saldld_kills: on a load's address resolution, kill younger done
            same-address loads that did not forward from a younger store.
        saldld_stalls: a load ready to execute stalls behind an older
            same-address load that has not started execution (with no
            intervening same-address store to forward from).
        ldld_forwarding: a load may take its value from an older *done*
            same-address load instead of accessing the memory system.
    """

    name: str
    saldld_kills: bool
    saldld_stalls: bool
    ldld_forwarding: bool


GAM = ModelPolicy("GAM", saldld_kills=True, saldld_stalls=True, ldld_forwarding=False)
ARM = ModelPolicy("ARM", saldld_kills=False, saldld_stalls=True, ldld_forwarding=False)
GAM0 = ModelPolicy("GAM0", saldld_kills=False, saldld_stalls=False, ldld_forwarding=False)
ALPHA_STAR = ModelPolicy(
    "Alpha*", saldld_kills=False, saldld_stalls=False, ldld_forwarding=True
)

ALL_POLICIES = (GAM, ARM, GAM0, ALPHA_STAR)
"""The four policies of Figure 18, baseline (GAM) first."""
