"""Simulator configuration: Table I of the paper, encoded as defaults.

``CoreConfig.haswell_like()`` reproduces the paper's processor parameters:
4-wide fetch/commit, 6-wide issue, 192-entry ROB, 60-entry reservation
station, 72-entry load buffer, 42-entry store buffer, the listed function
units, and the 3-level cache hierarchy with 200-cycle memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .uops import UopKind

__all__ = ["CacheConfig", "CoreConfig"]


@dataclass(frozen=True)
class CacheConfig:
    """One cache level.

    Attributes:
        size_kb: capacity in KiB.
        ways: associativity.
        line_bytes: line size (64B throughout, per Table I).
        hit_latency: access latency in cycles.
        mshrs: maximum outstanding misses.
    """

    size_kb: int
    ways: int
    hit_latency: int
    mshrs: int
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        """Number of sets implied by size/ways/line size."""
        return (self.size_kb * 1024) // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table I).

    The latency table maps uOP kinds to execution latencies; memory-op
    latency is address generation plus the cache access determined by the
    hierarchy at run time.
    """

    fetch_width: int = 4
    issue_width: int = 6
    writeback_width: int = 6
    commit_width: int = 4
    rob_entries: int = 192
    rs_entries: int = 60
    lb_entries: int = 72
    sb_entries: int = 42
    int_alu_units: int = 4
    int_mul_units: int = 1
    int_div_units: int = 1
    fp_alu_units: int = 2
    fp_mul_units: int = 1
    fp_div_units: int = 1
    lsu_units: int = 2
    mispredict_penalty: int = 12
    kill_penalty: int = 10
    latencies: tuple[tuple[UopKind, int], ...] = (
        (UopKind.INT_ALU, 1),
        (UopKind.INT_MUL, 3),
        (UopKind.INT_DIV, 20),
        (UopKind.FP_ALU, 3),
        (UopKind.FP_MUL, 5),
        (UopKind.FP_DIV, 24),
        (UopKind.BRANCH, 1),
    )
    l1d: CacheConfig = CacheConfig(size_kb=32, ways=8, hit_latency=4, mshrs=8)
    l2: CacheConfig = CacheConfig(size_kb=256, ways=8, hit_latency=12, mshrs=20)
    l3: CacheConfig = CacheConfig(size_kb=1024, ways=16, hit_latency=35, mshrs=30)
    memory_latency: int = 200

    @classmethod
    def haswell_like(cls) -> "CoreConfig":
        """The exact Table I configuration (also the default constructor)."""
        return cls()

    @classmethod
    def tiny(cls) -> "CoreConfig":
        """A scaled-down core for fast unit tests (same mechanisms)."""
        return cls(
            rob_entries=16,
            rs_entries=8,
            lb_entries=8,
            sb_entries=4,
            l1d=CacheConfig(size_kb=1, ways=2, hit_latency=2, mshrs=2),
            l2=CacheConfig(size_kb=4, ways=2, hit_latency=6, mshrs=4),
            l3=CacheConfig(size_kb=16, ways=4, hit_latency=12, mshrs=4),
            memory_latency=40,
        )

    def latency_of(self, kind: UopKind) -> int:
        """Fixed execution latency for non-memory kinds."""
        for uop_kind, latency in self.latencies:
            if uop_kind == kind:
                return latency
        raise KeyError(f"no fixed latency for {kind}")

    def units_of(self, kind: UopKind) -> int:
        """Number of function units able to execute ``kind``."""
        units = {
            UopKind.INT_ALU: self.int_alu_units,
            UopKind.INT_MUL: self.int_mul_units,
            UopKind.INT_DIV: self.int_div_units,
            UopKind.FP_ALU: self.fp_alu_units,
            UopKind.FP_MUL: self.fp_mul_units,
            UopKind.FP_DIV: self.fp_div_units,
            UopKind.LOAD: self.lsu_units,
            UopKind.STORE: self.lsu_units,
            UopKind.BRANCH: self.int_alu_units,
        }
        return units[kind]
