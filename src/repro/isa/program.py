"""Programs: per-processor instruction sequences with labels.

A :class:`Program` is the code one processor runs in a litmus test.  Its key
capability beyond storage is :meth:`Program.execute`: *deterministic replay*
under an assignment of values to its loads.  The axiomatic checking engine
(:mod:`repro.core.axiomatic`) enumerates candidate load-value assignments and
uses replay to discover the concrete addresses, store data and branch paths
that assignment implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from .expr import evaluate
from .instructions import Branch, Fence, Instruction, Load, Nop, RegOp, Rmw, Store

__all__ = ["Program", "ExecutedInstr", "ProgramRun", "ProgramError"]


class ProgramError(ValueError):
    """Raised for malformed programs (bad labels, backward branches...)."""


@dataclass(frozen=True)
class ExecutedInstr:
    """One dynamic instruction instance produced by :meth:`Program.execute`.

    Attributes:
        index: static index of the instruction within its program.
        instr: the instruction itself.
        addr: resolved memory address (loads/stores), else ``None``.
        value: load result or store data (memory instructions), branch
            condition value (branches), ALU result (reg-ops), else ``None``.
            For an RMW, ``value`` is the *loaded* old value.
        data: for an RMW, the value its store half writes.
        taken: for branches, whether the branch was taken.
    """

    index: int
    instr: Instruction
    addr: Optional[int] = None
    value: Optional[int] = None
    data: Optional[int] = None
    taken: Optional[bool] = None


@dataclass(frozen=True)
class ProgramRun:
    """The result of replaying a program under a load-value assignment.

    Attributes:
        executed: the dynamic instruction sequence, in program order.
        final_regs: register file after the last instruction.
    """

    executed: tuple[ExecutedInstr, ...]
    final_regs: Mapping[str, int]

    def loads(self) -> tuple[ExecutedInstr, ...]:
        """Dynamic loads, in program order."""
        return tuple(e for e in self.executed if e.instr.is_load)

    def stores(self) -> tuple[ExecutedInstr, ...]:
        """Dynamic stores, in program order."""
        return tuple(e for e in self.executed if e.instr.is_store)

    def memory_accesses(self) -> tuple[ExecutedInstr, ...]:
        """Dynamic loads and stores, in program order."""
        return tuple(e for e in self.executed if e.instr.is_memory)


class Program:
    """An ordered sequence of instructions with optional branch labels.

    Args:
        instructions: the instruction sequence.
        labels: mapping from label name to instruction index.  Labels may
            also point one past the last instruction (a "end" label).

    Programs must be loop-free: every branch target must be *after* the
    branch.  This keeps litmus-test state spaces finite, which both the
    axiomatic enumeration and the operational exploration rely on.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        labels: Optional[Mapping[str, int]] = None,
    ) -> None:
        self.instructions: tuple[Instruction, ...] = tuple(instructions)
        self.labels: dict[str, int] = dict(labels or {})
        self._validate()

    def _validate(self) -> None:
        n = len(self.instructions)
        for name, idx in self.labels.items():
            if not 0 <= idx <= n:
                raise ProgramError(f"label {name!r} points outside the program ({idx})")
        for i, instr in enumerate(self.instructions):
            if isinstance(instr, Branch):
                if instr.target not in self.labels:
                    raise ProgramError(f"undefined branch target {instr.target!r} at index {i}")
                if self.labels[instr.target] <= i:
                    raise ProgramError(
                        f"backward branch at index {i}: litmus programs must be loop-free"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def __repr__(self) -> str:
        lines = [f"  I{i}: {instr!r}" for i, instr in enumerate(self.instructions)]
        return "Program(\n" + "\n".join(lines) + "\n)"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same instructions and same labels.

        Needed so litmus tests compare by content — the ``.litmus``
        round-trip property ``parse(print(t)) == t`` relies on it.
        """
        if not isinstance(other, Program):
            return NotImplemented
        return self.instructions == other.instructions and self.labels == other.labels

    def __hash__(self) -> int:
        return hash((self.instructions, tuple(sorted(self.labels.items()))))

    def load_indices(self) -> tuple[int, ...]:
        """Static indices of all load instructions."""
        return tuple(i for i, ins in enumerate(self.instructions) if ins.is_load)

    def store_indices(self) -> tuple[int, ...]:
        """Static indices of all store instructions."""
        return tuple(i for i, ins in enumerate(self.instructions) if ins.is_store)

    def registers(self) -> frozenset[str]:
        """Every register name this program mentions."""
        regs: set[str] = set()
        for instr in self.instructions:
            regs |= instr.read_set() | instr.write_set()
        return frozenset(regs)

    def has_branches(self) -> bool:
        """True if the program contains any branch instruction."""
        return any(ins.is_branch for ins in self.instructions)

    def execute(
        self,
        load_values: Mapping[int, int],
        initial_regs: Optional[Mapping[str, int]] = None,
    ) -> ProgramRun:
        """Replay the program with each load returning an assigned value.

        Args:
            load_values: maps the *static index* of each executed load to the
                value it returns.  Loads skipped by branches need no entry.
            initial_regs: initial register values; unmentioned registers
                default to 0 (the litmus-test convention).

        Returns:
            a :class:`ProgramRun` with the dynamic instruction stream and the
            final register file.

        Raises:
            KeyError: if an executed load has no assigned value.

        The engine's run enumerator
        (:func:`repro.core.axiomatic._enumerate_runs`) inlines these
        per-instruction semantics to fork at loads without re-replaying;
        any change here must be mirrored there.
        """
        regs: dict[str, int] = dict(initial_regs or {})
        for name in self.registers():
            regs.setdefault(name, 0)

        executed: list[ExecutedInstr] = []
        pc = 0
        while pc < len(self.instructions):
            instr = self.instructions[pc]
            next_pc = pc + 1
            if isinstance(instr, Rmw):
                addr = evaluate(instr.addr, regs)
                if pc not in load_values:
                    raise KeyError(f"no value assigned to RMW at index {pc}")
                loaded = load_values[pc]
                regs[instr.dst] = loaded
                stored = evaluate(instr.data, regs)
                executed.append(
                    ExecutedInstr(pc, instr, addr=addr, value=loaded, data=stored)
                )
            elif isinstance(instr, Load):
                addr = evaluate(instr.addr, regs)
                if pc not in load_values:
                    raise KeyError(f"no value assigned to load at index {pc}")
                value = load_values[pc]
                regs[instr.dst] = value
                executed.append(ExecutedInstr(pc, instr, addr=addr, value=value))
            elif isinstance(instr, Store):
                addr = evaluate(instr.addr, regs)
                data = evaluate(instr.data, regs)
                executed.append(ExecutedInstr(pc, instr, addr=addr, value=data))
            elif isinstance(instr, RegOp):
                result = evaluate(instr.expr, regs)
                regs[instr.dst] = result
                executed.append(ExecutedInstr(pc, instr, value=result))
            elif isinstance(instr, Branch):
                cond = evaluate(instr.cond, regs)
                taken = cond != 0
                executed.append(ExecutedInstr(pc, instr, value=cond, taken=taken))
                if taken:
                    next_pc = self.labels[instr.target]
            elif isinstance(instr, (Fence, Nop)):
                executed.append(ExecutedInstr(pc, instr))
            else:
                raise ProgramError(f"unknown instruction kind: {instr!r}")
            pc = next_pc
        return ProgramRun(tuple(executed), regs)
