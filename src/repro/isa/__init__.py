"""Instruction set architecture for GAM litmus programs.

This subpackage defines the minimal ISA the paper's programs use: loads,
stores, the four basic fences, reg-to-reg computations and forward branches,
together with operand expressions whose *syntactic* register read sets drive
the dependency definitions (Definitions 1-5 of the paper).
"""

from .expr import BinOp, Const, Expr, Reg, UnOp, evaluate, registers_read, to_expr
from .instructions import (
    FENCE_LL,
    FENCE_LS,
    FENCE_SL,
    FENCE_SS,
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
    acquire_fence,
    full_fence,
    release_fence,
)
from .program import ExecutedInstr, Program, ProgramError, ProgramRun

__all__ = [
    "Expr",
    "Reg",
    "Const",
    "BinOp",
    "UnOp",
    "to_expr",
    "registers_read",
    "evaluate",
    "Instruction",
    "Load",
    "Store",
    "Fence",
    "RegOp",
    "Rmw",
    "Branch",
    "Nop",
    "FENCE_LL",
    "FENCE_LS",
    "FENCE_SL",
    "FENCE_SS",
    "acquire_fence",
    "release_fence",
    "full_fence",
    "Program",
    "ProgramRun",
    "ExecutedInstr",
    "ProgramError",
]
