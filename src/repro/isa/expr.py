"""Expression ASTs for instruction operands.

Litmus tests in the paper use operands such as ``a + r1 - r1`` (an
*artificial* data dependency, Fig. 13b) whose **syntactic** register reads
matter even when they cancel arithmetically.  Expressions are therefore kept
as small immutable trees; :func:`registers_read` extracts the syntactic read
set (Definition 1 in the paper works over these sets) and :func:`evaluate`
computes the concrete integer value under a register file.

Expressions support Python operators for concise test construction::

    >>> r1 = Reg("r1")
    >>> e = Const(0x100) + r1 - r1
    >>> sorted(registers_read(e))
    ['r1']
    >>> evaluate(e, {"r1": 7})
    256
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

__all__ = [
    "Expr",
    "Reg",
    "Const",
    "BinOp",
    "UnOp",
    "ExprLike",
    "to_expr",
    "registers_read",
    "evaluate",
]


class Expr:
    """Base class for operand expressions.

    Subclasses are frozen dataclasses, so expressions are hashable and can be
    shared freely between instructions.  Arithmetic operators build
    :class:`BinOp` nodes, which lets tests write ``Reg("r1") + 1``.
    """

    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, to_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", to_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, to_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", to_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, to_expr(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", to_expr(other), self)

    def __xor__(self, other: "ExprLike") -> "BinOp":
        return BinOp("^", self, to_expr(other))

    def __rxor__(self, other: "ExprLike") -> "BinOp":
        return BinOp("^", to_expr(other), self)

    def __and__(self, other: "ExprLike") -> "BinOp":
        return BinOp("&", self, to_expr(other))

    def __or__(self, other: "ExprLike") -> "BinOp":
        return BinOp("|", self, to_expr(other))

    def __neg__(self) -> "UnOp":
        return UnOp("-", self)


@dataclass(frozen=True)
class Reg(Expr):
    """A read of architectural register ``name`` (e.g. ``"r1"``)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    """An integer literal operand."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


_BINARY_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "^": lambda a, b: a ^ b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">=": lambda a, b: int(a >= b),
}

_UNARY_OPS = {
    "-": lambda a: -a,
    "~": lambda a: ~a,
    "!": lambda a: int(not a),
}


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation over two sub-expressions.

    ``op`` must be one of ``+ - * ^ & | == != < >=``; comparison operators
    evaluate to 0/1 and exist so branch conditions can be ordinary
    expressions.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ValueError(f"unsupported binary operator: {self.op!r}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation (negate, bitwise-not, logical-not)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in _UNARY_OPS:
            raise ValueError(f"unsupported unary operator: {self.op!r}")

    def __repr__(self) -> str:
        return f"{self.op}{self.operand!r}"


ExprLike = Union[Expr, int, str]
"""Anything coercible to an :class:`Expr` by :func:`to_expr`."""


def to_expr(value: ExprLike) -> Expr:
    """Coerce ``value`` to an expression.

    Integers become :class:`Const`, strings become :class:`Reg`, and
    expressions pass through unchanged.  This is the single place operand
    coercion happens, so the litmus DSL can accept bare ints and register
    names everywhere.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are ambiguous operands; use Const(0/1)")
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Reg(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


def registers_read(expr: Expr) -> frozenset[str]:
    """Return the *syntactic* register read set of ``expr``.

    The paper's Definition 1 (RS) is built from this: an artificial
    dependency such as ``a + r1 - r1`` reads ``r1`` even though the value is
    algebraically irrelevant.  Implementations of GAM must respect syntactic
    dependencies (Section III-D2), so no simplification is ever applied.
    """
    if isinstance(expr, Reg):
        return frozenset((expr.name,))
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, BinOp):
        return registers_read(expr.left) | registers_read(expr.right)
    if isinstance(expr, UnOp):
        return registers_read(expr.operand)
    raise TypeError(f"not an expression: {expr!r}")


def evaluate(expr: Expr, regfile: Mapping[str, int]) -> int:
    """Evaluate ``expr`` to an integer under register file ``regfile``.

    Raises ``KeyError`` if the expression reads a register not present in
    ``regfile``; callers that model partial register states should check
    :func:`registers_read` first.
    """
    if isinstance(expr, Reg):
        return regfile[expr.name]
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, BinOp):
        left = evaluate(expr.left, regfile)
        right = evaluate(expr.right, regfile)
        return _BINARY_OPS[expr.op](left, right)
    if isinstance(expr, UnOp):
        return _UNARY_OPS[expr.op](evaluate(expr.operand, regfile))
    raise TypeError(f"not an expression: {expr!r}")
