"""Instruction set for litmus programs and the GAM abstract machine.

The paper's programs use five instruction kinds: loads, stores, fences
(``FenceXY`` for X, Y in {L, S}), reg-to-reg computations, and branches.
Each instruction exposes the three register sets of Definitions 1-3:

* ``RS(I)``  — registers read (:meth:`Instruction.read_set`),
* ``WS(I)``  — registers written (:meth:`Instruction.write_set`),
* ``ARS(I)`` — registers read *to compute the memory address*
  (:meth:`Instruction.addr_read_set`).

All definitions ignore the PC register, matching the paper (branch
prediction means every fetched instruction already knows its PC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .expr import Expr, ExprLike, registers_read, to_expr

__all__ = [
    "Instruction",
    "Load",
    "Store",
    "Fence",
    "RegOp",
    "Rmw",
    "Branch",
    "Nop",
    "FENCE_LL",
    "FENCE_LS",
    "FENCE_SL",
    "FENCE_SS",
    "acquire_fence",
    "release_fence",
    "full_fence",
]


@dataclass(frozen=True)
class Instruction:
    """Base class for all instructions.

    Instructions are immutable values; a program is a sequence of them, and
    dynamic occurrences are identified by ``(processor, index)`` pairs in
    :mod:`repro.core.events`.
    """

    def read_set(self) -> frozenset[str]:
        """``RS(I)``: the registers this instruction reads (Definition 1)."""
        return frozenset()

    def write_set(self) -> frozenset[str]:
        """``WS(I)``: the registers this instruction can write (Definition 2)."""
        return frozenset()

    def addr_read_set(self) -> frozenset[str]:
        """``ARS(I)``: registers read to compute the memory address (Definition 3)."""
        return frozenset()

    @property
    def is_load(self) -> bool:
        """True for :class:`Load` instructions."""
        return isinstance(self, Load)

    @property
    def is_store(self) -> bool:
        """True for :class:`Store` instructions."""
        return isinstance(self, Store)

    @property
    def is_memory(self) -> bool:
        """True for loads and stores (the instructions that enter ``<mo``)."""
        return self.is_load or self.is_store

    @property
    def is_fence(self) -> bool:
        """True for :class:`Fence` instructions."""
        return isinstance(self, Fence)

    @property
    def is_branch(self) -> bool:
        """True for :class:`Branch` instructions."""
        return isinstance(self, Branch)


@dataclass(frozen=True)
class Load(Instruction):
    """``dst = Ld [addr]`` — load from the address ``addr`` evaluates to."""

    dst: str
    addr: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "addr", to_expr(self.addr))

    def read_set(self) -> frozenset[str]:
        return registers_read(self.addr)

    def write_set(self) -> frozenset[str]:
        return frozenset((self.dst,))

    def addr_read_set(self) -> frozenset[str]:
        return registers_read(self.addr)

    def __repr__(self) -> str:
        return f"{self.dst} = Ld [{self.addr!r}]"


@dataclass(frozen=True)
class Store(Instruction):
    """``St [addr] data`` — store the value of ``data`` to address ``addr``."""

    addr: Expr
    data: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "addr", to_expr(self.addr))
        object.__setattr__(self, "data", to_expr(self.data))

    def read_set(self) -> frozenset[str]:
        return registers_read(self.addr) | registers_read(self.data)

    def write_set(self) -> frozenset[str]:
        return frozenset()

    def addr_read_set(self) -> frozenset[str]:
        return registers_read(self.addr)

    def __repr__(self) -> str:
        return f"St [{self.addr!r}] {self.data!r}"


@dataclass(frozen=True)
class Fence(Instruction):
    """``FenceXY`` — orders older type-X accesses before younger type-Y ones.

    ``pre`` and ``post`` are ``"L"`` or ``"S"``.  The four basic fences of
    Section III-D1 are the module constants :data:`FENCE_LL`,
    :data:`FENCE_LS`, :data:`FENCE_SL` and :data:`FENCE_SS`; stronger fences
    (acquire / release / full) are *sequences* of basic fences, built by
    :func:`acquire_fence`, :func:`release_fence` and :func:`full_fence`.
    """

    pre: str
    post: str

    def __post_init__(self) -> None:
        if self.pre not in ("L", "S") or self.post not in ("L", "S"):
            raise ValueError(f"fence types must be 'L' or 'S', got {self.pre}{self.post}")

    def orders_before(self, instr: Instruction) -> bool:
        """True if this fence must come after older ``instr`` (type ``pre``)."""
        return (instr.is_load and self.pre == "L") or (instr.is_store and self.pre == "S")

    def orders_after(self, instr: Instruction) -> bool:
        """True if this fence must come before younger ``instr`` (type ``post``)."""
        return (instr.is_load and self.post == "L") or (instr.is_store and self.post == "S")

    def __repr__(self) -> str:
        return f"Fence{self.pre}{self.post}"


FENCE_LL = Fence("L", "L")
FENCE_LS = Fence("L", "S")
FENCE_SL = Fence("S", "L")
FENCE_SS = Fence("S", "S")


def acquire_fence() -> tuple[Fence, Fence]:
    """The acquire fence of Section III-D1: ``FenceLL; FenceLS``."""
    return (FENCE_LL, FENCE_LS)


def release_fence() -> tuple[Fence, Fence]:
    """The release fence of Section III-D1: ``FenceLS; FenceSS``."""
    return (FENCE_LS, FENCE_SS)


def full_fence() -> tuple[Fence, Fence, Fence, Fence]:
    """The full fence: all four basic fences in sequence."""
    return (FENCE_LL, FENCE_LS, FENCE_SL, FENCE_SS)


@dataclass(frozen=True)
class RegOp(Instruction):
    """``dst = expr`` — a reg-to-reg (ALU) computation."""

    dst: str
    expr: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "expr", to_expr(self.expr))

    def read_set(self) -> frozenset[str]:
        return registers_read(self.expr)

    def write_set(self) -> frozenset[str]:
        return frozenset((self.dst,))

    def __repr__(self) -> str:
        return f"{self.dst} = {self.expr!r}"


@dataclass(frozen=True)
class Branch(Instruction):
    """``if (cond != 0) goto target`` — a conditional forward branch.

    ``target`` is a label defined later in the same program (litmus programs
    must be loop-free so exhaustive exploration terminates).  An
    unconditional jump is a branch with condition ``Const(1)``.
    """

    cond: Expr
    target: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "cond", to_expr(self.cond))

    def read_set(self) -> frozenset[str]:
        return registers_read(self.cond)

    def __repr__(self) -> str:
        return f"if ({self.cond!r}) goto {self.target}"


@dataclass(frozen=True)
class Rmw(Instruction):
    """``dst = RMW [addr] data`` — atomic read-modify-write.

    Atomically loads the old value of ``addr`` into ``dst`` and stores the
    value of ``data``; ``data`` may read ``dst``, which denotes the *loaded*
    value (so ``Rmw("r1", a, Reg("r1") + 1)`` is fetch-and-add and
    ``Rmw("r1", a, Const(1))`` is an atomic swap/test-and-set).

    Following Section III-C's sketch, an RMW obeys every constraint that
    applies to a load of ``addr`` *and* every constraint that applies to a
    store of ``addr`` (both ``is_load`` and ``is_store`` are true), and it
    always executes by accessing the memory system — its load half never
    forwards from the store buffer.
    """

    dst: str
    addr: Expr
    data: Expr

    def __post_init__(self) -> None:
        object.__setattr__(self, "addr", to_expr(self.addr))
        object.__setattr__(self, "data", to_expr(self.data))

    def read_set(self) -> frozenset[str]:
        data_reads = registers_read(self.data) - frozenset((self.dst,))
        return registers_read(self.addr) | data_reads

    def write_set(self) -> frozenset[str]:
        return frozenset((self.dst,))

    def addr_read_set(self) -> frozenset[str]:
        return registers_read(self.addr)

    @property
    def is_load(self) -> bool:  # type: ignore[override]
        return True

    @property
    def is_store(self) -> bool:  # type: ignore[override]
        return True

    def __repr__(self) -> str:
        return f"{self.dst} = RMW [{self.addr!r}] {self.data!r}"


@dataclass(frozen=True)
class Nop(Instruction):
    """A no-op; useful as a branch-target placeholder in tests."""

    def __repr__(self) -> str:
        return "Nop"
