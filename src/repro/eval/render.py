"""ASCII rendering helpers for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_bar_chart"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table.

    Floats are formatted to four significant places; everything else via
    ``str``.  Used by every experiment harness so reports look uniform.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    materialized = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 50,
    baseline: float = 1.0,
) -> str:
    """Render normalized values as a deviation-from-baseline bar chart.

    Mirrors Figure 18's presentation: values hover around 1.0, so bars show
    the (signed) deviation, scaled to the maximum observed deviation.
    """
    deviations = [v - baseline for v in values]
    scale = max((abs(d) for d in deviations), default=0.0) or 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value, dev in zip(labels, values, deviations):
        bar_len = int(round(abs(dev) / scale * width))
        bar = ("+" if dev >= 0 else "-") * bar_len
        lines.append(f"{label.ljust(label_width)}  {value:7.4f}  {bar}")
    return "\n".join(lines)
