"""The model-strength lattice, measured empirically.

The paper's narrative places the models on a strength spectrum (SC
strongest; GAM0/Alpha progressively weaker; GAM between GAM0 and TSO...).
This harness *measures* the relation: model A is at least as strong as
model B on a suite when A's outcome set is contained in B's for every
test.  The resulting matrix is a compact, machine-checked summary of
Sections II-III, and a regression tripwire for the whole zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..engine import (
    CellFailure,
    ExecutionPolicy,
    FaultPlan,
    ModelLike,
    OutcomeSpec,
    evaluate_cells,
    model_display_name,
)
from ..litmus.registry import all_tests
from ..litmus.test import LitmusTest
from .render import render_table

__all__ = ["StrengthMatrix", "strength_matrix", "render_strength"]

_DEFAULT_MODELS = ("sc", "tso", "gam", "arm", "gam0", "wmm", "alpha_like")


@dataclass(frozen=True)
class StrengthMatrix:
    """Pairwise containment results.

    ``stronger_or_equal[(a, b)]`` is True when model ``a``'s outcome set is
    a subset of ``b``'s on *every* suite test (a allows no behaviour b
    forbids — a is at least as strong).  ``skipped`` lists tests excluded
    from the measurement because a cell of theirs failed under a
    non-raising :class:`ExecutionPolicy` — containment is only meaningful
    over tests where every model answered.
    """

    model_names: tuple[str, ...]
    stronger_or_equal: dict[tuple[str, str], bool]
    skipped: tuple[str, ...] = ()

    def is_stronger_or_equal(self, a: str, b: str) -> bool:
        """Is ``a`` at least as strong as ``b`` over the suite?"""
        return self.stronger_or_equal[(a, b)]

    def chain_holds(self, names: Sequence[str]) -> bool:
        """Does strength decrease monotonically along ``names``?"""
        return all(
            self.is_stronger_or_equal(a, b) for a, b in zip(names, names[1:])
        )


def strength_matrix(
    tests: Optional[Iterable[LitmusTest]] = None,
    model_names: Sequence[ModelLike] = _DEFAULT_MODELS,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[ExecutionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    evaluate=None,
) -> StrengthMatrix:
    """Measure pairwise strength over a suite (default: full catalogue).

    Tests whose programs a model cannot evaluate are never the case here —
    all zoo models share the engine — so the matrix is total.
    ``model_names`` entries are :data:`~repro.engine.ModelLike`; their
    display names key the matrix and must be pairwise distinct.  Outcome
    sets are enumerated through the batch engine: per-test candidate
    prefixes are shared across ``model_names``, ``jobs`` fans tests out
    over a process pool, ``cache_dir`` makes repeat runs incremental.

    ``policy`` arms deadlines/retries/quarantine; a test whose batch
    fails under a non-raising policy lands in ``StrengthMatrix.skipped``
    and the containment relation is measured over the survivors.
    ``fault_plan`` is the fault-injection hook (tests only).
    ``evaluate`` swaps the engine backend (any
    :func:`~repro.engine.evaluate_cells`-shaped callable, e.g. a
    :class:`~repro.serve.RemoteScheduler` method).
    """
    materialized = list(tests) if tests is not None else list(all_tests())
    display = tuple(model_display_name(model) for model in model_names)
    if len(set(display)) != len(display):
        raise ValueError(f"duplicate model display names in {display!r}")
    specs = [
        OutcomeSpec(test, model, project="full")
        for test in materialized
        for model in model_names
    ]
    if evaluate is None:
        evaluate = evaluate_cells
    results = evaluate(
        specs, jobs=jobs, cache_dir=cache_dir, policy=policy,
        fault_plan=fault_plan,
    )
    outcome_sets: dict[str, list[frozenset]] = {name: [] for name in display}
    skipped: list[str] = []
    width = len(model_names)
    for index, test in enumerate(materialized):
        chunk = results[index * width:(index + 1) * width]
        if any(isinstance(outcomes, CellFailure) for outcomes in chunk):
            skipped.append(test.name)
            continue
        for name, outcomes in zip(display, chunk):
            outcome_sets[name].append(outcomes)
    relation: dict[tuple[str, str], bool] = {}
    for a in display:
        for b in display:
            relation[(a, b)] = all(
                sa <= sb for sa, sb in zip(outcome_sets[a], outcome_sets[b])
            )
    return StrengthMatrix(display, relation, tuple(skipped))


def render_strength(matrix: StrengthMatrix) -> str:
    """Render the containment matrix (``<=`` marks row ⊆ column)."""
    rows = []
    for a in matrix.model_names:
        row: list[object] = [a]
        for b in matrix.model_names:
            row.append("<=" if matrix.stronger_or_equal[(a, b)] else ".")
        rows.append(row)
    table = render_table(
        ["row ⊆ col?"] + list(matrix.model_names),
        rows,
        title="Model strength (row at least as strong as column)",
    )
    if matrix.skipped:
        table += (
            f"\n(measured without {len(matrix.skipped)} skipped test(s): "
            f"{', '.join(matrix.skipped)})"
        )
    return table
