"""Experiment harnesses: one module per table/figure of the paper,
plus differential analyses over their matrices (:mod:`.discrepancy`)."""

from .discrepancy import (
    Discrepancy,
    mine_discrepancies,
    parse_pair,
    render_discrepancies,
    verdict_table,
)
from .figure18 import Figure18Result, Figure18Row, render_figure18, run_figure18
from .litmus_matrix import (
    VerdictCell,
    conformance_failures,
    litmus_matrix,
    render_matrix,
)
from .render import render_bar_chart, render_table
from .strength import StrengthMatrix, render_strength, strength_matrix
from .table2 import Table2Row, render_table2, table2
from .table3 import Table3Row, render_table3, table3

__all__ = [
    "run_figure18",
    "render_figure18",
    "Figure18Result",
    "Figure18Row",
    "table2",
    "render_table2",
    "Table2Row",
    "table3",
    "render_table3",
    "Table3Row",
    "litmus_matrix",
    "render_matrix",
    "conformance_failures",
    "VerdictCell",
    "render_table",
    "render_bar_chart",
    "strength_matrix",
    "render_strength",
    "StrengthMatrix",
    "Discrepancy",
    "mine_discrepancies",
    "parse_pair",
    "render_discrepancies",
    "verdict_table",
]
