"""Figure 18: normalized uPC of ARM / GAM0 / Alpha* against GAM.

The paper's headline performance result: across 55 SPEC CPU2006 inputs,
the uPC improvements of the three relaxed variants over GAM are negligible
(< 0.3% on average, never above 3%).  This harness regenerates the figure
on the synthetic workload suite: same four models, same normalization, the
same ``average`` column appended last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..sim.config import CoreConfig
from ..sim.core import OOOCore
from ..sim.policies import ALL_POLICIES, ModelPolicy
from ..sim.stats import SimStats
from ..workloads.generator import generate_trace
from ..workloads.profiles import get_profile, profile_names
from .render import render_bar_chart, render_table

__all__ = ["Figure18Row", "Figure18Result", "run_figure18", "render_figure18"]

DEFAULT_TRACE_LENGTH = 12_000


@dataclass(frozen=True)
class Figure18Row:
    """Per-workload uPC for the four models, normalized to GAM."""

    workload: str
    upc: dict[str, float]

    def normalized(self, name: str) -> float:
        """uPC of ``name`` divided by GAM's uPC."""
        return self.upc[name] / self.upc["GAM"] if self.upc["GAM"] else 0.0


@dataclass
class Figure18Result:
    """All rows plus the stats objects for deeper analysis (Tables II-III)."""

    rows: list[Figure18Row] = field(default_factory=list)
    stats: dict[tuple[str, str], SimStats] = field(default_factory=dict)

    def average_normalized(self, name: str) -> float:
        """The figure's final 'average' column for one model."""
        values = [row.normalized(name) for row in self.rows]
        return sum(values) / len(values) if values else 0.0

    def max_normalized(self, name: str) -> float:
        """Largest per-workload normalized uPC for one model."""
        return max((row.normalized(name) for row in self.rows), default=0.0)


def run_figure18(
    workloads: Optional[Sequence[str]] = None,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 1,
    config: Optional[CoreConfig] = None,
    policies: Sequence[ModelPolicy] = ALL_POLICIES,
    checkpoints: int = 1,
) -> Figure18Result:
    """Simulate every workload under every policy.

    Args:
        workloads: subset of profile names (default: all 55).
        trace_length: uOPs per workload (the paper simulates 100M per
            checkpoint; the default here keeps a laptop run in minutes —
            raise it for tighter statistics).
        seed: workload-generation seed.
        config: core configuration (default Table I).
        policies: the simulated models (default: GAM, ARM, GAM0, Alpha*).
        checkpoints: independent trace samples per workload, mirroring the
            paper's 10-uniformly-distributed-checkpoints methodology; uPC
            and event statistics are aggregated across them (the stats
            entry keeps the first checkpoint's counters plus aggregate
            rates).
    """
    result = Figure18Result()
    names = list(workloads) if workloads is not None else list(profile_names())
    for name in names:
        upc: dict[str, float] = {}
        for policy in policies:
            total_uops = 0
            total_cycles = 0
            aggregate: Optional[SimStats] = None
            for checkpoint in range(checkpoints):
                trace = generate_trace(
                    get_profile(name),
                    length=trace_length,
                    seed=seed + checkpoint,
                )
                stats = OOOCore(config=config, policy=policy).run(trace)
                total_uops += stats.committed_uops
                total_cycles += stats.cycles
                if aggregate is None:
                    aggregate = stats
                else:
                    _accumulate(aggregate, stats)
            upc[policy.name] = total_uops / total_cycles if total_cycles else 0.0
            result.stats[(name, policy.name)] = aggregate
        result.rows.append(Figure18Row(workload=name, upc=upc))
    return result


_ACCUMULATED_FIELDS = (
    "cycles",
    "committed_uops",
    "committed_loads",
    "committed_stores",
    "committed_branches",
    "mispredicted_branches",
    "saldld_kills",
    "saldld_stalls",
    "conflict_kills",
    "ldld_forwards",
    "ldld_forwards_would_miss",
    "sb_forwards",
    "l1_load_hits",
    "l1_load_misses",
    "l2_load_hits",
    "l3_load_hits",
    "memory_loads",
)


def _accumulate(into: SimStats, stats: SimStats) -> None:
    """Fold one checkpoint's counters into the aggregate."""
    for field_name in _ACCUMULATED_FIELDS:
        setattr(into, field_name, getattr(into, field_name) + getattr(stats, field_name))


def render_figure18(result: Figure18Result) -> str:
    """Render the figure as a table plus an average bar chart."""
    model_names = [p.name for p in ALL_POLICIES if p.name != "GAM"]
    rows = []
    for row in result.rows:
        rows.append(
            [row.workload, f"{row.upc['GAM']:.3f}"]
            + [f"{row.normalized(name):.4f}" for name in model_names]
        )
    rows.append(
        ["average", ""]
        + [f"{result.average_normalized(name):.4f}" for name in model_names]
    )
    table = render_table(
        ["workload", "GAM uPC"] + [f"{n}/GAM" for n in model_names],
        rows,
        title="Figure 18: normalized uPC (baseline: GAM)",
    )
    chart = render_bar_chart(
        model_names,
        [result.average_normalized(name) for name in model_names],
        title="Average normalized uPC (1.0 = GAM)",
    )
    return table + "\n\n" + chart
