"""Table III: effects of load-load forwarding in Alpha*.

The paper's point: load-load forwardings are *frequent* (average 22 per 1K
uOPs) yet reduce L1 load misses by almost nothing (0.01 per 1K uOPs on
average) — the forwarded loads would have hit the L1 anyway, which is why
Alpha* gains no performance from the relaxation.  This harness computes
both rows: forwarding frequency in Alpha*, and the L1-load-miss reduction
of Alpha* relative to GAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from .figure18 import Figure18Result
from .render import render_table

__all__ = ["Table3Row", "table3", "render_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One row of Table III: an event class with average and max rates."""

    label: str
    average_per_1k: float
    max_per_1k: float


def table3(result: Figure18Result) -> list[Table3Row]:
    """Compute Table III from the per-run statistics of a Figure 18 sweep."""
    forwards: list[float] = []
    miss_reduction: list[float] = []
    workloads = {w for (w, _p) in result.stats}
    for workload in sorted(workloads):
        alpha = result.stats.get((workload, "Alpha*"))
        gam = result.stats.get((workload, "GAM"))
        if alpha is None or gam is None:
            continue
        forwards.append(alpha.ldld_forwards_per_1k)
        miss_reduction.append(
            gam.l1_load_misses_per_1k - alpha.l1_load_misses_per_1k
        )
    rows = [
        Table3Row(
            "Load-load forwardings",
            sum(forwards) / len(forwards) if forwards else 0.0,
            max(forwards, default=0.0),
        ),
        Table3Row(
            "Reduced L1 load misses over GAM",
            sum(miss_reduction) / len(miss_reduction) if miss_reduction else 0.0,
            max(miss_reduction, default=0.0),
        ),
    ]
    return rows


def render_table3(rows: list[Table3Row]) -> str:
    """Render Table III in the paper's layout."""
    return render_table(
        ["", "Average", "Max"],
        [[r.label, f"{r.average_per_1k:.2f}", f"{r.max_per_1k:.2f}"] for r in rows],
        title="Table III: effects of load-load forwardings in Alpha* (per 1K uOPs)",
    )
