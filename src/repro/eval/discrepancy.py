"""Discrepancy mining: where do two models disagree over a suite?

The paper's positioning argument — WMM/WMM-S sit between SC/TSO and
ARM/Alpha — is an argument about *differences*: behaviours one model
allows and another forbids.  This module mines those differences out of
accumulated verdict matrices (the per-test ``model -> allowed`` maps the
campaign runner and :func:`repro.eval.litmus_matrix.litmus_matrix` both
produce) for a chosen set of model *pairs*, in the tradition of Herding
Cats' mass differential litmus runs.

A :class:`Discrepancy` records one (test, pair) disagreement; mining is a
pure function of the verdict table, so it can be re-run over a campaign's
accumulated shards at any time — including after an interrupt — and
always yields the same, deterministically ordered list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from .litmus_matrix import VerdictCell
from .render import render_table

__all__ = [
    "Discrepancy",
    "OracleDiscrepancy",
    "parse_pair",
    "verdict_table",
    "mine_discrepancies",
    "mine_oracle_discrepancies",
    "render_discrepancies",
    "render_oracle_discrepancies",
]


@dataclass(frozen=True)
class Discrepancy:
    """One (test, model-pair) disagreement.

    Attributes:
        test_name: the diverging test.
        pair: the ``(a, b)`` model names, as given to the miner.
        allowed_a / allowed_b: the two verdicts (always unequal).
    """

    test_name: str
    pair: tuple[str, str]
    allowed_a: bool
    allowed_b: bool

    @property
    def splitter(self) -> str:
        """The model that *allows* the behaviour (the weaker side here)."""
        return self.pair[0] if self.allowed_a else self.pair[1]

    def describe(self) -> str:
        """One-line human-readable summary of the disagreement."""
        a, b = self.pair
        va = "allows" if self.allowed_a else "forbids"
        vb = "allows" if self.allowed_b else "forbids"
        return f"{self.test_name}: {a} {va}, {b} {vb}"


@dataclass(frozen=True)
class OracleDiscrepancy:
    """One (test, model-vs-machine) outcome-set divergence.

    Where :class:`Discrepancy` records a boolean verdict split between
    two models, this records an *outcome-set* split between an axiomatic
    model and an abstract machine — the unit an ``--oracle operational``
    hunt mines.  The sets themselves live in the engine cache; the
    discrepancy keeps only the divergence profile.

    Attributes:
        test_name: the diverging test.
        pair: ``(model name, oracle label)``, e.g.
            ``("gam", "operational:gam0")``.
        machine_only: outcomes the machine allows but the axioms forbid.
        axiomatic_only: outcomes the axioms allow but the machine forbids.
    """

    test_name: str
    pair: tuple[str, str]
    machine_only: int
    axiomatic_only: int

    def describe(self) -> str:
        """One-line human-readable summary of the divergence."""
        model, oracle = self.pair
        return (
            f"{self.test_name}: {model} vs {oracle} — "
            f"{self.machine_only} machine-only, "
            f"{self.axiomatic_only} axioms-only outcomes"
        )


def mine_oracle_discrepancies(
    table: Mapping[str, Mapping[str, tuple[int, int]]],
    pairs: Sequence[tuple[str, str]],
) -> list[OracleDiscrepancy]:
    """All (test, pair) outcome-set divergences in an oracle table.

    ``table`` maps test name to pair label (``"model|oracle"``) to the
    ``(machine_only, axiomatic_only)`` divergence counts; a pair with
    both counts zero agreed.  As with :func:`mine_discrepancies`, rows
    missing a pair are skipped and the output order follows table order
    then pair order, so mining is deterministic for any fixed table.
    """
    found: list[OracleDiscrepancy] = []
    for test_name, row in table.items():
        for pair in pairs:
            label = "|".join(pair)
            if label not in row:
                continue
            machine_only, axiomatic_only = row[label]
            if machine_only or axiomatic_only:
                found.append(
                    OracleDiscrepancy(
                        test_name, pair, machine_only, axiomatic_only
                    )
                )
    return found


def render_oracle_discrepancies(
    discrepancies: Sequence[OracleDiscrepancy],
    sizes: Optional[Mapping[tuple[str, tuple[str, str]], int]] = None,
    title: str = "Oracle discrepancies",
) -> str:
    """Render oracle divergences as an aligned table, smallest first.

    Mirrors :func:`render_discrepancies`: ``sizes`` ranks rows by the
    minimized witness instruction count when given; the verdict columns
    become machine-only / axioms-only outcome counts.
    """
    ordered = list(discrepancies)
    if sizes is not None:
        ordered.sort(
            key=lambda d: (
                sizes.get((d.test_name, d.pair), 1 << 30),
                d.test_name,
                d.pair,
            )
        )
    rows = []
    for disc in ordered:
        model, oracle = disc.pair
        size: object = "-"
        if sizes is not None:
            size = sizes.get((disc.test_name, disc.pair), "-")
        rows.append(
            [
                disc.test_name,
                f"{model}:{oracle}",
                disc.machine_only,
                disc.axiomatic_only,
                size,
            ]
        )
    table = render_table(
        ["test", "pair", "machine-only", "axioms-only", "instrs"],
        rows,
        title=title,
    )
    return table + f"\n{len(ordered)} discrepanc{'y' if len(ordered) == 1 else 'ies'}"


def parse_pair(spec: str) -> tuple[str, str]:
    """Parse a CLI ``--pair`` spec ``a:b`` into a model-spec pair.

    Each side is a model spec, and ``ctor:``/``space:`` specs contain a
    colon of their own, so the split is scheme-aware
    (:func:`repro.models.spec.split_pair_spec`):
    ``space:same_address_loads=*:gam`` means the enumerated family vs
    ``gam``.  Spec validity is checked at resolution time; here only the
    shape is enforced.
    """
    from ..models.spec import split_pair_spec  # cycle-free import

    return split_pair_spec(spec)


def verdict_table(
    cells: Iterable[VerdictCell],
) -> dict[str, dict[str, bool]]:
    """Pivot verdict cells into a ``test -> model -> allowed`` table.

    Insertion order of the outer dict follows first appearance of each
    test in ``cells``, so matrices built in suite order keep that order.
    """
    table: dict[str, dict[str, bool]] = {}
    for cell in cells:
        table.setdefault(cell.test_name, {})[cell.model_name] = cell.allowed
    return table


def mine_discrepancies(
    verdicts: Mapping[str, Mapping[str, bool]],
    pairs: Sequence[tuple[str, str]],
) -> list[Discrepancy]:
    """All (test, pair) disagreements in a verdict table.

    Tests missing a verdict for either side of a pair are skipped (an
    interrupted campaign may have partial rows); the output is ordered by
    the table's test order, then by pair order, so mining is deterministic
    for any fixed table.
    """
    found: list[Discrepancy] = []
    for test_name, row in verdicts.items():
        for a, b in pairs:
            if a not in row or b not in row:
                continue
            if row[a] != row[b]:
                found.append(
                    Discrepancy(test_name, (a, b), row[a], row[b])
                )
    return found


def render_discrepancies(
    discrepancies: Sequence[Discrepancy],
    sizes: Optional[Mapping[tuple[str, tuple[str, str]], int]] = None,
    title: str = "Model discrepancies",
) -> str:
    """Render discrepancies as an aligned table, smallest witnesses first.

    ``sizes`` maps ``(test_name, pair)`` keys to a size metric (the
    campaign uses the minimized witness's instruction count — one test
    can minimize differently for different pairs, so the pair is part of
    the key); when given, rows are ranked by ascending size — the
    shortest divergence is the most story-telling — with name order
    breaking ties.  Without it, table order is kept.
    """
    ordered = list(discrepancies)
    if sizes is not None:
        ordered.sort(
            key=lambda d: (
                sizes.get((d.test_name, d.pair), 1 << 30),
                d.test_name,
                d.pair,
            )
        )
    rows = []
    for disc in ordered:
        a, b = disc.pair
        size: object = "-"
        if sizes is not None:
            size = sizes.get((disc.test_name, disc.pair), "-")
        rows.append(
            [
                disc.test_name,
                f"{a}:{b}",
                "allow" if disc.allowed_a else "forbid",
                "allow" if disc.allowed_b else "forbid",
                size,
            ]
        )
    table = render_table(
        ["test", "pair", "weaker", "stronger", "instrs"], rows, title=title
    )
    return table + f"\n{len(ordered)} discrepanc{'y' if len(ordered) == 1 else 'ies'}"
