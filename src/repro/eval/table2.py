"""Table II: kills and stalls caused by same-address load-load ordering.

The paper reports, per 1K uOPs across all benchmarks: average and maximum
kills in GAM, stalls in GAM, and stalls in ARM — all rare (fractions of an
event per 1K uOPs), which is the quantitative argument that SALdLd costs
nothing.  This harness computes the same three rows from a Figure 18 run.
"""

from __future__ import annotations

from dataclasses import dataclass

from .figure18 import Figure18Result
from .render import render_table

__all__ = ["Table2Row", "table2", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: an event class with average and max rates."""

    label: str
    average_per_1k: float
    max_per_1k: float


def table2(result: Figure18Result) -> list[Table2Row]:
    """Compute Table II from the per-run statistics of a Figure 18 sweep."""
    def rates(policy: str, attribute: str) -> list[float]:
        values = []
        for (workload, pol), stats in result.stats.items():
            if pol == policy:
                values.append(getattr(stats, attribute))
        return values

    gam_kills = rates("GAM", "kills_per_1k")
    gam_stalls = rates("GAM", "stalls_per_1k")
    arm_stalls = rates("ARM", "stalls_per_1k")
    rows = []
    for label, values in (
        ("Kills in GAM", gam_kills),
        ("Stalls in GAM", gam_stalls),
        ("Stalls in ARM", arm_stalls),
    ):
        rows.append(
            Table2Row(
                label=label,
                average_per_1k=sum(values) / len(values) if values else 0.0,
                max_per_1k=max(values, default=0.0),
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    """Render Table II in the paper's layout."""
    return render_table(
        ["", "Average", "Max"],
        [[r.label, f"{r.average_per_1k:.2f}", f"{r.max_per_1k:.2f}"] for r in rows],
        title=(
            "Table II: kills and stalls caused by same-address load-load "
            "ordering (events per 1K uOPs)"
        ),
    )
