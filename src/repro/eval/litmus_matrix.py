"""Verdict matrices for the paper's litmus figures (Figs. 2, 5, 13, 14).

Each litmus figure in the paper is a claim of the form "model M allows /
forbids behaviour B".  This harness evaluates every claim against the
implementations and renders the full test x model matrix, flagging any
disagreement with the paper — it is the executable version of the paper's
figure captions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..engine import (
    CellFailure,
    ExecutionPolicy,
    FaultPlan,
    ModelLike,
    VerdictSpec,
    evaluate_cells,
)
from ..litmus.registry import all_tests, paper_suite
from ..litmus.test import LitmusTest
from .render import render_table

__all__ = ["VerdictCell", "litmus_matrix", "render_matrix", "conformance_failures"]

_MATRIX_MODELS = ("sc", "tso", "gam", "gam0", "arm", "wmm", "alpha_like", "plsc")


@dataclass(frozen=True)
class VerdictCell:
    """One (test, model) verdict.

    Attributes:
        test_name / model_name: coordinates.
        allowed: what the implementation says.
        expected: the paper's verdict, or ``None`` if the paper is silent.
        failure: the failure reason when the cell's batch was skipped or
            quarantined under a non-raising :class:`ExecutionPolicy`
            (``None`` for an evaluated cell; ``allowed`` is meaningless).
    """

    test_name: str
    model_name: str
    allowed: bool
    expected: Optional[bool]
    failure: Optional[str] = None

    @property
    def conforms(self) -> bool:
        """True when the implementation matches the paper (or paper silent).

        A skipped cell has no verdict to contradict the paper with, so it
        conforms vacuously — skips are reported separately, not as
        conformance failures.
        """
        if self.failure is not None:
            return True
        return self.expected is None or self.allowed == self.expected


def litmus_matrix(
    tests: Optional[Iterable[LitmusTest]] = None,
    model_names: Sequence[ModelLike] = _MATRIX_MODELS,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[ExecutionPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    evaluate=None,
) -> list[VerdictCell]:
    """Evaluate every (test, model) verdict through the batch engine.

    Defaults to the paper's figure tests against the full comparison zoo.
    ``model_names`` entries are :data:`~repro.engine.ModelLike` — registry
    names, ``.model`` paths, ``ctor:`` specs or built models — and the
    resulting cells report :func:`~repro.engine.model_display_name`.
    Candidate prefixes are shared across the model zoo per test; ``jobs``
    fans per-test batches out over a process pool and ``cache_dir``
    enables the on-disk result cache (both leave results identical).

    ``policy`` arms deadlines/retries/quarantine on the engine; under a
    non-raising policy a failed test's cells come back with
    ``VerdictCell.failure`` set and render as ``skip``.  ``fault_plan``
    is the fault-injection hook (tests only).

    ``evaluate`` swaps the engine backend — any callable with the
    :func:`~repro.engine.evaluate_cells` signature, in practice a
    :class:`~repro.serve.RemoteScheduler` bound method when the grid
    should route through a verdict server.  Results are identical by
    protocol, so rendering never knows which backend answered.
    """
    materialized = list(tests) if tests is not None else list(paper_suite())
    asked = [test for test in materialized if test.asked is not None]
    specs = [
        VerdictSpec(test, model) for test in asked for model in model_names
    ]
    if evaluate is None:
        evaluate = evaluate_cells
    verdicts = evaluate(
        specs, jobs=jobs, cache_dir=cache_dir, policy=policy,
        fault_plan=fault_plan,
    )
    cells = []
    for spec, allowed in zip(specs, verdicts):
        failure = None
        if isinstance(allowed, CellFailure):
            failure = allowed.reason
            allowed = False
        cells.append(
            VerdictCell(
                test_name=spec.test.name,
                model_name=spec.model_name,
                allowed=allowed,
                expected=spec.test.expect.get(spec.model_name),
                failure=failure,
            )
        )
    return cells


def _model_column_key(name: str) -> tuple:
    """Zoo models in zoo order, then unknown models alphabetically."""
    if name in _MATRIX_MODELS:
        return (0, _MATRIX_MODELS.index(name), "")
    return (1, 0, name)


_DEFAULT_TITLE = "Litmus verdict matrix (paper figures 2, 5, 8, 9, 13, 14)"


def render_matrix(
    cells: Sequence[VerdictCell], title: Optional[str] = None
) -> str:
    """Render the verdict matrix; cells are ``allow``/``forbid`` with ``!``
    marking disagreement with the paper and ``·`` where the paper is silent.

    ``title`` overrides the default (paper-figure) heading — generated and
    imported suites are not the paper's figures."""
    model_names = sorted({c.model_name for c in cells}, key=_model_column_key)
    test_names = list(dict.fromkeys(c.test_name for c in cells))
    by_key = {(c.test_name, c.model_name): c for c in cells}
    rows = []
    for test_name in test_names:
        row: list[object] = [test_name]
        for model_name in model_names:
            cell = by_key.get((test_name, model_name))
            if cell is None:
                row.append("-")
                continue
            if cell.failure is not None:
                row.append("skip")
                continue
            text = "allow" if cell.allowed else "forbid"
            if cell.expected is None:
                text += "·"
            elif not cell.conforms:
                text += "!"
            row.append(text)
        rows.append(row)
    legend = (
        "('·' = paper silent, '!' = disagrees with paper; "
        "asked behaviours are the non-SC outcomes of each figure)"
    )
    table = render_table(
        ["test"] + list(model_names),
        rows,
        title=title if title is not None else _DEFAULT_TITLE,
    )
    return table + "\n" + legend


def conformance_failures(cells: Iterable[VerdictCell]) -> list[VerdictCell]:
    """Cells whose verdict contradicts the paper (should always be empty)."""
    return [c for c in cells if not c.conforms]
