"""A small builder DSL for writing litmus tests compactly.

Example -- the Dekker test of Figure 2::

    b = LitmusBuilder("dekker", locations=("a", "b"), source="Figure 2")
    p0 = b.proc()
    p0.st("a", 1)
    p0.ld("r1", "b")
    p1 = b.proc()
    p1.st("b", 1)
    p1.ld("r2", "a")
    test = b.build(asked={"P0.r1": 0, "P1.r2": 0},
                   expect={"sc": False, "tso": True, "gam": True})

Address-position strings resolve to locations first, then to registers, so
``ld("r2", "r1")`` is the indirect load ``r2 = Ld [r1]``.  To use a location's
*address as data* (e.g. ``St [b] a`` in MP+addr), pass ``b.loc("a")``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from ..isa.expr import BinOp, Const, Expr, Reg, to_expr
from ..isa.instructions import (
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
    acquire_fence,
    full_fence,
    release_fence,
)
from ..isa.program import Program
from .test import LitmusTest, Outcome, OutcomeSpec, _parse_outcome

__all__ = ["LitmusBuilder", "ProcBuilder", "LOCATION_STRIDE"]

LOCATION_STRIDE = 0x100
"""Symbolic locations are laid out at multiples of this stride, keeping
addresses disjoint from the small integers litmus tests store as data."""

_FENCE_SEQUENCES = {
    "acquire": acquire_fence,
    "release": release_fence,
    "full": full_fence,
}


class ProcBuilder:
    """Accumulates one processor's instructions.  Methods chain."""

    def __init__(self, owner: "LitmusBuilder") -> None:
        self._owner = owner
        self._instrs: list[Instruction] = []
        self._labels: dict[str, int] = {}

    def _addr_expr(self, addr: Union[str, int, Expr]) -> Expr:
        if isinstance(addr, str):
            if addr in self._owner.locations:
                return Const(self._owner.locations[addr])
            return Reg(addr)
        return to_expr(addr)

    def ld(self, dst: str, addr: Union[str, int, Expr]) -> "ProcBuilder":
        """``dst = Ld [addr]``; string addresses resolve locations first."""
        self._instrs.append(Load(dst, self._addr_expr(addr)))
        return self

    def st(self, addr: Union[str, int, Expr], data: Union[str, int, Expr]) -> "ProcBuilder":
        """``St [addr] data``; string data is a register name."""
        self._instrs.append(Store(self._addr_expr(addr), to_expr(data)))
        return self

    def op(self, dst: str, expr: Union[str, int, Expr]) -> "ProcBuilder":
        """``dst = expr`` -- a reg-to-reg computation."""
        self._instrs.append(RegOp(dst, to_expr(expr)))
        return self

    def rmw(
        self,
        dst: str,
        addr: Union[str, int, Expr],
        data: Union[str, int, Expr],
    ) -> "ProcBuilder":
        """``dst = RMW [addr] data`` -- atomic read-modify-write.

        ``data`` may mention ``dst``, which denotes the loaded old value
        (``rmw("r1", "a", Reg("r1") + 1)`` is fetch-and-add).
        """
        self._instrs.append(Rmw(dst, self._addr_expr(addr), to_expr(data)))
        return self

    def fence(self, kind: str) -> "ProcBuilder":
        """Append a fence: ``"LL"/"LS"/"SL"/"SS"`` or ``"acquire"/"release"/"full"``."""
        if kind in _FENCE_SEQUENCES:
            self._instrs.extend(_FENCE_SEQUENCES[kind]())
        elif len(kind) == 2:
            self._instrs.append(Fence(kind[0], kind[1]))
        else:
            raise ValueError(f"unknown fence kind {kind!r}")
        return self

    def branch(
        self,
        cond: Union[str, int, Expr, tuple],
        target: str,
    ) -> "ProcBuilder":
        """``if (cond) goto target`` -- target must be a later :meth:`label`.

        ``cond`` may be an expression, a register name, or a 3-tuple
        ``(lhs, op, rhs)`` with ``op`` in ``== != < >=``, e.g.
        ``("r1", "==", 0)``.
        """
        if isinstance(cond, tuple):
            lhs, op, rhs = cond
            cond = BinOp(op, to_expr(lhs), to_expr(rhs))
        self._instrs.append(Branch(to_expr(cond), target))
        return self

    def label(self, name: str) -> "ProcBuilder":
        """Define a branch-target label at the current position."""
        self._labels[name] = len(self._instrs)
        return self

    def nop(self) -> "ProcBuilder":
        """Append a no-op."""
        self._instrs.append(Nop())
        return self

    def build(self) -> Program:
        """Finalize into a :class:`~repro.isa.Program`."""
        return Program(self._instrs, self._labels)


class LitmusBuilder:
    """Builds a :class:`~repro.litmus.test.LitmusTest` incrementally."""

    def __init__(
        self,
        name: str,
        locations: Sequence[str] = (),
        initial: Optional[Mapping[str, int]] = None,
        source: str = "",
        description: str = "",
    ) -> None:
        self.name = name
        self.locations: dict[str, int] = {
            loc: LOCATION_STRIDE * (i + 1) for i, loc in enumerate(locations)
        }
        self._initial = dict(initial or {})
        self.source = source
        self.description = description
        self._procs: list[ProcBuilder] = []

    def loc(self, name: str) -> Const:
        """The *address* of location ``name`` as a constant operand.

        Used when a test stores an address as data, e.g. ``St [b] a`` in
        MP+addr (Figure 13a).
        """
        return Const(self.locations[name])

    def init(self, name: str, value: Union[int, str]) -> "LitmusBuilder":
        """Set the initial value of location ``name``.

        ``value`` may be an int or another location's name (its address is
        stored, as in Figure 9 where ``m[a]`` initially holds ``&b``).
        """
        if isinstance(value, str):
            value = self.locations[value]
        self._initial[name] = value
        return self

    def proc(self) -> ProcBuilder:
        """Start the next processor's program."""
        builder = ProcBuilder(self)
        self._procs.append(builder)
        return builder

    def build(
        self,
        asked: Optional[OutcomeSpec] = None,
        expect: Optional[Mapping[str, bool]] = None,
        observed: Sequence[tuple[int, str]] = (),
    ) -> LitmusTest:
        """Finalize the test.

        Args:
            asked: the queried outcome (see :data:`OutcomeSpec`).
            expect: paper verdicts, model name -> allowed?.
            observed: extra ``(proc, reg)`` pairs to project outcomes onto.
        """
        initial_memory = {
            self.locations[name]: value for name, value in self._initial.items()
        }
        outcome = _parse_outcome(asked, self.locations) if asked is not None else None
        return LitmusTest(
            name=self.name,
            programs=tuple(p.build() for p in self._procs),
            locations=dict(self.locations),
            initial_memory=initial_memory,
            asked=outcome,
            expect=dict(expect or {}),
            observed=frozenset(observed),
            source=self.source,
            description=self.description,
        )
