"""The classic litmus suite, used to cross-check the model zoo.

These tests do not appear as figures in the paper but are standard in the
memory-model literature (herd/diy naming).  Verdicts follow from the paper's
construction: GAM allows all four load/store reorderings, enforces syntactic
dependency ordering, branch-to-store and address-to-store ordering, atomic
memory, and per-location SC.
"""

from __future__ import annotations

from .dsl import LitmusBuilder
from .test import LitmusTest

__all__ = [
    "mp",
    "mp_fences",
    "mp_ctrl",
    "dekker_full_fence",
    "lb",
    "lb_data_both",
    "lb_ctrl_both",
    "lb_addrpo_st",
    "wrc",
    "iriw",
    "iriw_fences",
    "coww",
    "corw1",
    "cowr",
    "two_plus_two_w",
    "two_plus_two_w_fences",
    "isa2",
    "three_2w",
    "dekker_half_fence",
    "rwc",
    "corr3",
    "wwc",
    "mp_acquire_release",
    "r_test",
    "rmw_swap",
    "rmw_fetch_add",
    "rmw_no_forward",
    "s_test",
    "STANDARD_TESTS",
]


def mp() -> LitmusTest:
    """Message passing with no fences: every weak model allows the stale read."""
    b = LitmusBuilder(
        "mp",
        locations=("a", "b"),
        description="Unfenced message passing; weak models allow r1=1, r2=0.",
    )
    b.proc().st("a", 1).st("b", 1)
    b.proc().ld("r1", "b").ld("r2", "a")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def mp_fences() -> LitmusTest:
    """Message passing fenced on both sides: forbidden everywhere."""
    b = LitmusBuilder(
        "mp+fences",
        locations=("a", "b"),
        description="FenceSS + FenceLL restore order; all models forbid.",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").fence("LL").ld("r2", "a")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def mp_ctrl() -> LitmusTest:
    """Message passing with only a *control* dependency between the loads.

    GAM's BrSt constraint orders branches before *stores*, not loads, so a
    control dependency does not order two loads — GAM allows the stale read
    (unlike models with control-dependency load ordering).
    """
    b = LitmusBuilder(
        "mp+ctrl",
        locations=("a", "b"),
        description="Control dependency does not order load-load in GAM.",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    p1 = b.proc()
    p1.ld("r1", "b")
    p1.branch(("r1", "==", 0), "end")
    p1.ld("r2", "a")
    p1.label("end")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "alpha_like": True,
        },
    )


def dekker_full_fence() -> LitmusTest:
    """Dekker with full fences: the FenceSL component forbids r1=r2=0."""
    b = LitmusBuilder(
        "dekker+full",
        locations=("a", "b"),
        description="Full fences restore SC for Dekker.",
    )
    b.proc().st("a", 1).fence("full").ld("r1", "b")
    b.proc().st("b", 1).fence("full").ld("r2", "a")
    return b.build(
        asked={"P0.r1": 0, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def lb() -> LitmusTest:
    """Load buffering without dependencies.

    GAM allows it (load-store reordering); WMM forbids it because WMM keeps
    load-to-store ordering precisely to dodge OOTA (Section II-C).
    """
    b = LitmusBuilder(
        "lb",
        locations=("a", "b"),
        description="Load buffering; GAM allows, WMM forbids.",
    )
    b.proc().ld("r1", "a").st("b", 1)
    b.proc().ld("r2", "b").st("a", 1)
    return b.build(
        asked={"P0.r1": 1, "P1.r2": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": False,
            "alpha_like": True,
        },
    )


def lb_data_both() -> LitmusTest:
    """Load buffering with data dependencies on both sides (OOTA shape).

    Like Figure 5 but asking for value 1; GAM's RegRAW constraint makes the
    required memory order cyclic, so GAM forbids.
    """
    b = LitmusBuilder(
        "lb+datas",
        locations=("a", "b"),
        description="LB with data dependencies; forbidden by RegRAW.",
    )
    b.proc().ld("r1", "a").st("b", "r1")
    b.proc().ld("r2", "b").st("a", "r2")
    return b.build(
        asked={"P0.r1": 1, "P1.r2": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": True,
        },
    )


def lb_ctrl_both() -> LitmusTest:
    """Load buffering with control dependencies: BrSt forbids it in GAM.

    Stores cannot issue speculatively before older branches resolve, so the
    load -> branch -> store chain is ordered on both processors.
    """
    b = LitmusBuilder(
        "lb+ctrls",
        locations=("a", "b"),
        description="LB with control dependencies; forbidden by BrSt.",
    )
    p0 = b.proc()
    p0.ld("r1", "a")
    p0.branch(("r1", "!=", 1), "skip0")
    p0.st("b", 1)
    p0.label("skip0")
    p1 = b.proc()
    p1.ld("r2", "b")
    p1.branch(("r2", "!=", 1), "skip1")
    p1.st("a", 1)
    p1.label("skip1")
    return b.build(
        asked={"P0.r1": 1, "P1.r2": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": True,
        },
    )


def lb_addrpo_st() -> LitmusTest:
    """Load buffering where only the AddrSt constraint breaks the cycle.

    P0's store is independent of ``r1`` by data and control, but an older
    load's *address* depends on ``r1``; constraint AddrSt orders the store
    after the address producer, forbidding the cycle in GAM.
    """
    b = LitmusBuilder(
        "lb+addrpo-st",
        locations=("a", "b", "c"),
        description="AddrSt (address-to-store) ordering closes the LB cycle.",
    )
    p0 = b.proc()
    p0.ld("r1", "a")
    p0.op("rt", b.loc("c") + "r1" - "r1")
    p0.ld("r2", "rt")
    p0.st("b", 1)
    b.proc().ld("r3", "b").st("a", "r3")
    return b.build(
        asked={"P0.r1": 1, "P1.r3": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "alpha_like": True,
        },
    )


def wrc() -> LitmusTest:
    """Write-to-read causality with dependencies: atomic memory forbids it."""
    b = LitmusBuilder(
        "wrc",
        locations=("a", "b"),
        description="WRC+data+addr; forbidden by atomic memory + deps.",
    )
    b.proc().st("a", 1)
    b.proc().ld("r1", "a").st("b", "r1")
    (
        b.proc()
        .ld("r2", "b")
        .op("rt", b.loc("a") + "r2" - "r2")
        .ld("r3", "rt")
    )
    return b.build(
        asked={"P1.r1": 1, "P2.r2": 1, "P2.r3": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def iriw() -> LitmusTest:
    """IRIW without fences: allowed by all models that reorder loads."""
    b = LitmusBuilder(
        "iriw",
        locations=("a", "b"),
        description="Independent reads of independent writes, unfenced.",
    )
    b.proc().st("a", 1)
    b.proc().st("b", 1)
    b.proc().ld("r1", "a").ld("r2", "b")
    b.proc().ld("r3", "b").ld("r4", "a")
    return b.build(
        asked={"P2.r1": 1, "P2.r2": 0, "P3.r3": 1, "P3.r4": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "alpha_like": True,
        },
    )


def iriw_fences() -> LitmusTest:
    """IRIW with FenceLL on the readers: *atomic* memory forbids it.

    This is the signature of atomic memory models (Section II-B): stores
    become visible to all other processors at once, so fenced readers cannot
    disagree on the order of independent writes.
    """
    b = LitmusBuilder(
        "iriw+fences",
        locations=("a", "b"),
        description="Fenced IRIW; forbidden by every atomic memory model.",
    )
    b.proc().st("a", 1)
    b.proc().st("b", 1)
    b.proc().ld("r1", "a").fence("LL").ld("r2", "b")
    b.proc().ld("r3", "b").fence("LL").ld("r4", "a")
    return b.build(
        asked={"P2.r1": 1, "P2.r2": 0, "P3.r3": 1, "P3.r4": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def coww() -> LitmusTest:
    """Coherence WW: same-address stores cannot commit out of order."""
    b = LitmusBuilder(
        "coww",
        locations=("a",),
        description="SAMemSt keeps same-address stores in order.",
    )
    b.proc().st("a", 1).st("a", 2)
    return b.build(
        asked={"a": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def corw1() -> LitmusTest:
    """Coherence RW: a load cannot read a program-younger store."""
    b = LitmusBuilder(
        "corw1",
        locations=("a",),
        description="A load never reads its own processor's future store.",
    )
    b.proc().ld("r1", "a").st("a", 1)
    return b.build(
        asked={"P0.r1": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def cowr() -> LitmusTest:
    """Coherence WR: reading a foreign store implies coherence order.

    If P0's load reads P1's ``St [a] 2``, that store is coherence-after
    ``St [a] 1``, so final memory cannot be 1.
    """
    b = LitmusBuilder(
        "cowr",
        locations=("a",),
        description="LdVal: a foreign read fixes the coherence order.",
    )
    b.proc().st("a", 1).ld("r1", "a")
    b.proc().st("a", 2)
    return b.build(
        asked={"P0.r1": 2, "a": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def two_plus_two_w() -> LitmusTest:
    """2+2W: store-store reordering lets both addresses finish 'old'."""
    b = LitmusBuilder(
        "2+2w",
        locations=("a", "b"),
        description="Unfenced 2+2W; weak models allow a=1, b=1.",
    )
    b.proc().st("a", 1).st("b", 2)
    b.proc().st("b", 1).st("a", 2)
    return b.build(
        asked={"a": 1, "b": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def two_plus_two_w_fences() -> LitmusTest:
    """2+2W with FenceSS on both processors: forbidden everywhere."""
    b = LitmusBuilder(
        "2+2w+fences",
        locations=("a", "b"),
        description="FenceSS restores SC for 2+2W.",
    )
    b.proc().st("a", 1).fence("SS").st("b", 2)
    b.proc().st("b", 1).fence("SS").st("a", 2)
    return b.build(
        asked={"a": 1, "b": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def isa2() -> LitmusTest:
    """ISA2: transitive publication through a third location.

    P0 publishes with FenceSS, P1 relays the flag by storing its loaded
    value, P2 picks it up through a data+address dependency chain.  Every
    dependency-ordering model forbids the stale read; WMM-like and
    Alpha-like (no dependency ordering) allow it.
    """
    b = LitmusBuilder(
        "isa2",
        locations=("a", "b", "c"),
        description="Transitive message passing via deps across 3 procs.",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").st("c", "r1")
    (
        b.proc()
        .ld("r2", "c")
        .op("rt", b.loc("a") + "r2" - "r2")
        .ld("r3", "rt")
    )
    return b.build(
        asked={"P1.r1": 1, "P2.r2": 1, "P2.r3": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def three_2w() -> LitmusTest:
    """3.2W: a ring of store pairs; store-store reordering closes the cycle."""
    b = LitmusBuilder(
        "3.2w",
        locations=("a", "b", "c"),
        description="Three-processor 2+2W ring; weak models allow.",
    )
    b.proc().st("a", 1).st("b", 2)
    b.proc().st("b", 1).st("c", 2)
    b.proc().st("c", 1).st("a", 2)
    return b.build(
        asked={"a": 1, "b": 1, "c": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def dekker_half_fence() -> LitmusTest:
    """Dekker fenced on one side only: still broken everywhere weak.

    Restoring SC needs *both* processors to order their store before their
    load; a single full fence cannot do it (cf. ``synthesize_fences``).
    """
    b = LitmusBuilder(
        "dekker+half",
        locations=("a", "b"),
        description="One-sided full fence does not fix Dekker.",
    )
    b.proc().st("a", 1).fence("full").ld("r1", "b")
    b.proc().st("b", 1).ld("r2", "a")
    return b.build(
        asked={"P0.r1": 0, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": True,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def rwc() -> LitmusTest:
    """RWC (read-to-write causality) with fences: atomic memory forbids it."""
    b = LitmusBuilder(
        "rwc",
        locations=("a", "b"),
        description="Fenced RWC; forbidden by every atomic memory model.",
    )
    b.proc().st("a", 1)
    b.proc().ld("r1", "a").fence("LL").ld("r2", "b")
    b.proc().st("b", 1).fence("SL").ld("r3", "a")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 0, "P2.r3": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def corr3() -> LitmusTest:
    """CoRR3: three same-address loads cannot observe a value downgrade.

    Reading 2, then 1, then 2 again would need the middle load to travel
    back in coherence order; SALdLd (and SALdLdARM — three different
    stores) forbid it, GAM0 allows it.
    """
    b = LitmusBuilder(
        "corr3",
        locations=("a",),
        description="Monotone same-address reads (per-location SC, 3 loads).",
    )
    b.proc().st("a", 1).st("a", 2)
    b.proc().ld("r1", "a").ld("r2", "a").ld("r3", "a")
    return b.build(
        asked={"P1.r1": 2, "P1.r2": 1, "P1.r3": 2},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": True,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def wwc() -> LitmusTest:
    """WWC (write-to-write causality): the dependent store cannot lose.

    P2's store address depends on reading P1's relay of P0's store, so it
    must be coherence-after ``St [a] 2``; final ``a = 2`` is forbidden by
    every model with dependency (or load-to-store) ordering.
    """
    b = LitmusBuilder(
        "wwc",
        locations=("a", "b"),
        description="Dependent store ordered after the observed store.",
    )
    b.proc().st("a", 2)
    b.proc().ld("r1", "a").st("b", "r1")
    (
        b.proc()
        .ld("r2", "b")
        .op("rt", b.loc("a") + "r2" - "r2")
        .st("rt", 1)
    )
    return b.build(
        asked={"P1.r1": 2, "P2.r2": 2, "a": 2},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": True,
        },
    )


def mp_acquire_release() -> LitmusTest:
    """Message passing with the composite release/acquire fences (§III-D1).

    Release = FenceLS;FenceSS before the flag store, acquire =
    FenceLL;FenceLS after the flag load: the portable publication idiom,
    forbidden by every model that honours fences.
    """
    b = LitmusBuilder(
        "mp+release-acquire",
        locations=("a", "b"),
        description="Composite release/acquire fences restore publication.",
    )
    b.proc().st("a", 1).fence("release").st("b", 1)
    b.proc().ld("r1", "b").fence("acquire").ld("r2", "a")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def r_test() -> LitmusTest:
    """The classic R test: only SC forbids it.

    ``b = 2`` finally and ``r1 = 0`` needs P1's load hoisted above its own
    store to a different address — the store-to-load relaxation every
    model here except SC provides (TSO's store buffer included).
    """
    b = LitmusBuilder(
        "r",
        locations=("a", "b"),
        description="R: store-to-load reordering; SC alone forbids.",
    )
    b.proc().st("a", 1).st("b", 1)
    b.proc().st("b", 2).ld("r1", "a")
    return b.build(
        asked={"b": 2, "P1.r1": 0},
        expect={
            "sc": False,
            "tso": True,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def rmw_swap() -> LitmusTest:
    """Competing atomic swaps: at most one processor reads the old value.

    The RMW extension of Section III-C: both swaps access memory
    atomically, so ``r1 = r2 = 1`` (both reading the other's store) and
    ``r1 = r2 = 0`` (both reading the initial value) are impossible under
    *every* model — atomicity is orthogonal to ordering relaxations.
    """
    b = LitmusBuilder(
        "rmw-swap",
        locations=("a",),
        description="Two atomic swaps; exactly one observes the init value.",
    )
    b.proc().rmw("r1", "a", 1)
    b.proc().rmw("r2", "a", 1)
    return b.build(
        asked={"P0.r1": 1, "P1.r2": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def rmw_fetch_add() -> LitmusTest:
    """Two fetch-and-adds never lose an update: final memory must be 2."""
    from ..isa.expr import Reg

    b = LitmusBuilder(
        "rmw-fetch-add",
        locations=("a",),
        description="Concurrent fetch-and-add; the lost update is impossible.",
    )
    b.proc().rmw("r1", "a", Reg("r1") + 1)
    b.proc().rmw("r2", "a", Reg("r2") + 1)
    return b.build(
        asked={"a": 1},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def rmw_no_forward() -> LitmusTest:
    """A load after a same-address RMW sees it (SARmwLd; no forwarding).

    The RMW writes memory at execution, so the younger load is ordered
    after it and must observe its store — even in models without any
    same-address load-load ordering.
    """
    b = LitmusBuilder(
        "rmw+ld",
        locations=("a",),
        description="RMW then load: the load observes the RMW's store.",
    )
    b.proc().rmw("r1", "a", 7).ld("r2", "a")
    b.proc().st("a", 3)
    return b.build(
        asked={"P0.r1": 0, "P0.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": False,
        },
    )


def s_test() -> LitmusTest:
    """The S test: load-to-store reordering on P1.

    Models that order loads before younger stores (SC, TSO, WMM) forbid
    ``r1 = 1`` with final ``a = 2``; GAM allows it.
    """
    b = LitmusBuilder(
        "s",
        locations=("a", "b"),
        description="S: GAM's load-store reordering is observable.",
    )
    b.proc().st("a", 2).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").st("a", 1)
    return b.build(
        asked={"P1.r1": 1, "a": 2},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": False,
            "alpha_like": True,
        },
    )


STANDARD_TESTS = {
    fn().name: fn
    for fn in (
        mp,
        mp_fences,
        mp_ctrl,
        dekker_full_fence,
        lb,
        lb_data_both,
        lb_ctrl_both,
        lb_addrpo_st,
        wrc,
        iriw,
        iriw_fences,
        coww,
        corw1,
        cowr,
        two_plus_two_w,
        two_plus_two_w_fences,
        isa2,
        three_2w,
        dekker_half_fence,
        rwc,
        corr3,
        wwc,
        mp_acquire_release,
        r_test,
        rmw_swap,
        rmw_fetch_add,
        rmw_no_forward,
        s_test,
    )
}
"""Mapping from test name to builder for the classic suite."""
