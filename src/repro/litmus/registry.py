"""Central registry of litmus tests, grouped into suites."""

from __future__ import annotations

from typing import Callable, Iterable

from .paper_tests import PAPER_TESTS
from .standard_tests import STANDARD_TESTS
from .test import LitmusTest

__all__ = ["all_tests", "get_test", "test_names", "paper_suite", "standard_suite"]

_ALL: dict[str, Callable[[], LitmusTest]] = {**PAPER_TESTS, **STANDARD_TESTS}


def test_names() -> tuple[str, ...]:
    """All registered litmus test names, paper figures first."""
    return tuple(_ALL)


def get_test(name: str) -> LitmusTest:
    """Build the litmus test registered under ``name``.

    Raises ``KeyError`` with the available names on a miss.
    """
    if name not in _ALL:
        raise KeyError(f"unknown litmus test {name!r}; available: {', '.join(_ALL)}")
    return _ALL[name]()


def all_tests() -> Iterable[LitmusTest]:
    """Yield every registered test (paper + standard suites)."""
    for builder in _ALL.values():
        yield builder()


def paper_suite() -> Iterable[LitmusTest]:
    """Yield the tests that appear as figures in the paper."""
    for builder in PAPER_TESTS.values():
        yield builder()


def standard_suite() -> Iterable[LitmusTest]:
    """Yield the classic (non-paper) tests."""
    for builder in STANDARD_TESTS.values():
        yield builder()
