"""Central registry of litmus tests, grouped into suites.

The static catalogue (paper figures + the classic suite) is merged with a
collision check — two builders registering the same name is always a bug,
never a silent overwrite — and :func:`register` lets frontends (the
``.litmus`` importer, the cycle generator) add tests at runtime under the
same rule.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Union

from .paper_tests import PAPER_TESTS
from .standard_tests import STANDARD_TESTS
from .test import LitmusTest

__all__ = [
    "all_tests",
    "get_test",
    "test_names",
    "paper_suite",
    "standard_suite",
    "register",
    "unregister",
]

TestBuilder = Callable[[], LitmusTest]


def _merged(*suites: Mapping[str, TestBuilder]) -> dict[str, TestBuilder]:
    """Merge suite maps, raising on duplicate names instead of overwriting."""
    merged: dict[str, TestBuilder] = {}
    for suite in suites:
        for name, builder in suite.items():
            if name in merged:
                raise ValueError(
                    f"duplicate litmus test name {name!r}: "
                    "two suites register the same test"
                )
            merged[name] = builder
    return merged


_ALL: dict[str, TestBuilder] = _merged(PAPER_TESTS, STANDARD_TESTS)


def register(
    test: Union[LitmusTest, TestBuilder],
    *,
    name: str = "",
    replace: bool = False,
) -> str:
    """Register a test (or zero-argument builder) under its name.

    This is the hook the litmus frontend uses: imported ``.litmus`` files
    and generated suites flow through it so name collisions fail loudly.

    Args:
        test: a built :class:`LitmusTest` or a callable returning one.
        name: registration name; defaults to the test's own name.
        replace: allow overwriting an existing registration.

    Returns:
        the name the test was registered under.

    Raises:
        ValueError: on a name collision when ``replace`` is false.
    """
    if isinstance(test, LitmusTest):
        built = test
        builder: TestBuilder = lambda built=built: built
    else:
        builder = test
        built = builder()
        if not isinstance(built, LitmusTest):
            raise TypeError(f"builder returned {type(built).__name__}, not a LitmusTest")
    key = name or built.name
    if not key:
        raise ValueError("cannot register a litmus test with an empty name")
    if key in _ALL and not replace:
        raise ValueError(
            f"litmus test name collision: {key!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    _ALL[key] = builder
    return key


def unregister(name: str) -> None:
    """Remove a runtime registration (static suite entries included)."""
    if name not in _ALL:
        raise KeyError(f"unknown litmus test {name!r}")
    del _ALL[name]


def test_names() -> tuple[str, ...]:
    """All registered litmus test names, paper figures first."""
    return tuple(_ALL)


def get_test(name: str) -> LitmusTest:
    """Build the litmus test registered under ``name``.

    Raises ``KeyError`` with the available names on a miss.
    """
    if name not in _ALL:
        raise KeyError(f"unknown litmus test {name!r}; available: {', '.join(_ALL)}")
    return _ALL[name]()


def all_tests() -> Iterable[LitmusTest]:
    """Yield every registered test (paper + standard + runtime suites)."""
    for builder in _ALL.values():
        yield builder()


def paper_suite() -> Iterable[LitmusTest]:
    """Yield the tests that appear as figures in the paper."""
    for builder in PAPER_TESTS.values():
        yield builder()


def standard_suite() -> Iterable[LitmusTest]:
    """Yield the classic (non-paper) tests."""
    for builder in STANDARD_TESTS.values():
        yield builder()
