"""Litmus-test infrastructure and the paper's test catalogue.

The ``frontend`` subpackage adds the ``.litmus`` parser/printer, the
cycle-based test generator and the mutable suite registry; its exports
are re-exported here for convenience.
"""

from .dsl import LitmusBuilder, ProcBuilder
from .frontend import (
    LitmusParseError,
    LitmusPrintError,
    SuiteRegistry,
    generate_suite,
    parse_litmus,
    print_litmus,
    resolve_suite,
)
from .registry import (
    all_tests,
    get_test,
    paper_suite,
    register,
    standard_suite,
    test_names,
    unregister,
)
from .test import LitmusTest, Outcome

__all__ = [
    "LitmusTest",
    "Outcome",
    "LitmusBuilder",
    "ProcBuilder",
    "get_test",
    "all_tests",
    "test_names",
    "paper_suite",
    "standard_suite",
    "register",
    "unregister",
    "parse_litmus",
    "print_litmus",
    "LitmusParseError",
    "LitmusPrintError",
    "SuiteRegistry",
    "generate_suite",
    "resolve_suite",
]
