"""Litmus-test infrastructure and the paper's test catalogue."""

from .dsl import LitmusBuilder, ProcBuilder
from .registry import all_tests, get_test, paper_suite, standard_suite, test_names
from .test import LitmusTest, Outcome

__all__ = [
    "LitmusTest",
    "Outcome",
    "LitmusBuilder",
    "ProcBuilder",
    "get_test",
    "all_tests",
    "test_names",
    "paper_suite",
    "standard_suite",
]
