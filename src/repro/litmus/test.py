"""Litmus tests: multi-processor program snippets with a queried behaviour.

A litmus test bundles one :class:`~repro.isa.Program` per processor, the
symbolic memory locations they share, an optional *asked outcome* (the
behaviour whose legality the paper discusses, usually a non-SC one), and the
paper's expected verdict per memory model.  Verdicts use the paper's
vocabulary: a model **allows** or **forbids** the asked outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from ..isa.program import Program

__all__ = ["Outcome", "OutcomeSpec", "LitmusTest"]


@dataclass(frozen=True, order=True)
class Outcome:
    """A (possibly partial) final state: register and memory bindings.

    Attributes:
        regs: set of ``(proc, register, value)`` triples.
        mem: set of ``(address, value)`` pairs over final memory.

    Outcomes are frozen and ordered so outcome *sets* can be compared across
    model definitions (the heart of equivalence checking).
    """

    regs: frozenset[tuple[int, str, int]] = frozenset()
    mem: frozenset[tuple[int, int]] = frozenset()

    def matches(self, final_regs: Mapping[tuple[int, str], int],
                final_mem: Mapping[int, int]) -> bool:
        """True if every binding in this outcome holds in the given state.

        ``final_mem`` lookups default to 0 for untouched addresses, matching
        the litmus convention that memory starts zeroed.
        """
        for proc, reg, value in self.regs:
            if final_regs.get((proc, reg)) != value:
                return False
        for addr, value in self.mem:
            if final_mem.get(addr, 0) != value:
                return False
        return True

    def reg_bindings(self) -> dict[tuple[int, str], int]:
        """The register bindings as a ``{(proc, reg): value}`` dict."""
        return {(proc, reg): value for proc, reg, value in self.regs}

    def __str__(self) -> str:
        parts = [f"P{proc}.{reg}={value}" for proc, reg, value in sorted(self.regs)]
        parts += [f"[{addr:#x}]={value}" for addr, value in sorted(self.mem)]
        return ", ".join(parts) if parts else "(empty)"


OutcomeSpec = Mapping[Union[str, tuple[int, str]], int]
"""Accepted outcome notations: ``{"P0.r1": 0}``, ``{(0, "r1"): 0}``, and for
memory conditions a bare location name ``{"a": 1}``."""


def _parse_outcome(spec: OutcomeSpec, locations: Mapping[str, int]) -> Outcome:
    """Parse a user-facing outcome spec into an :class:`Outcome`."""
    regs: set[tuple[int, str, int]] = set()
    mem: set[tuple[int, int]] = set()
    for key, value in spec.items():
        if isinstance(key, tuple):
            proc, reg = key
            regs.add((int(proc), reg, value))
        elif isinstance(key, str) and "." in key:
            proc_part, reg = key.split(".", 1)
            if not proc_part.startswith("P"):
                raise ValueError(f"register keys look like 'P0.r1', got {key!r}")
            regs.add((int(proc_part[1:]), reg, value))
        elif isinstance(key, str) and key in locations:
            mem.add((locations[key], value))
        else:
            raise ValueError(f"cannot parse outcome key {key!r}")
    return Outcome(frozenset(regs), frozenset(mem))


@dataclass(frozen=True)
class LitmusTest:
    """A named litmus test.

    Attributes:
        name: short identifier (e.g. ``"dekker"``, ``"mp+addr"``).
        programs: one program per processor, index = processor id.
        locations: symbolic location name -> concrete address.
        initial_memory: address -> initial value (unlisted addresses are 0).
        asked: the queried outcome, or ``None`` for exploratory tests.
        expect: paper verdicts, model name -> ``True`` (allows) / ``False``
            (forbids).  Only models the paper explicitly discusses appear.
        observed: the ``(proc, reg)`` pairs outcome enumeration projects onto;
            defaults to the registers named by ``asked``.
        source: provenance (e.g. ``"Figure 2"``).
        description: one-line summary for reports.
    """

    name: str
    programs: tuple[Program, ...]
    locations: Mapping[str, int] = field(default_factory=dict)
    initial_memory: Mapping[int, int] = field(default_factory=dict)
    asked: Optional[Outcome] = None
    expect: Mapping[str, bool] = field(default_factory=dict)
    observed: frozenset[tuple[int, str]] = frozenset()
    source: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        if not self.observed:
            observed: set[tuple[int, str]] = set()
            if self.asked is not None:
                observed = {(proc, reg) for proc, reg, _ in self.asked.regs}
            object.__setattr__(self, "observed", frozenset(observed))

    @property
    def num_procs(self) -> int:
        """Number of processors in the test."""
        return len(self.programs)

    def location_name(self, addr: int) -> str:
        """Symbolic name for ``addr`` if one exists, else hex."""
        for name, location in self.locations.items():
            if location == addr:
                return name
        return hex(addr)

    def observes_memory(self) -> bool:
        """True if the asked outcome constrains final memory."""
        return self.asked is not None and bool(self.asked.mem)

    def parse_outcome(self, spec: OutcomeSpec) -> Outcome:
        """Parse an outcome spec in the context of this test's locations."""
        return _parse_outcome(spec, self.locations)

    def __str__(self) -> str:
        lines = [f"LitmusTest {self.name!r} ({self.source})"]
        for pid, program in enumerate(self.programs):
            lines.append(f" P{pid}:")
            for i, instr in enumerate(program):
                lines.append(f"   I{i}: {instr!r}")
        if self.asked is not None:
            lines.append(f" asked: {self.asked}")
        return "\n".join(lines)
