"""Printer: render a :class:`LitmusTest` as herd-style ``.litmus`` text.

The emitted dialect is the one :mod:`repro.litmus.frontend.parser` accepts;
``parse_litmus(print_litmus(t))`` reconstructs a test equal to ``t`` and
``print_litmus`` of the reparsed test is byte-identical (the golden-file
round-trip property the test suite enforces for every registered test).

Layout::

    GAM dekker
    "Store buffering; SC forbids r1=r2=0."
    (* source: Figure 2 *)
    (* expect: gam=allow sc=forbid tso=allow *)
    { a; b; }
     P0          | P1          ;
     St [a] 1    | St [b] 1    ;
     r1 = Ld [b] | r2 = Ld [a] ;
    exists (0:r1=0 /\\ 1:r2=0)

Init entries are ``name;`` for a bare location declaration, ``name = 5;``
for an explicit initial value and ``name = &other;`` when a location
initially holds another location's address (Figure 9).  Addresses follow
the :data:`~repro.litmus.dsl.LOCATION_STRIDE` layout; a location whose
address deviates from it is declared with an ``@ 0x...`` suffix.
"""

from __future__ import annotations

from ..dsl import LOCATION_STRIDE
from ..test import LitmusTest
# The parser owns the dialect's precedence tables; sharing them keeps the
# minimal-parenthesization round trip exact by construction.
from .parser import BIN_PRECEDENCE as PRECEDENCE
from .parser import UNARY_PRECEDENCE
from ...isa.expr import BinOp, Const, Expr, Reg, UnOp
from ...isa.instructions import (
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
)

__all__ = ["print_litmus", "format_expr", "format_instruction", "LitmusPrintError"]

ARCH = "GAM"
"""Architecture tag emitted on the header line of every printed test."""


class LitmusPrintError(ValueError):
    """Raised when a test uses a construct the ``.litmus`` dialect lacks."""


def format_expr(
    expr: Expr, addr_names: dict[int, str], parent_prec: int = 0
) -> str:
    """Format an operand expression with minimal parentheses.

    ``addr_names`` maps location addresses to their symbolic names;
    constants matching a location print as the name (the parser resolves
    names back to the same constant, so the round trip is exact).
    """
    if isinstance(expr, Reg):
        if expr.name in addr_names.values():
            raise LitmusPrintError(
                f"register {expr.name!r} shadows a location name"
            )
        return expr.name
    if isinstance(expr, Const):
        if expr.value in addr_names:
            return addr_names[expr.value]
        if expr.value < 0:
            raise LitmusPrintError(
                f"negative constant {expr.value} has no unambiguous "
                "litmus spelling; use UnOp('-', Const(n))"
            )
        return str(expr.value)
    if isinstance(expr, BinOp):
        if expr.op not in PRECEDENCE:
            # '|' in particular: it is the thread column separator, so the
            # dialect cannot spell it inside an instruction cell.
            raise LitmusPrintError(
                f"operator {expr.op!r} has no .litmus spelling"
            )
        prec = PRECEDENCE[expr.op]
        left = format_expr(expr.left, addr_names, prec)
        # All operators are left-associative: a right child at the same
        # precedence needs parentheses to survive reparsing.
        right = format_expr(expr.right, addr_names, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, UnOp):
        operand = format_expr(expr.operand, addr_names, UNARY_PRECEDENCE)
        text = f"{expr.op}{operand}"
        return f"({text})" if UNARY_PRECEDENCE < parent_prec else text
    raise LitmusPrintError(f"cannot print expression {expr!r}")


def format_instruction(instr: Instruction, addr_names: dict[int, str]) -> str:
    """Format one instruction in the thread-column dialect."""
    if isinstance(instr, Load):
        return f"{instr.dst} = Ld [{format_expr(instr.addr, addr_names)}]"
    if isinstance(instr, Store):
        addr = format_expr(instr.addr, addr_names)
        data = format_expr(instr.data, addr_names)
        return f"St [{addr}] {data}"
    if isinstance(instr, Rmw):
        addr = format_expr(instr.addr, addr_names)
        data = format_expr(instr.data, addr_names)
        return f"{instr.dst} = RMW [{addr}] {data}"
    if isinstance(instr, Fence):
        return f"Fence{instr.pre}{instr.post}"
    if isinstance(instr, RegOp):
        return f"{instr.dst} = {format_expr(instr.expr, addr_names)}"
    if isinstance(instr, Branch):
        cond = format_expr(instr.cond, addr_names)
        return f"if ({cond}) goto {instr.target}"
    if isinstance(instr, Nop):
        return "Nop"
    raise LitmusPrintError(f"cannot print instruction {instr!r}")


def _default_addresses(count: int) -> list[int]:
    return [LOCATION_STRIDE * (i + 1) for i in range(count)]


def _init_entries(test: LitmusTest, addr_names: dict[int, str]) -> list[str]:
    """The init-block entries, one per location, sorted by address."""
    ordered = sorted(test.locations.items(), key=lambda item: item[1])
    defaults = _default_addresses(len(ordered))
    entries = []
    for (name, addr), default in zip(ordered, defaults):
        entry = name
        if addr != default:
            entry += f" @ {addr:#x}"
        if addr in test.initial_memory:
            value = test.initial_memory[addr]
            if value in addr_names:
                entry += f" = &{addr_names[value]}"
            elif value < 0:
                raise LitmusPrintError(
                    f"negative initial value {value} for location {name!r}"
                )
            else:
                entry += f" = {value}"
        entries.append(entry + ";")
    for addr in test.initial_memory:
        if addr not in addr_names:
            raise LitmusPrintError(
                f"initial memory at unnamed address {addr:#x}"
            )
    return entries


def _program_cells(test: LitmusTest, addr_names: dict[int, str]) -> list[list[str]]:
    """Each program as a cell column: labels get their own rows."""
    columns = []
    for program in test.programs:
        labels_at: dict[int, list[str]] = {}
        for label, index in program.labels.items():
            labels_at.setdefault(index, []).append(label)
        cells: list[str] = []
        for index, instr in enumerate(program.instructions):
            for label in sorted(labels_at.get(index, ())):
                cells.append(f"{label}:")
            cells.append(format_instruction(instr, addr_names))
        for label in sorted(labels_at.get(len(program.instructions), ())):
            cells.append(f"{label}:")
        columns.append(cells)
    return columns


def _condition(test: LitmusTest, addr_names: dict[int, str]) -> str:
    """The ``exists`` conjunction, deterministically ordered."""
    assert test.asked is not None
    parts = []
    for proc, reg, value in sorted(test.asked.regs):
        parts.append(f"{proc}:{reg}={_value_text(value, addr_names)}")
    for addr, value in sorted(test.asked.mem):
        if addr not in addr_names:
            raise LitmusPrintError(f"condition on unnamed address {addr:#x}")
        parts.append(f"{addr_names[addr]}={_value_text(value, addr_names)}")
    return " /\\ ".join(parts)


def _value_text(value: int, addr_names: dict[int, str]) -> str:
    if value in addr_names:
        return f"&{addr_names[value]}"
    if value < 0:
        raise LitmusPrintError(f"negative condition value {value}")
    return str(value)


def print_litmus(test: LitmusTest) -> str:
    """Render ``test`` as ``.litmus`` text (ends with a newline)."""
    addr_names = {
        addr: name for name, addr in sorted(test.locations.items())
    }
    if len(addr_names) != len(test.locations):
        raise LitmusPrintError("two locations share one address")
    lines = [f"{ARCH} {test.name}"]
    if test.description:
        if '"' in test.description:
            raise LitmusPrintError("description may not contain double quotes")
        lines.append(f'"{test.description}"')
    if test.source:
        lines.append(f"(* source: {test.source} *)")
    if test.expect:
        verdicts = " ".join(
            f"{model}={'allow' if allowed else 'forbid'}"
            for model, allowed in sorted(test.expect.items())
        )
        lines.append(f"(* expect: {verdicts} *)")
    lines.append("{ " + " ".join(_init_entries(test, addr_names)) + " }")

    columns = _program_cells(test, addr_names)
    height = max((len(cells) for cells in columns), default=0)
    for cells in columns:
        cells.extend([""] * (height - len(cells)))
    headers = [f"P{i}" for i in range(len(columns))]
    widths = [
        max(len(headers[i]), *(len(c) for c in cells)) if cells else len(headers[i])
        for i, cells in enumerate(columns)
    ]
    lines.append(
        " " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " ;"
    )
    for row in range(height):
        cells = [columns[i][row].ljust(widths[i]) for i in range(len(columns))]
        lines.append(" " + " | ".join(cells) + " ;")

    default_observed = frozenset(
        (proc, reg) for proc, reg, _ in (test.asked.regs if test.asked else ())
    )
    if test.observed != default_observed:
        observed = "; ".join(
            f"{proc}:{reg}" for proc, reg in sorted(test.observed)
        )
        lines.append(f"observed [{observed}]")
    if test.asked is not None:
        lines.append(f"exists ({_condition(test, addr_names)})")
    return "\n".join(lines) + "\n"
