"""Mutable suite registry and suite-spec resolution for the CLI.

:class:`SuiteRegistry` layers runtime registrations — parsed ``.litmus``
files, generated suites, programmatically built tests — over the static
catalogue, reusing :func:`repro.litmus.registry.register` so name
collisions fail loudly everywhere.

:func:`resolve_suite` turns the CLI's ``--suite`` argument into a test
list.  Accepted specs::

    paper | standard | all        the static catalogues
    gen:edges=4[,size=50][,seed=7]  a generated suite (deterministic)
    rand:n=50[,seed=7,...]        a seeded randprog corpus (deterministic)
    path/to/test.litmus           one parsed file
    path/to/dir/                  every *.litmus file in a directory

so ``repro matrix --suite gen:edges=4 --jobs 4`` pushes an unbounded,
systematically generated test space through the PR-1 batch engine,
``repro hunt --oracle operational --suite rand:n=200`` fuzzes the
abstract machines against the axioms over an addressable random corpus,
and ``repro matrix --suite ./mytests/`` does the same for external
corpora.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional, Sequence

from .. import registry
from ..test import LitmusTest
from .gen import generate_suite
from .parser import LitmusParseError, parse_litmus_file

__all__ = [
    "SuiteRegistry",
    "resolve_suite",
    "parse_gen_spec",
    "parse_rand_spec",
    "shard_suite",
    "STATIC_SUITES",
]

STATIC_SUITES = ("paper", "standard", "all")
"""Suite names resolved against the static catalogue."""


class SuiteRegistry:
    """Named litmus suites layered over the static registry.

    Tests added here are grouped into named suites (``"imported"``,
    ``"generated"``, ...) and — unless ``attach=False`` — also pushed into
    the global registry through its collision-checked :func:`register`
    hook, so every name-based lookup (``repro show``, ``repro check``)
    sees them for the rest of the process.
    """

    def __init__(self, attach: bool = True) -> None:
        self._suites: dict[str, dict[str, LitmusTest]] = {}
        self._attach = attach

    def register(
        self, test: LitmusTest, suite: str = "custom", replace: bool = False
    ) -> str:
        """Add one test to ``suite``; collisions raise ``ValueError``."""
        if not replace and any(
            test.name in tests for tests in self._suites.values()
        ):
            raise ValueError(
                f"litmus test name collision: {test.name!r} is already "
                "registered in this suite registry"
            )
        if self._attach:
            registry.register(test, replace=replace)
        self._suites.setdefault(suite, {})[test.name] = test
        return test.name

    def register_all(
        self,
        tests: Iterable[LitmusTest],
        suite: str = "custom",
        replace: bool = False,
    ) -> list[str]:
        """Register a batch of tests, returning their names."""
        return [self.register(test, suite=suite, replace=replace) for test in tests]

    def load_path(self, path: str, suite: str = "imported") -> list[str]:
        """Register ``path`` — one ``.litmus`` file or a directory of them.

        Returns the registered names.  Raises :class:`LitmusParseError`
        for unparsable input and ``ValueError`` on name collisions.
        """
        return self.register_all(load_litmus_path(path), suite=suite)

    def suites(self) -> tuple[str, ...]:
        """The registered suite names, in registration order."""
        return tuple(self._suites)

    def names(self, suite: Optional[str] = None) -> tuple[str, ...]:
        """Test names in one suite (or across all of them)."""
        if suite is not None:
            return tuple(self._suites.get(suite, {}))
        return tuple(
            name for tests in self._suites.values() for name in tests
        )

    def tests(self, suite: Optional[str] = None) -> list[LitmusTest]:
        """The tests of one suite (or all of them), in registration order."""
        if suite is not None:
            return list(self._suites.get(suite, {}).values())
        return [test for tests in self._suites.values() for test in tests.values()]

    def get(self, name: str) -> LitmusTest:
        """Look a test up by name, falling back to the static registry."""
        for tests in self._suites.values():
            if name in tests:
                return tests[name]
        return registry.get_test(name)


def load_litmus_path(path: str) -> list[LitmusTest]:
    """Parse ``path`` (a ``.litmus`` file or a directory of them).

    Duplicate test names within a directory raise
    :class:`LitmusParseError`: every downstream consumer (verdict
    matrices, the hunt pipeline) keys results by test name, so a
    collision would silently drop one of the tests.
    """
    if os.path.isdir(path):
        entries = sorted(
            entry for entry in os.listdir(path) if entry.endswith(".litmus")
        )
        if not entries:
            raise LitmusParseError(f"no .litmus files in directory {path!r}")
        tests = [
            parse_litmus_file(os.path.join(path, entry)) for entry in entries
        ]
        seen: dict[str, str] = {}
        for test, entry in zip(tests, entries):
            if test.name in seen:
                raise LitmusParseError(
                    f"duplicate test name {test.name!r} in directory "
                    f"{path!r} (files {seen[test.name]!r} and {entry!r})"
                )
            seen[test.name] = entry
        return tests
    return [parse_litmus_file(path)]


def parse_gen_spec(spec: str) -> dict:
    """Parse ``gen:key=value,...`` into :func:`generate_suite` kwargs.

    Accepted keys: ``edges`` (cycle budget), ``size`` (suite cap), and
    ``seed`` (pre-cap shuffle).  ``gen`` alone means the defaults.
    """
    body = spec[len("gen"):].lstrip(":")
    kwargs: dict = {}
    known = {"edges": "max_edges", "size": "size", "seed": "seed"}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        if key not in known or not eq:
            raise ValueError(
                f"bad generator spec entry {item!r}; "
                f"expected gen:edges=N[,size=M][,seed=S]"
            )
        try:
            kwargs[known[key]] = int(value)
        except ValueError:
            raise ValueError(
                f"generator spec value for {key!r} must be an integer, "
                f"got {value!r}"
            ) from None
    return kwargs


def parse_rand_spec(spec: str) -> dict:
    """Parse ``rand:key=value,...`` into randprog corpus parameters.

    Accepted keys: ``n`` (corpus size), ``seed``, and the generator
    knobs ``procs`` / ``instrs`` / ``locs``.  ``rand`` alone means the
    defaults (``n=10, seed=0`` with the stock
    :class:`~repro.equivalence.randprog.RandomProgramConfig`).
    """
    body = spec[len("rand"):].lstrip(":")
    kwargs: dict = {}
    known = {
        "n": "count",
        "seed": "seed",
        "procs": "num_procs",
        "instrs": "max_instrs",
        "locs": "num_locations",
    }
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        if key not in known or not eq:
            raise ValueError(
                f"bad randprog spec entry {item!r}; "
                f"expected rand:n=N[,seed=S][,procs=P][,instrs=I][,locs=L]"
            )
        try:
            kwargs[known[key]] = int(value)
        except ValueError:
            raise ValueError(
                f"randprog spec value for {key!r} must be an integer, "
                f"got {value!r}"
            ) from None
    return kwargs


def _random_corpus(spec: str) -> list[LitmusTest]:
    """Materialize a ``rand:`` spec — deterministic per (seed, knobs)."""
    from ...equivalence.randprog import RandomProgramConfig, random_suite

    params = parse_rand_spec(spec)
    count = params.pop("count", 10)
    seed = params.pop("seed", 0)
    config = RandomProgramConfig(**params) if params else None
    return random_suite(count, seed=seed, config=config)


def shard_suite(
    tests: Sequence[LitmusTest], shard_index: int, num_shards: int
) -> list[LitmusTest]:
    """Deterministic round-robin partition: shard ``i`` gets ``tests[i::n]``.

    The partition is a pure function of the (already deterministic) suite
    order, so re-resolving the same suite spec always reproduces the same
    shards — the property campaign resumption and future multi-machine
    sharding rely on.  Round-robin keeps shard sizes within one test of
    each other, and concatenating ``shard_suite(t, i, n)`` for ``i`` in
    ``0..n-1`` covers every test exactly once.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if not 0 <= shard_index < num_shards:
        raise ValueError(
            f"shard_index must be in [0, {num_shards}), got {shard_index}"
        )
    return list(tests[shard_index::num_shards])


def resolve_suite(spec: str) -> list[LitmusTest]:
    """Resolve a CLI ``--suite`` spec to a concrete test list."""
    if spec == "paper":
        return list(registry.paper_suite())
    if spec == "standard":
        return list(registry.standard_suite())
    if spec == "all":
        return list(registry.all_tests())
    if spec == "gen" or spec.startswith("gen:"):
        return generate_suite(**parse_gen_spec(spec))
    if spec == "rand" or spec.startswith("rand:"):
        return _random_corpus(spec)
    if os.path.exists(spec):
        return load_litmus_path(spec)
    raise KeyError(
        f"unknown suite {spec!r}; expected one of {', '.join(STATIC_SUITES)}, "
        "a gen:... or rand:... spec, or a .litmus file/directory path"
    )
