"""diy-style cycle-based litmus test generator.

Following the diy family of tools (Alglave et al., "Herding Cats"), a
litmus test is synthesized from a *critical cycle*: a cyclic sequence of
relaxation edges over memory events.  If every edge in the cycle were
enforced as an ordering, the cycle would be contradictory — so the asked
outcome (which witnesses the whole cycle) is forbidden under SC and probes
exactly which relaxations a weaker model provides.

Edge vocabulary
===============

======== ===== ===== ========== ==================================================
edge     src   dst   scope      lowering
======== ===== ===== ========== ==================================================
rfe      W     R     external   reads-from: the read observes the store's value
fre      R     W     external   from-read: the read observes a co-earlier store
coe      W     W     external   coherence: final memory pins the co order
porr     R     R     internal-d plain program order, next location
porw     R     W     internal-d plain program order, next location
powr     W     R     internal-d plain program order, next location
poww     W     W     internal-d plain program order, next location
addrr    R     R     internal-d artificial address dependency ``loc + rS - rS``
addrw    R     W     internal-d artificial address dependency on a store address
data     R     W     internal-d artificial data dependency ``v + rS - rS``
ctrlr    R     R     internal-d branch on the read's value before the load
ctrlw    R     W     internal-d branch on the read's value guarding the store
fencell  R     R     internal-d ``FenceLL`` between the events
fencels  R     W     internal-d ``FenceLS`` between the events
fencesl  W     R     internal-d ``FenceSL`` between the events
fencess  W     W     internal-d ``FenceSS`` between the events
acqrr    R     R     internal-d acquire fence (``FenceLL;FenceLS``)
acqrw    R     W     internal-d acquire fence (``FenceLL;FenceLS``)
relrw    R     W     internal-d release fence (``FenceLS;FenceSS``)
relww    W     W     internal-d release fence (``FenceLS;FenceSS``)
posrr    R     R     internal-s program order, same location (the CoRR edge)
rfi      W     R     internal-s forwarding: the read observes the older store
fri      R     W     internal-s the read observes a store co-before the younger one
======== ===== ===== ========== ==================================================

External edges cross to a fresh processor and stay on the same location;
``internal-d`` edges stay on the processor and move to the next location;
``internal-s`` edges stay on both.  A well-formed cycle needs at least two
external edges (to return to the first processor), zero or at least two
location-advancing edges (to return to the first location; exactly one
cannot close), and at least one program-order edge.  The shortest cycles
are therefore ``posrr+fre+rfe`` (CoRR) at three edges and the SB / MP /
LB / S / R / 2+2W families at four.

Value assignment follows diy.  Cutting the cycle at program-order edges
leaves *communication chains* (events joined by rf/fr/co edges, all on one
location).  Stores take values 1, 2, ... per location in chain-walk
order; a read observes its rf source's value, or the initial 0 when a
program-order edge enters it.  Each com edge then points forward in the
per-location numbering, so observing the final memory value (emitted
whenever a location has two stores) pins the whole coherence order; more
than two stores per location would be under-constrained and such cycles
are rejected.  Cycles are also rejected when two same-processor events
touch one location without an ``internal-s`` edge joining them, and when a
read with an older same-address store in program order is not fed by
``rfi`` — both would smuggle in forwarding/coherence constraints the
value assignment does not model.

Everything is deterministic: enumeration follows a fixed vocabulary
order, each cycle is kept only in its canonical rotation, structurally
identical tests are deduplicated by content, and an optional ``seed``
applies a seeded shuffle before the ``size`` cap — the same
``(max_edges, size, seed)`` triple always yields the same suite.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..dsl import LitmusBuilder
from ..test import LitmusTest
from ...isa.expr import Const, Reg

__all__ = ["Edge", "VOCABULARY", "enumerate_cycles", "cycle_to_test", "generate_suite"]

MIN_CYCLE_EDGES = 3
"""Shortest well-formed critical cycle (CoRR: ``posrr+fre+rfe``)."""

_MAX_STORES_PER_LOCATION = 2
"""Coherence per location is pinned by one final-value observation, which
totally orders at most two stores."""

_LOCATION_NAMES = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class Edge:
    """One relaxation edge of the vocabulary table above.

    Attributes:
        name: canonical lowercase name (also used in generated test names).
        src / dst: event types the edge connects (``"R"`` or ``"W"``).
        external: crosses processors (same location) when true.
        advances: moves to the next location when true (``internal-d``).
        po: a program-order edge (cycle cut point for value assignment);
            communication edges (rf/fr/co, external or internal) are not.
        kind: lowering discriminator (``rf``/``fr``/``co``/``po``/``addr``/
            ``data``/``ctrl``/``fence``).
        fence: fence spelling for ``kind == "fence"`` edges (a key of the
            litmus DSL's fence table: ``LL``/``LS``/``SL``/``SS``/
            ``acquire``/``release``).
    """

    name: str
    src: str
    dst: str
    external: bool
    advances: bool
    po: bool
    kind: str
    fence: str = ""

    @property
    def internal_same(self) -> bool:
        """True for ``internal-s`` edges (same processor, same location)."""
        return not self.external and not self.advances


def _external(name: str, src: str, dst: str, kind: str) -> Edge:
    return Edge(name, src, dst, True, False, False, kind)


def _internal_d(name: str, src: str, dst: str, kind: str, fence: str = "") -> Edge:
    return Edge(name, src, dst, False, True, True, kind, fence)


VOCABULARY: dict[str, Edge] = {
    edge.name: edge
    for edge in (
        _external("rfe", "W", "R", "rf"),
        _external("fre", "R", "W", "fr"),
        _external("coe", "W", "W", "co"),
        _internal_d("porr", "R", "R", "po"),
        _internal_d("porw", "R", "W", "po"),
        _internal_d("powr", "W", "R", "po"),
        _internal_d("poww", "W", "W", "po"),
        _internal_d("addrr", "R", "R", "addr"),
        _internal_d("addrw", "R", "W", "addr"),
        _internal_d("data", "R", "W", "data"),
        _internal_d("ctrlr", "R", "R", "ctrl"),
        _internal_d("ctrlw", "R", "W", "ctrl"),
        _internal_d("fencell", "R", "R", "fence", "LL"),
        _internal_d("fencels", "R", "W", "fence", "LS"),
        _internal_d("fencesl", "W", "R", "fence", "SL"),
        _internal_d("fencess", "W", "W", "fence", "SS"),
        _internal_d("acqrr", "R", "R", "fence", "acquire"),
        _internal_d("acqrw", "R", "W", "fence", "acquire"),
        _internal_d("relrw", "R", "W", "fence", "release"),
        _internal_d("relww", "W", "W", "fence", "release"),
        Edge("posrr", "R", "R", False, False, True, "po"),
        Edge("rfi", "W", "R", False, False, False, "rf"),
        Edge("fri", "R", "W", False, False, False, "fr"),
    )
}


def cycle_name(edges: Sequence[Edge]) -> str:
    """The deterministic test name of a cycle: its edge names joined."""
    return "+".join(edge.name for edge in edges)


def _canonical_rotation(edges: tuple[Edge, ...]) -> tuple[Edge, ...]:
    """The canonical representative among a cycle's valid rotations.

    A rotation is valid when its *last* edge is external (the event
    sequence then starts on a fresh processor at a segment boundary); the
    lexicographically smallest name sequence among valid rotations is the
    canonical form, so rotated duplicates collapse to one cycle.
    """
    n = len(edges)
    candidates = [
        edges[start:] + edges[:start]
        for start in range(n)
        if edges[start - 1].external
    ]
    return min(candidates, key=cycle_name)


def _placements(edges: tuple[Edge, ...]) -> tuple[list[int], list[int]]:
    """(processor, location) per event; event ``i`` precedes ``edges[i]``."""
    procs = [0]
    locations = [0]
    n_loc = max(sum(1 for edge in edges if edge.advances), 1)
    for i in range(len(edges) - 1):
        procs.append(procs[-1] + 1 if edges[i].external else procs[-1])
        locations.append(
            (locations[-1] + 1) % n_loc if edges[i].advances else locations[-1]
        )
    return procs, locations


def _well_formed(edges: tuple[Edge, ...]) -> bool:
    if sum(1 for edge in edges if edge.external) < 2:
        return False
    advancing = sum(1 for edge in edges if edge.advances)
    if advancing == 1:  # a lone location change cannot return to location 0
        return False
    if not any(edge.po for edge in edges):  # pure-com cycles are contradictory
        return False
    if edges != _canonical_rotation(edges):
        return False

    n = len(edges)
    procs, locations = _placements(edges)
    types = [edges[i].src for i in range(n)]

    # Per-location store budget (coherence is pinned by one final value).
    for location in set(locations):
        stores = sum(
            1 for i in range(n) if types[i] == "W" and locations[i] == location
        )
        if stores > _MAX_STORES_PER_LOCATION:
            return False

    # Same-processor events on one location must form a contiguous chain
    # joined by internal-s edges; anything else smuggles in coherence or
    # forwarding constraints the value assignment does not model.
    groups: dict[tuple[int, int], list[int]] = {}
    for i in range(n):
        groups.setdefault((procs[i], locations[i]), []).append(i)
    for members in groups.values():
        for earlier, later in zip(members, members[1:]):
            if later != earlier + 1 or not edges[earlier].internal_same:
                return False

    # A read with an older same-address store in program order must forward
    # from it, i.e. be entered by rfi (the group check already makes the
    # store the immediate predecessor).
    for i in range(n):
        if types[i] != "R":
            continue
        has_older_store = any(
            types[j] == "W"
            and procs[j] == procs[i]
            and locations[j] == locations[i]
            for j in range(i)
        )
        if has_older_store and edges[i - 1].name != "rfi":
            return False
    return True


def enumerate_cycles(max_edges: int = 4) -> Iterator[tuple[Edge, ...]]:
    """Yield every well-formed cycle of up to ``max_edges`` edges.

    Cycles come out in deterministic order (shorter first, then
    lexicographic over edge names) and each appears exactly once, in its
    canonical rotation.
    """
    if max_edges < MIN_CYCLE_EDGES:
        raise ValueError(
            f"cycles need at least {MIN_CYCLE_EDGES} edges, got budget {max_edges}"
        )
    ordered = [VOCABULARY[name] for name in sorted(VOCABULARY)]

    def extend(prefix: tuple[Edge, ...], length: int) -> Iterator[tuple[Edge, ...]]:
        if len(prefix) == length:
            if prefix[-1].dst == prefix[0].src and _well_formed(prefix):
                yield prefix
            return
        for edge in ordered:
            if edge.src != prefix[-1].dst:
                continue
            yield from extend(prefix + (edge,), length)

    for length in range(MIN_CYCLE_EDGES, max_edges + 1):
        for first in ordered:
            yield from extend((first,), length)


@dataclass(frozen=True)
class _Event:
    """One memory event of a cycle, fully placed and valued."""

    index: int
    type: str  # "R" or "W"
    proc: int
    location: int
    value: int = 0  # store value, or the value a read must observe


def _place_events(edges: tuple[Edge, ...]) -> list[_Event]:
    """Assign processors, locations and values to the cycle's events.

    Cutting the cycle at program-order edges leaves communication chains;
    walking them in cycle order numbers each location's stores and settles
    every read's observed value (rf source, or the initial 0).
    """
    n = len(edges)
    types = [edges[i].src for i in range(n)]
    procs, locations = _placements(edges)

    cut_positions = [i for i, edge in enumerate(edges) if edge.po]
    values = [0] * n
    store_counts: dict[int, int] = {}
    for k, position in enumerate(cut_positions):
        start = (position + 1) % n
        stop = cut_positions[(k + 1) % len(cut_positions)]
        j = start
        while True:
            if types[j] == "W":
                store_counts[locations[j]] = store_counts.get(locations[j], 0) + 1
                values[j] = store_counts[locations[j]]
            elif edges[j - 1].kind == "rf":
                values[j] = values[j - 1]
            else:
                values[j] = 0
            if j == stop:
                break
            j = (j + 1) % n
    return [
        _Event(i, types[i], procs[i], locations[i], values[i]) for i in range(n)
    ]


def cycle_to_test(edges: Sequence[Edge], name: str = "") -> LitmusTest:
    """Lower one well-formed cycle to a concrete :class:`LitmusTest`."""
    edges = tuple(edges)
    events = _place_events(edges)
    n_loc = max(event.location for event in events) + 1
    if n_loc > len(_LOCATION_NAMES):
        raise ValueError(f"cycle needs {n_loc} locations; at most 26 supported")
    location_names = [_LOCATION_NAMES[i] for i in range(n_loc)]

    builder = LitmusBuilder(
        name or cycle_name(edges),
        locations=location_names,
        source="cycle generator",
        description=f"Critical cycle {cycle_name(edges)}.",
    )

    # Registers: per processor, reads take r1, r2, ... in program order.
    registers: dict[int, str] = {}
    counters: dict[int, int] = {}
    for event in events:
        if event.type == "R":
            counters[event.proc] = counters.get(event.proc, 0) + 1
            registers[event.index] = f"r{counters[event.proc]}"

    num_procs = max(event.proc for event in events) + 1
    for proc_id in range(num_procs):
        proc = builder.proc()
        segment = [event for event in events if event.proc == proc_id]
        needs_end_label = False
        for event in segment:
            incoming = edges[event.index - 1]
            location = location_names[event.location]
            addr = location
            if not incoming.external:
                if incoming.kind == "fence":
                    proc.fence(incoming.fence)
                elif incoming.kind == "addr":
                    source_reg = Reg(registers[events[event.index - 1].index])
                    addr = builder.loc(location) + source_reg - source_reg
                elif incoming.kind == "ctrl":
                    source_reg = Reg(registers[events[event.index - 1].index])
                    expected = events[event.index - 1].value
                    proc.branch((source_reg, "!=", expected), "end")
                    needs_end_label = True
            if event.type == "R":
                proc.ld(registers[event.index], addr)
            elif incoming.kind == "data" and not incoming.external:
                source_reg = Reg(registers[events[event.index - 1].index])
                proc.st(addr, Const(event.value) + source_reg - source_reg)
            else:
                proc.st(addr, event.value)
        if needs_end_label:
            proc.label("end")

    asked: dict = {}
    for event in events:
        if event.type == "R":
            asked[(event.proc, registers[event.index])] = event.value
    store_values: dict[int, list[int]] = {}
    for event in events:
        if event.type == "W":
            store_values.setdefault(event.location, []).append(event.value)
    for location, values in store_values.items():
        if len(values) >= 2:
            asked[location_names[location]] = max(values)
    return builder.build(asked=asked)


def _content_key(test: LitmusTest) -> tuple:
    """Structural identity of a test, ignoring its name and description."""
    asked = None
    if test.asked is not None:
        asked = (tuple(sorted(test.asked.regs)), tuple(sorted(test.asked.mem)))
    return (
        tuple(tuple(repr(instr) for instr in program) for program in test.programs),
        tuple(sorted(test.locations.items())),
        tuple(sorted(test.initial_memory.items())),
        asked,
    )


def generate_suite(
    max_edges: int = 4,
    size: Optional[int] = None,
    seed: Optional[int] = None,
) -> list[LitmusTest]:
    """Enumerate, lower and deduplicate a generated litmus suite.

    Args:
        max_edges: cycle-length budget (>= 3).
        size: keep at most this many tests (all of them when ``None``).
        seed: deterministic shuffle applied before the ``size`` cap; with
            ``None`` the enumeration order is kept.

    Returns:
        the suite, deduplicated both by canonical cycle and by structural
        test content; the same arguments always return the same suite.
    """
    tests: list[LitmusTest] = []
    seen: set[tuple] = set()
    for cycle in enumerate_cycles(max_edges):
        test = cycle_to_test(cycle)
        key = _content_key(test)
        if key in seen:
            continue
        seen.add(key)
        tests.append(test)
    if seed is not None:
        random.Random(seed).shuffle(tests)
    if size is not None:
        tests = tests[:size]
    return tests
