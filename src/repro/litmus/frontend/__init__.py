"""Litmus frontend: ``.litmus`` parser/printer, cycle generator, suites.

The scenario-diversity seam of the repository: instead of the fixed
hand-coded catalogue, tests can be read from herd-style ``.litmus`` text
(:mod:`.parser`), written back out (:mod:`.printer`), synthesized from
critical cycles over a relaxation-edge vocabulary (:mod:`.gen`), and
organized into mutable, collision-checked suites that the batch engine
and the CLI consume (:mod:`.suite`).
"""

from __future__ import annotations

from .gen import VOCABULARY, cycle_to_test, enumerate_cycles, generate_suite
from .parser import LitmusParseError, parse_litmus, parse_litmus_file
from .printer import LitmusPrintError, print_litmus
from .suite import (
    STATIC_SUITES,
    SuiteRegistry,
    load_litmus_path,
    resolve_suite,
    shard_suite,
)

__all__ = [
    "VOCABULARY",
    "cycle_to_test",
    "enumerate_cycles",
    "generate_suite",
    "LitmusParseError",
    "parse_litmus",
    "parse_litmus_file",
    "LitmusPrintError",
    "print_litmus",
    "STATIC_SUITES",
    "SuiteRegistry",
    "load_litmus_path",
    "resolve_suite",
    "shard_suite",
]
