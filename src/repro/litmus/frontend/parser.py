"""Parser for a herd7-compatible subset of the ``.litmus`` format.

The accepted dialect (exactly what :mod:`.printer` emits, plus a little
slack in whitespace and synonym spellings)::

    <ARCH> <name>                     header: architecture tag + test name
    "<description>"                   optional one-line description
    (* source: ... *)                 optional metadata comments
    (* expect: gam=allow sc=forbid *) optional paper verdicts
    { a; b = 1; c = &a; }             init: declarations + initial values
     P0          | P1          ;      thread header row
     St [a] 1    | r1 = Ld [a] ;      one instruction (or label) per cell
    observed [0:r1; 1:r2]             optional extra observed registers
    exists (0:r1=0 /\\ a=1)           optional asked outcome

Instructions use this repository's ISA spelling: ``r1 = Ld [addr]``,
``St [addr] data``, ``r1 = RMW [addr] data``, ``FenceXY``, ``r1 = expr``,
``if (cond) goto label``, ``Nop``, and ``label:`` cells.  Operand
expressions support ``| ^ & == != < >= + - *``, unary ``- ~ !``, decimal
and hex integers, and identifiers (resolved to locations first, then to
registers — the same rule as :class:`~repro.litmus.dsl.LitmusBuilder`).

Locations are laid out at :data:`~repro.litmus.dsl.LOCATION_STRIDE`
multiples in declaration order; an ``@ 0x...`` suffix overrides the
address.  ``~exists`` and ``forbidden`` are accepted as synonyms of
``exists`` (the per-model verdicts live in the ``expect`` metadata, not in
the quantifier).  Errors raise :class:`LitmusParseError` with the
offending line number.
"""

from __future__ import annotations

import re
from typing import Optional

from ..dsl import LOCATION_STRIDE
from ..test import LitmusTest, Outcome
from ...isa.expr import BinOp, Const, Expr, Reg, UnOp
from ...isa.instructions import (
    Branch,
    Fence,
    Instruction,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
)
from ...isa.program import Program, ProgramError

__all__ = ["parse_litmus", "parse_litmus_file", "LitmusParseError"]


class LitmusParseError(ValueError):
    """A syntax or consistency error in ``.litmus`` input.

    Attributes:
        line: 1-based line number of the offending input line (0 when the
            error is not tied to one line, e.g. truncated input).
    """

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)
        self.line = line


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>0[xX][0-9a-fA-F]+|\d+)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>==|!=|>=|/\\|[-+*^&|<>~!()\[\]=:;@,])"
    r")"
)


def _tokenize(text: str, line: int) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise LitmusParseError(f"unexpected character {rest[0]!r}", line)
        tokens.append(match.group().strip())
        pos = match.end()
    return tokens


class _Tokens:
    """A token cursor with litmus-flavoured error reporting."""

    def __init__(self, tokens: list[str], line: int) -> None:
        self.tokens = tokens
        self.line = line
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self, what: str = "token") -> str:
        token = self.peek()
        if token is None:
            raise LitmusParseError(f"expected {what}, found end of line", self.line)
        self.pos += 1
        return token

    def expect(self, literal: str) -> None:
        token = self.next(repr(literal))
        if token != literal:
            raise LitmusParseError(
                f"expected {literal!r}, found {token!r}", self.line
            )

    def done(self) -> bool:
        return self.pos >= len(self.tokens)


BIN_PRECEDENCE = {
    "^": 2,
    "&": 3,
    "==": 4,
    "!=": 4,
    "<": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
}
"""Binary-operator precedence of the dialect, loosest first.  The printer
imports this table so the two sides can never disagree on minimal
parenthesization.  Bitwise-or is deliberately absent: ``|`` is the thread
column separator, so the dialect cannot spell it inside a cell."""

UNARY_PRECEDENCE = 7
_UNARY_OPS = ("-", "~", "!")
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_INT_RE = re.compile(r"(0[xX][0-9a-fA-F]+|\d+)\Z")


def _parse_expr(tokens: _Tokens, locations: dict[str, int], min_prec: int = 1) -> Expr:
    """Precedence-climbing expression parser (mirrors the printer)."""
    expr = _parse_unary(tokens, locations)
    while True:
        op = tokens.peek()
        if op is None or op not in BIN_PRECEDENCE:
            return expr
        prec = BIN_PRECEDENCE[op]
        if prec < min_prec:
            return expr
        tokens.next()
        right = _parse_expr(tokens, locations, prec + 1)
        expr = BinOp(op, expr, right)


def _parse_unary(tokens: _Tokens, locations: dict[str, int]) -> Expr:
    token = tokens.peek()
    if token in _UNARY_OPS:
        tokens.next()
        return UnOp(token, _parse_unary(tokens, locations))
    return _parse_atom(tokens, locations)


def _parse_atom(tokens: _Tokens, locations: dict[str, int]) -> Expr:
    token = tokens.next("an operand")
    if token == "(":
        expr = _parse_expr(tokens, locations)
        tokens.expect(")")
        return expr
    if _INT_RE.match(token):
        return Const(int(token, 0))
    if _NAME_RE.match(token):
        if token in locations:
            return Const(locations[token])
        return Reg(token)
    raise LitmusParseError(f"expected an operand, found {token!r}", tokens.line)


def _parse_instruction(tokens: _Tokens, locations: dict[str, int]) -> Instruction:
    token = tokens.next("an instruction")
    if token == "Nop" and tokens.done():
        return Nop()
    if token.startswith("Fence") and len(token) == 7:
        pre, post = token[5], token[6]
        if pre not in "LS" or post not in "LS":
            raise LitmusParseError(f"unknown fence {token!r}", tokens.line)
        if not tokens.done():
            raise LitmusParseError(f"trailing input after {token}", tokens.line)
        return Fence(pre, post)
    if token == "St":
        tokens.expect("[")
        addr = _parse_expr(tokens, locations)
        tokens.expect("]")
        data = _parse_expr(tokens, locations)
        _expect_done(tokens)
        return Store(addr, data)
    if token == "if":
        tokens.expect("(")
        cond = _parse_expr(tokens, locations)
        tokens.expect(")")
        tokens.expect("goto")
        target = tokens.next("a label name")
        if not _NAME_RE.match(target):
            raise LitmusParseError(f"bad branch target {target!r}", tokens.line)
        _expect_done(tokens)
        return Branch(cond, target)
    if not _NAME_RE.match(token):
        raise LitmusParseError(f"unrecognized instruction at {token!r}", tokens.line)
    dst = token
    tokens.expect("=")
    head = tokens.peek()
    if head == "Ld":
        tokens.next()
        tokens.expect("[")
        addr = _parse_expr(tokens, locations)
        tokens.expect("]")
        _expect_done(tokens)
        return Load(dst, addr)
    if head == "RMW":
        tokens.next()
        tokens.expect("[")
        addr = _parse_expr(tokens, locations)
        tokens.expect("]")
        data = _parse_expr(tokens, locations)
        _expect_done(tokens)
        return Rmw(dst, addr, data)
    expr = _parse_expr(tokens, locations)
    _expect_done(tokens)
    return RegOp(dst, expr)


def _expect_done(tokens: _Tokens) -> None:
    if not tokens.done():
        raise LitmusParseError(
            f"trailing input {tokens.peek()!r} after instruction", tokens.line
        )


_COMMENT_RE = re.compile(r"\(\*(.*?)\*\)")
_HEADER_ROW_RE = re.compile(r"^\s*P0\s*(\||;)")


class _Parser:
    def __init__(self, text: str) -> None:
        self.lines = text.splitlines()
        self.index = 0
        self.source = ""
        self.expect_map: dict[str, bool] = {}

    # -- line plumbing ---------------------------------------------------

    def _lineno(self) -> int:
        return self.index  # index already advanced past the returned line

    def _next_line(self) -> Optional[tuple[str, int]]:
        """The next significant line (comments captured, blanks skipped)."""
        while self.index < len(self.lines):
            raw = self.lines[self.index]
            self.index += 1
            stripped = self._capture_comments(raw, self.index).strip()
            if stripped:
                return stripped, self.index
        return None

    def _capture_comments(self, line: str, lineno: int) -> str:
        def record(match: re.Match) -> str:
            body = match.group(1).strip()
            if body.startswith("source:"):
                self.source = body[len("source:"):].strip()
            elif body.startswith("expect:"):
                self._parse_expect(body[len("expect:"):], lineno)
            return " "

        return _COMMENT_RE.sub(record, line)

    def _parse_expect(self, body: str, lineno: int) -> None:
        for item in body.split():
            if "=" not in item:
                raise LitmusParseError(
                    f"bad expect entry {item!r} (want model=allow|forbid)", lineno
                )
            model, verdict = item.split("=", 1)
            if verdict not in ("allow", "forbid"):
                raise LitmusParseError(
                    f"bad expect verdict {verdict!r} for model {model!r}", lineno
                )
            self.expect_map[model] = verdict == "allow"

    # -- sections --------------------------------------------------------

    def parse(self) -> LitmusTest:
        name = self._parse_header()
        description = self._parse_description()
        locations, initial_memory = self._parse_init()
        programs = self._parse_threads(locations)
        observed, asked = self._parse_footer(locations)
        try:
            return LitmusTest(
                name=name,
                programs=programs,
                locations=locations,
                initial_memory=initial_memory,
                asked=asked,
                expect=self.expect_map,
                observed=observed,
                source=self.source,
                description=description,
            )
        except (ProgramError, ValueError) as exc:
            raise LitmusParseError(str(exc)) from exc

    def _parse_header(self) -> str:
        entry = self._next_line()
        if entry is None:
            raise LitmusParseError("empty litmus input")
        line, lineno = entry
        parts = line.split(None, 1)
        if len(parts) != 2 or not _NAME_RE.match(parts[0]):
            raise LitmusParseError(
                "header must be '<arch> <test name>'", lineno
            )
        return parts[1].strip()

    def _parse_description(self) -> str:
        entry = self._next_line()
        if entry is None:
            raise LitmusParseError("truncated input: missing init section")
        line, lineno = entry
        if line.startswith('"'):
            if not line.endswith('"') or len(line) < 2:
                raise LitmusParseError("unterminated description string", lineno)
            return line[1:-1]
        # Not a description: rewind so init parsing sees this line.
        self.index = lineno - 1
        return ""

    def _parse_init(self) -> tuple[dict[str, int], dict[int, int]]:
        entry = self._next_line()
        if entry is None:
            raise LitmusParseError("truncated input: missing init section")
        line, lineno = entry
        if not line.startswith("{"):
            raise LitmusParseError(
                f"expected init section '{{ ... }}', found {line!r}", lineno
            )
        body = line[1:]
        while "}" not in body:
            more = self._next_line()
            if more is None:
                raise LitmusParseError("unterminated init section", lineno)
            body += " " + more[0]
            lineno = more[1]
        body, _, trailing = body.partition("}")
        if trailing.strip():
            raise LitmusParseError(
                f"unexpected input after init section: {trailing.strip()!r}", lineno
            )

        locations: dict[str, int] = {}
        pending: list[tuple[str, str, int]] = []  # (name, init spec, line)
        for chunk in body.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            name_part, eq, init_part = chunk.partition("=")
            name_part = name_part.strip()
            name, at, addr_part = name_part.partition("@")
            name = name.strip()
            if not _NAME_RE.match(name):
                raise LitmusParseError(f"bad location name {name!r}", lineno)
            if name in locations:
                raise LitmusParseError(f"duplicate location {name!r}", lineno)
            if at:
                addr_text = addr_part.strip()
                if not _INT_RE.match(addr_text):
                    raise LitmusParseError(
                        f"bad address {addr_text!r} for location {name!r}", lineno
                    )
                address = int(addr_text, 0)
            else:
                address = LOCATION_STRIDE * (len(locations) + 1)
            locations[name] = address
            if eq:
                pending.append((name, init_part.strip(), lineno))

        initial_memory: dict[int, int] = {}
        for name, spec, entry_line in pending:
            if spec.startswith("&"):
                target = spec[1:].strip()
                if target not in locations:
                    raise LitmusParseError(
                        f"init of {name!r} references unknown location {target!r}",
                        entry_line,
                    )
                initial_memory[locations[name]] = locations[target]
            elif _INT_RE.match(spec):
                initial_memory[locations[name]] = int(spec, 0)
            else:
                raise LitmusParseError(
                    f"bad initial value {spec!r} for location {name!r}", entry_line
                )
        return locations, initial_memory

    def _parse_threads(self, locations: dict[str, int]) -> tuple[Program, ...]:
        entry = self._next_line()
        if entry is None:
            raise LitmusParseError("truncated input: missing thread section")
        line, lineno = entry
        if not _HEADER_ROW_RE.match(line):
            raise LitmusParseError(
                f"expected thread header row ' P0 | P1 ;', found {line!r}", lineno
            )
        headers = self._split_row(line, lineno)
        for i, header in enumerate(headers):
            if header != f"P{i}":
                raise LitmusParseError(
                    f"thread header column {i} must be 'P{i}', found {header!r}",
                    lineno,
                )
        num_procs = len(headers)

        instrs: list[list[Instruction]] = [[] for _ in range(num_procs)]
        labels: list[dict[str, int]] = [{} for _ in range(num_procs)]
        while True:
            entry = self._next_line()
            if entry is None:
                break
            line, lineno = entry
            if not line.endswith(";"):
                self.index = lineno - 1  # footer line: hand back
                break
            cells = self._split_row(line, lineno)
            if len(cells) != num_procs:
                # Ragged rows must fail loudly: a missing '|' would silently
                # hand an instruction to the wrong processor.
                raise LitmusParseError(
                    f"row has {len(cells)} columns, expected {num_procs}", lineno
                )
            for proc, cell in enumerate(cells):
                if not cell:
                    continue
                if cell.endswith(":"):
                    label = cell[:-1].strip()
                    if not _NAME_RE.match(label):
                        raise LitmusParseError(f"bad label {cell!r}", lineno)
                    if label in labels[proc]:
                        raise LitmusParseError(
                            f"duplicate label {label!r} on P{proc}", lineno
                        )
                    labels[proc][label] = len(instrs[proc])
                    continue
                tokens = _Tokens(_tokenize(cell, lineno), lineno)
                instrs[proc].append(_parse_instruction(tokens, locations))

        programs = []
        for proc in range(num_procs):
            try:
                programs.append(Program(instrs[proc], labels[proc]))
            except ProgramError as exc:
                raise LitmusParseError(f"P{proc}: {exc}") from exc
        return tuple(programs)

    def _split_row(self, line: str, lineno: int) -> list[str]:
        body = line.rstrip()
        if not body.endswith(";"):
            raise LitmusParseError("thread rows must end with ';'", lineno)
        return [cell.strip() for cell in body[:-1].split("|")]

    def _parse_footer(
        self, locations: dict[str, int]
    ) -> tuple[frozenset[tuple[int, str]], Optional[Outcome]]:
        observed: frozenset[tuple[int, str]] = frozenset()
        asked: Optional[Outcome] = None
        saw_exists = False
        saw_observed = False
        while True:
            entry = self._next_line()
            if entry is None:
                return observed, asked
            line, lineno = entry
            if line.startswith("observed"):
                if saw_observed:
                    raise LitmusParseError("duplicate observed clause", lineno)
                saw_observed = True
                observed = self._parse_observed(line, lineno)
                continue
            for keyword in ("~exists", "exists", "forbidden"):
                if line.startswith(keyword):
                    if saw_exists:
                        raise LitmusParseError("duplicate final condition", lineno)
                    saw_exists = True
                    asked = self._parse_condition(
                        line[len(keyword):].strip(), lineno, locations
                    )
                    break
            else:
                raise LitmusParseError(f"unexpected input {line!r}", lineno)

    def _parse_observed(self, line: str, lineno: int) -> frozenset[tuple[int, str]]:
        match = re.match(r"observed\s*\[(.*)\]\s*$", line)
        if match is None:
            raise LitmusParseError(
                "observed clause must look like 'observed [0:r1; 1:r2]'", lineno
            )
        pairs = set()
        for item in match.group(1).split(";"):
            item = item.strip()
            if not item:
                continue
            pair = re.match(r"(\d+)\s*:\s*([A-Za-z_][A-Za-z0-9_]*)\Z", item)
            if pair is None:
                raise LitmusParseError(f"bad observed entry {item!r}", lineno)
            pairs.add((int(pair.group(1)), pair.group(2)))
        return frozenset(pairs)

    def _parse_condition(
        self, body: str, lineno: int, locations: dict[str, int]
    ) -> Outcome:
        if not (body.startswith("(") and body.endswith(")")):
            raise LitmusParseError(
                "final condition must be parenthesized", lineno
            )
        inner = body[1:-1].strip()
        regs: set[tuple[int, str, int]] = set()
        mem: set[tuple[int, int]] = set()
        if inner:
            for conjunct in re.split(r"/\\|&&", inner):
                conjunct = conjunct.strip()
                lhs, eq, rhs = conjunct.partition("=")
                if not eq:
                    raise LitmusParseError(
                        f"bad condition conjunct {conjunct!r}", lineno
                    )
                value = self._condition_value(rhs.strip(), lineno, locations)
                lhs = lhs.strip()
                reg_match = re.match(
                    r"(?:P?(\d+)[.:])\s*([A-Za-z_][A-Za-z0-9_]*)\Z", lhs
                )
                if reg_match is not None:
                    regs.add((int(reg_match.group(1)), reg_match.group(2), value))
                elif lhs in locations:
                    mem.add((locations[lhs], value))
                else:
                    raise LitmusParseError(
                        f"condition names unknown location or register {lhs!r}",
                        lineno,
                    )
        return Outcome(frozenset(regs), frozenset(mem))

    def _condition_value(
        self, text: str, lineno: int, locations: dict[str, int]
    ) -> int:
        if text.startswith("&"):
            target = text[1:].strip()
            if target not in locations:
                raise LitmusParseError(
                    f"condition references unknown location {target!r}", lineno
                )
            return locations[target]
        if _INT_RE.match(text):
            return int(text, 0)
        raise LitmusParseError(f"bad condition value {text!r}", lineno)


def parse_litmus(text: str) -> LitmusTest:
    """Parse ``.litmus`` text into a :class:`LitmusTest`.

    Raises:
        LitmusParseError: on any syntax or consistency error, carrying the
            offending 1-based line number.
    """
    return _Parser(text).parse()


def parse_litmus_file(path) -> LitmusTest:
    """Parse one ``.litmus`` file (annotating errors with the path)."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        return parse_litmus(text)
    except LitmusParseError as exc:
        raise LitmusParseError(f"{path}: {exc}") from exc
