"""Every litmus test that appears in the paper, with the paper's verdicts.

Each builder function returns a :class:`~repro.litmus.test.LitmusTest` whose
``expect`` map records, per memory model, whether the *asked* behaviour is
allowed (``True``) or forbidden (``False``).  Model keys:

* ``"sc"``, ``"tso"`` — the strong baselines;
* ``"gam"``  — the paper's model (GAM0 + SALdLd);
* ``"gam0"`` — Section III-D's initial model (no same-address load-load
  ordering); the paper calls it a corrected RMO;
* ``"arm"``  — GAM0 + SALdLdARM (Section III-E2);
* ``"wmm"``  — WMM-like [43]: load-to-store ordering, no dependency ordering;
* ``"alpha_like"`` — maximally relaxed atomic model without dependency or
  speculation constraints; demonstrates OOTA (Section II-C);
* ``"plsc"`` — per-location SC used as a yardstick (Section III-E).

Verdicts marked in the paper's figures are reproduced verbatim; verdicts the
paper implies (e.g. SC forbidding every non-SC behaviour) are included for
completeness and unit-tested against the implementations.
"""

from __future__ import annotations

from .dsl import LitmusBuilder
from .test import LitmusTest

__all__ = [
    "dekker",
    "oota",
    "store_forwarding",
    "load_speculation",
    "mp_addr",
    "mp_artificial_addr",
    "mp_dep_memory",
    "mp_prefetch",
    "corr",
    "corr_intervening_store",
    "rsw",
    "rnsw",
    "PAPER_TESTS",
]
def dekker() -> LitmusTest:
    """Figure 2: the Dekker / store-buffering test.

    SC forbids ``r1 = r2 = 0``; every weak model (and TSO) allows it.
    """
    b = LitmusBuilder(
        "dekker",
        locations=("a", "b"),
        source="Figure 2",
        description="Store buffering; SC forbids r1=r2=0.",
    )
    b.proc().st("a", 1).ld("r1", "b")
    b.proc().st("b", 1).ld("r2", "a")
    return b.build(
        asked={"P0.r1": 0, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": True,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def oota() -> LitmusTest:
    """Figure 5: out-of-thin-air.  All reasonable models forbid 42.

    ``alpha_like`` (no dependency ordering, no load-to-store ordering)
    allows it — this is exactly the OOTA problem the paper attributes to
    Alpha's liberal reordering (Section II-C).
    """
    b = LitmusBuilder(
        "oota",
        locations=("a", "b"),
        source="Figure 5",
        description="Out-of-thin-air value 42; GAM forbids via RegRAW.",
    )
    b.proc().ld("r1", "a").st("b", "r1")
    b.proc().ld("r2", "b").st("a", "r2")
    return b.build(
        asked={"P0.r1": 42, "P1.r2": 42},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": False,
            "alpha_like": True,
        },
    )


def store_forwarding() -> LitmusTest:
    """Figure 8: a load must forward from the youngest older same-address store.

    With ``r1`` initially 0, ``r2`` must read the forwarded 0 (from ``S``) and
    can never observe the older ``St [a] 1`` — every model agrees.
    """
    b = LitmusBuilder(
        "store-forwarding",
        locations=("a",),
        source="Figure 8",
        description="Forwarding picks the youngest older same-address store.",
    )
    b.proc().st("a", 1).st("a", "r1").ld("r2", "a")
    return b.build(
        asked={"P0.r2": 0},
        expect={
            "sc": True,
            "tso": True,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def load_speculation() -> LitmusTest:
    """Figure 9: speculative load issue past an unresolved store address.

    Memory location ``a`` initially holds the *address* of ``b``; the store
    ``St [r1] 1`` therefore hits ``b`` and the final load must return 1 in
    every model (constraint SAStLd repairs the speculation).
    """
    b = LitmusBuilder(
        "load-speculation",
        locations=("a", "b"),
        source="Figure 9",
        description="Load issued before older store address resolves.",
    )
    b.init("a", "b")
    b.proc().ld("r1", "a").st("r1", 1).ld("r2", "b")
    return b.build(
        asked={"P0.r2": 1},
        expect={
            "sc": True,
            "tso": True,
            "gam": True,
            "gam0": True,
            "arm": True,
            "wmm": True,
            "alpha_like": True,
        },
    )


def mp_addr() -> LitmusTest:
    """Figure 13a: message passing with an address dependency.

    GAM0 (and GAM, ARM) forbid ``r1 = &a, r2 = 0`` through RegRAW + LMOrd;
    models without dependency ordering (WMM, alpha_like) allow it.
    """
    b = LitmusBuilder(
        "mp+addr",
        locations=("a", "b"),
        source="Figure 13a",
        description="Address dependency orders the two loads of P1.",
    )
    b.proc().st("a", 1).fence("SS").st("b", b.loc("a"))
    b.proc().ld("r1", "b").ld("r2", "r1")
    return b.build(
        asked={"P1.r1": b.locations["a"], "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def mp_artificial_addr() -> LitmusTest:
    """Figure 13b: message passing with an *artificial* address dependency.

    ``r2 = a + r1 - r1`` syntactically reads ``r1``, so GAM0 still orders the
    loads; implementations must respect syntactic dependencies.
    """
    b = LitmusBuilder(
        "mp+artificial-addr",
        locations=("a", "b"),
        source="Figure 13b",
        description="Artificial data dependency replaces a FenceLL.",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    b.proc().ld("r1", "b").op("r2", b.loc("a") + "r1" - "r1").ld("r3", "r2")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": b.locations["a"], "P1.r3": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def mp_dep_memory() -> LitmusTest:
    """Figure 13c: a dependency chain through a memory location.

    P1 stores its loaded value to ``c`` and reloads it; constraint SAStLd
    keeps the chain intact, so GAM0 forbids the stale read of ``a``.
    """
    b = LitmusBuilder(
        "mp+dep-memory",
        locations=("a", "b", "c"),
        source="Figure 13c",
        description="Data dependency carried through memory (SAStLd).",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    (
        b.proc()
        .ld("r1", "b")
        .st("c", "r1")
        .ld("r2", "c")
        .op("r3", b.loc("a") + "r2" - "r2")
        .ld("r4", "r3")
    )
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 1, "P1.r3": b.locations["a"], "P1.r4": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def mp_prefetch() -> LitmusTest:
    """Figure 13d: load-load forwarding would break dependency ordering.

    GAM0 forbids the stale ``r3 = 0``: once ``r2 = &a`` is observed the
    dependent load must see ``St [a] 1``.  A machine with load-load
    forwarding (Alpha*) could return the stale prefetched 0.
    """
    b = LitmusBuilder(
        "mp+prefetch",
        locations=("a", "b"),
        source="Figure 13d",
        description="Why load-load data forwarding is disallowed.",
    )
    b.proc().st("a", 1).fence("SS").st("b", b.loc("a"))
    b.proc().ld("r1", "a").ld("r2", "b").ld("r3", "r2")
    return b.build(
        asked={"P1.r1": 0, "P1.r2": b.locations["a"], "P1.r3": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": False,
            "arm": False,
            "wmm": True,
            "alpha_like": True,
        },
    )


def corr() -> LitmusTest:
    """Figure 14a: coherent read-read (CoRR).

    Per-location SC forbids ``r1 = 1, r2 = 0``; GAM forbids it via SALdLd;
    GAM0 and RMO allow it (the paper's motivating example for adding
    SALdLd).  ARM forbids it because the two loads read different stores.
    """
    b = LitmusBuilder(
        "corr",
        locations=("a",),
        source="Figure 14a",
        description="Same-address load-load reordering (per-location SC).",
    )
    b.proc().st("a", 1)
    b.proc().ld("r1", "a").ld("r2", "a")
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": True,
            "arm": False,
            "alpha_like": True,
            "plsc": False,
        },
    )


def corr_intervening_store() -> LitmusTest:
    """Figure 14b: same-address loads with an intervening store.

    Both per-location SC and GAM allow ``r1=1, r2=2, r3=0``: the younger
    load forwards from the intervening store, so SALdLd deliberately does
    not order the two loads.
    """
    b = LitmusBuilder(
        "corr+intervening-store",
        locations=("a", "b"),
        source="Figure 14b",
        description="SALdLd exempts loads separated by a same-address store.",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    (
        b.proc()
        .ld("r1", "b")
        .st("b", 2)
        .ld("r2", "b")
        .op("rt", b.loc("a") + "r2" - "r2")
        .ld("r3", "rt")
    )
    return b.build(
        asked={"P1.r1": 1, "P1.r2": 2, "P1.r3": 0},
        expect={
            "sc": False,
            "tso": False,
            "gam": True,
            "gam0": True,
            "arm": True,
            "plsc": True,
        },
    )


def rsw() -> LitmusTest:
    """Figure 14c: read-same-write.

    The middle loads of P1 both read the initial value of ``c`` (the *same*
    store), so SALdLdARM does not order them: ARM allows the stale
    ``r6 = 0`` while GAM forbids it.  The paper's argument for SALdLd over
    SALdLdARM is the confusing contrast between this test and RNSW.
    """
    b = LitmusBuilder(
        "rsw",
        locations=("a", "b", "c"),
        source="Figure 14c",
        description="ARM allows; GAM forbids (reads of the same store).",
    )
    b.proc().st("a", 1).fence("SS").st("b", 1)
    (
        b.proc()
        .ld("r1", "b")
        .op("r2", b.loc("c") + "r1" - "r1")
        .ld("r3", "r2")
        .ld("r4", "c")
        .op("r5", b.loc("a") + "r4" - "r4")
        .ld("r6", "r5")
    )
    return b.build(
        asked={
            "P1.r1": 1,
            "P1.r2": b.locations["c"],
            "P1.r3": 0,
            "P1.r4": 0,
            "P1.r5": b.locations["a"],
            "P1.r6": 0,
        },
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": True,
            "arm": True,
            "plsc": True,
        },
    )


def rnsw() -> LitmusTest:
    """Figure 14d: read-not-same-write.

    Identical to RSW except P0 rewrites the initial 0 into ``c``; if the
    loads of ``c`` read *different* stores SALdLdARM now orders them, so
    both ARM and GAM forbid the behaviour.

    Note on per-location SC: the paper's claim is about the *read-from
    pattern* — no coherent execution can have I7 read the initialization of
    ``c`` while I6 reads ``St [c] 0``.  The register outcome itself is
    coherently reachable (both loads reading the initialization), so the
    ``plsc`` pseudo-model carries no verdict here; the rf-pattern claim is
    asserted directly in the test suite.
    """
    b = LitmusBuilder(
        "rnsw",
        locations=("a", "b", "c"),
        source="Figure 14d",
        description="ARM and GAM both forbid; contrast with RSW.",
    )
    b.proc().st("a", 1).fence("SS").st("c", 0).fence("SS").st("b", 1)
    (
        b.proc()
        .ld("r1", "b")
        .op("r2", b.loc("c") + "r1" - "r1")
        .ld("r3", "r2")
        .ld("r4", "c")
        .op("r5", b.loc("a") + "r4" - "r4")
        .ld("r6", "r5")
    )
    return b.build(
        asked={
            "P1.r1": 1,
            "P1.r2": b.locations["c"],
            "P1.r3": 0,
            "P1.r4": 0,
            "P1.r5": b.locations["a"],
            "P1.r6": 0,
        },
        expect={
            "sc": False,
            "tso": False,
            "gam": False,
            "gam0": True,
            "arm": False,
        },
    )


PAPER_TESTS = {
    fn().name: fn
    for fn in (
        dekker,
        oota,
        store_forwarding,
        load_speculation,
        mp_addr,
        mp_artificial_addr,
        mp_dep_memory,
        mp_prefetch,
        corr,
        corr_intervening_store,
        rsw,
        rnsw,
    )
}
"""Mapping from test name to its builder function, one per paper figure."""
