"""The 55 SPEC CPU2006 benchmark-input stand-ins (Figure 18's x-axis).

SPEC binaries and reference inputs cannot ship with this reproduction, so
each benchmark input is replaced by a :class:`WorkloadProfile`: a seeded
parameter set describing the benchmark's published character (instruction
mix, working-set size, pointer-chasing intensity, branch behaviour,
same-address reuse).  The profile names match the paper's Figure 18 labels
exactly, and the parameters are drawn from the standard SPEC CPU2006
characterization literature (integer vs floating point, cache-friendly vs
cache-hostile, branchy vs regular).

What matters for the reproduction is not any single absolute number but
that the *population* of workloads exercises the mechanisms the paper
measures: rare same-address load-load kills/stalls concentrated in a few
benchmarks, frequent-but-useless load-load forwarding, and a wide uPC
range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["WorkloadProfile", "PROFILES", "profile_names", "get_profile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic-workload parameters for one benchmark input.

    Fractions are of all uOPs (the remainder is integer ALU work);
    per-load pattern fractions are of loads.

    Attributes:
        name: Figure 18 label (e.g. ``"mcf"``, ``"gcc.166"``).
        load_frac / store_frac / branch_frac: uOP mix.
        fp_frac: fraction of non-memory compute that is floating point.
        int_mul_frac / int_div_frac / fp_div_frac: long-latency compute.
        mispredict_rate: per-branch misprediction probability.
        working_set_kb: cold working-set size (drives cache misses).
        hot_set_kb / hot_frac: small reused region and access bias to it.
        pointer_chase_frac: loads whose address depends on a prior load.
        reload_frac: loads that re-read a recently loaded address soon
            after (the same-address load-load pattern behind SALdLd events
            and load-load forwarding).
        reload_conflict_frac: reloads paired against a *late-address* older
            access (produces kills/stalls rather than benign reuse).
        store_forward_frac: loads reading a recently stored address.
        stride_frac: loads/stores that stream with a fixed stride.
        dep_density: probability a compute uOP reads a recent producer.
        addr_dep_frac: probability an ordinary load/store *address* depends
            on a recent in-flight producer (real code mostly uses stable
            base registers, so this is small — it is what makes SALdLd
            events rare, as the paper finds).
    """

    name: str
    load_frac: float = 0.26
    store_frac: float = 0.10
    branch_frac: float = 0.12
    fp_frac: float = 0.0
    int_mul_frac: float = 0.01
    int_div_frac: float = 0.001
    fp_div_frac: float = 0.0
    mispredict_rate: float = 0.04
    working_set_kb: int = 512
    hot_set_kb: int = 16
    hot_frac: float = 0.6
    pointer_chase_frac: float = 0.05
    reload_frac: float = 0.04
    reload_conflict_frac: float = 0.0005
    store_forward_frac: float = 0.08
    stride_frac: float = 0.3
    dep_density: float = 0.5
    addr_dep_frac: float = 0.08


_BASE = WorkloadProfile(name="base")


def _int_branchy(name: str, **kw) -> WorkloadProfile:
    """Branch-heavy integer codes (gcc, gobmk, sjeng, perl, xalan)."""
    defaults = dict(
        branch_frac=0.18,
        mispredict_rate=0.07,
        working_set_kb=2048,
        hot_frac=0.7,
        pointer_chase_frac=0.08,
        reload_frac=0.06,
        reload_conflict_frac=0.0012,
        store_forward_frac=0.12,
        stride_frac=0.15,
    )
    defaults.update(kw)
    return replace(_BASE, name=name, **defaults)


def _fp_regular(name: str, **kw) -> WorkloadProfile:
    """Regular floating-point codes (bwaves, leslie3d, zeusmp...)."""
    defaults = dict(
        load_frac=0.30,
        store_frac=0.12,
        branch_frac=0.04,
        fp_frac=0.75,
        fp_div_frac=0.002,
        mispredict_rate=0.01,
        working_set_kb=8192,
        hot_frac=0.3,
        pointer_chase_frac=0.005,
        reload_frac=0.02,
        reload_conflict_frac=0.0002,
        store_forward_frac=0.04,
        stride_frac=0.8,
    )
    defaults.update(kw)
    return replace(_BASE, name=name, **defaults)


def _pointer_chaser(name: str, **kw) -> WorkloadProfile:
    """Cache-hostile pointer codes (mcf, omnetpp, astar, xalan)."""
    defaults = dict(
        load_frac=0.32,
        store_frac=0.08,
        branch_frac=0.14,
        mispredict_rate=0.08,
        working_set_kb=16384,
        hot_frac=0.25,
        pointer_chase_frac=0.45,
        reload_frac=0.05,
        reload_conflict_frac=0.0018,
        store_forward_frac=0.06,
        stride_frac=0.05,
    )
    defaults.update(kw)
    return replace(_BASE, name=name, **defaults)


def _streamer(name: str, **kw) -> WorkloadProfile:
    """Streaming codes (libquantum, lbm, milc): large strides, huge sets."""
    defaults = dict(
        load_frac=0.25,
        store_frac=0.15,
        branch_frac=0.08,
        fp_frac=0.5,
        mispredict_rate=0.005,
        working_set_kb=32768,
        hot_frac=0.1,
        pointer_chase_frac=0.0,
        reload_frac=0.01,
        reload_conflict_frac=0.00005,
        store_forward_frac=0.02,
        stride_frac=0.95,
    )
    defaults.update(kw)
    return replace(_BASE, name=name, **defaults)


def _int_compute(name: str, **kw) -> WorkloadProfile:
    """High-ILP integer kernels (hmmer, h264ref, bzip2)."""
    defaults = dict(
        load_frac=0.30,
        store_frac=0.12,
        branch_frac=0.08,
        mispredict_rate=0.02,
        working_set_kb=256,
        hot_frac=0.85,
        pointer_chase_frac=0.01,
        reload_frac=0.10,
        reload_conflict_frac=0.0004,
        store_forward_frac=0.15,
        stride_frac=0.5,
    )
    defaults.update(kw)
    return replace(_BASE, name=name, **defaults)


def _fp_compute(name: str, **kw) -> WorkloadProfile:
    """Compute-bound floating point (namd, gromacs, povray, gamess)."""
    defaults = dict(
        load_frac=0.28,
        store_frac=0.10,
        branch_frac=0.06,
        fp_frac=0.8,
        fp_div_frac=0.004,
        mispredict_rate=0.015,
        working_set_kb=512,
        hot_frac=0.8,
        pointer_chase_frac=0.01,
        reload_frac=0.06,
        reload_conflict_frac=0.0003,
        store_forward_frac=0.08,
        stride_frac=0.4,
    )
    defaults.update(kw)
    return replace(_BASE, name=name, **defaults)


PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in (
        _pointer_chaser("astar.lakes", working_set_kb=4096, pointer_chase_frac=0.3),
        _pointer_chaser("astar.rivers", working_set_kb=8192, pointer_chase_frac=0.35),
        _fp_regular("bwaves", working_set_kb=16384),
        _int_compute("bzip2.chicken", working_set_kb=1024),
        _int_compute("bzip2.combined", working_set_kb=2048),
        _int_compute("bzip2.liberty", working_set_kb=1024),
        _int_compute("bzip2.program", working_set_kb=2048),
        _int_compute("bzip2.source", working_set_kb=2048),
        _int_compute("bzip2.text", working_set_kb=1024),
        _fp_regular("cactusadm", working_set_kb=4096, fp_div_frac=0.003),
        _fp_compute("calculix", working_set_kb=1024),
        _fp_compute("dealii", working_set_kb=2048, pointer_chase_frac=0.05),
        _fp_compute("gamess.cytosine", working_set_kb=256),
        _fp_compute("gamess.h2ocu2", working_set_kb=256),
        _fp_compute("gamess.triazolium", working_set_kb=512),
        _int_branchy("gcc.166", working_set_kb=4096, reload_conflict_frac=0.002),
        _int_branchy("gcc.200", working_set_kb=8192, reload_conflict_frac=0.0028),
        _int_branchy("gcc.c-typeck", working_set_kb=2048),
        _int_branchy("gcc.cp-decl", working_set_kb=2048),
        _int_branchy("gcc.expr", working_set_kb=2048),
        _int_branchy("gcc.expr2", working_set_kb=4096),
        _int_branchy("gcc.g23", working_set_kb=8192),
        _int_branchy("gcc.s04", working_set_kb=4096),
        _int_branchy("gcc.scilab", working_set_kb=1024),
        _fp_regular("gemsfdtd", working_set_kb=16384),
        _int_branchy("gobmk.13x13", mispredict_rate=0.09),
        _int_branchy("gobmk.nngs", mispredict_rate=0.10),
        _int_branchy("gobmk.score2", mispredict_rate=0.09),
        _int_branchy("gobmk.trevorc", mispredict_rate=0.09),
        _int_branchy("gobmk.trevord", mispredict_rate=0.08),
        _fp_compute("gromacs", working_set_kb=1024),
        _int_compute("h264ref.freb", reload_frac=0.16, store_forward_frac=0.2),
        _int_compute("h264ref.frem", reload_frac=0.18, store_forward_frac=0.2),
        _int_compute("h264ref.sem", reload_frac=0.14, store_forward_frac=0.18),
        _int_compute("hmmer.retro", branch_frac=0.05, reload_frac=0.12),
        _int_compute("hmmer.swiss41", branch_frac=0.05, reload_frac=0.12),
        _streamer("lbm", store_frac=0.2),
        _fp_regular("leslie3d", working_set_kb=8192),
        _streamer("libquantum", fp_frac=0.0, working_set_kb=32768),
        _pointer_chaser(
            "mcf",
            working_set_kb=65536,
            pointer_chase_frac=0.55,
            reload_conflict_frac=0.003,
        ),
        _streamer("milc", fp_frac=0.7, working_set_kb=16384),
        _fp_compute("namd", working_set_kb=512),
        _pointer_chaser("omnetpp", working_set_kb=16384, branch_frac=0.16),
        _int_branchy("perl.checkspam", working_set_kb=1024, mispredict_rate=0.06),
        _int_branchy("perl.diffmail", working_set_kb=1024, mispredict_rate=0.06),
        _int_branchy("perl.splitmail", working_set_kb=2048, mispredict_rate=0.05),
        _fp_compute("povray", working_set_kb=128, branch_frac=0.1),
        _int_branchy("sjeng", mispredict_rate=0.11, working_set_kb=4096),
        _fp_regular("soplex.pds", working_set_kb=16384, branch_frac=0.08),
        _fp_regular("soplex.ref", working_set_kb=8192, branch_frac=0.08),
        _fp_regular("sphinx3", load_frac=0.34, working_set_kb=4096),
        _fp_compute("tonto", working_set_kb=1024),
        _fp_regular("wrf", working_set_kb=8192),
        _pointer_chaser("xalan", working_set_kb=8192, branch_frac=0.18),
        _fp_regular("zeusmp", working_set_kb=8192),
    )
}
"""All 55 benchmark-input profiles, keyed by Figure 18 label."""


def profile_names() -> tuple[str, ...]:
    """The 55 profile names in Figure 18's (alphabetical) order."""
    return tuple(sorted(PROFILES))


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile; raises ``KeyError`` with the catalogue on a miss."""
    if name not in PROFILES:
        raise KeyError(f"unknown workload {name!r}; see profile_names()")
    return PROFILES[name]
