"""SPEC CPU2006 stand-ins: 55 named profiles + deterministic trace synthesis."""

from .generator import generate_trace
from .profiles import PROFILES, WorkloadProfile, get_profile, profile_names

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "get_profile",
    "profile_names",
    "generate_trace",
]
