"""Deterministic synthesis of uOP traces from workload profiles.

The generator turns a :class:`~repro.workloads.profiles.WorkloadProfile`
into a concrete dynamic uOP stream with:

* register dataflow: every value-producing uOP writes a rotating
  architectural register; consumers pick recent producers with probability
  ``dep_density`` (creating realistic wake-up chains);
* address streams: per-load/store choice among stride streaming, a hot
  reused region, cold random accesses over the working set, and pointer
  chasing (the load's address sources include the previous chase load's
  destination, so address resolution is late);
* **same-address reuse patterns**: with probability ``reload_frac`` a load
  re-reads a recently accessed address (fodder for load-load forwarding);
  with probability ``reload_conflict_frac`` the generator emits the
  adversarial pair the paper's SALdLd mechanisms exist for — an older
  access whose address depends on an in-flight chain, followed shortly by
  a younger ready-address access to the *same* line;
* branches flagged mispredicted at the profile's rate.

Generation is fully deterministic given ``(profile, length, seed)``.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from ..sim.uops import NUM_ARCH_REGS, Trace, Uop, UopKind
from .profiles import WorkloadProfile

__all__ = ["generate_trace"]

_LINE = 64


class _TraceBuilder:
    """Internal mutable state for one generation run."""

    def __init__(self, profile: WorkloadProfile, seed: int) -> None:
        self.profile = profile
        self.rng = random.Random((hash(profile.name) ^ seed) & 0xFFFFFFFF)
        self.uops: list[Uop] = []
        self.next_reg = 0
        self.recent_dsts: deque[int] = deque(maxlen=8)
        self.recent_addrs: deque[int] = deque(maxlen=32)
        self.recent_stores: deque[int] = deque(maxlen=16)
        self.chase_reg: Optional[int] = None
        self.stride_pos = 0
        self.ws_bytes = profile.working_set_kb * 1024
        self.ws_lines = max(1, self.ws_bytes // _LINE)
        hot_bytes = profile.hot_set_kb * 1024
        self.hot_lines = max(1, hot_bytes // _LINE)
        # Deferred adversarial pairs: (countdown, addr) — emit the younger
        # ready-address access a few uOPs after the late-address one.
        self.pending_conflicts: list[list] = []

    # -- registers -----------------------------------------------------------

    def alloc_dst(self) -> int:
        reg = self.next_reg
        self.next_reg = (self.next_reg + 1) % NUM_ARCH_REGS
        return reg

    def pick_src(self) -> tuple[int, ...]:
        if self.recent_dsts and self.rng.random() < self.profile.dep_density:
            return (self.rng.choice(tuple(self.recent_dsts)),)
        return ()

    def pick_addr_src(self) -> tuple[int, ...]:
        """Address sources: real code mostly uses stable base registers."""
        if self.recent_dsts and self.rng.random() < self.profile.addr_dep_frac:
            return (self.rng.choice(tuple(self.recent_dsts)),)
        return ()

    # -- addresses -------------------------------------------------------------

    def _cold_addr(self) -> int:
        return self.rng.randrange(self.ws_lines) * _LINE

    def _hot_addr(self) -> int:
        # Word-granular so unrelated accesses rarely share an exact address.
        return self.rng.randrange(self.hot_lines * (_LINE // 8)) * 8

    def _stride_addr(self) -> int:
        # Streaming codes walk arrays element by element (8B), so only one
        # access in eight touches a new cache line.
        self.stride_pos = (self.stride_pos + 8) % self.ws_bytes
        return self.stride_pos - self.stride_pos % 8

    def data_addr(self) -> int:
        p = self.profile
        roll = self.rng.random()
        if roll < p.stride_frac:
            return self._stride_addr()
        if roll < p.stride_frac + p.hot_frac:
            return self._hot_addr()
        return self._cold_addr()

    # -- uop emission -----------------------------------------------------------

    def emit(self, uop: Uop, reusable_addr: bool = True) -> None:
        self.uops.append(uop)
        if uop.dst is not None:
            self.recent_dsts.append(uop.dst)
        if uop.addr is not None:
            if reusable_addr:
                self.recent_addrs.append(uop.addr)
            if uop.kind == UopKind.STORE:
                self.recent_stores.append(uop.addr)

    def emit_compute(self) -> None:
        p = self.profile
        roll = self.rng.random()
        if p.fp_frac and self.rng.random() < p.fp_frac:
            if roll < p.fp_div_frac:
                kind = UopKind.FP_DIV
            elif roll < 0.2:
                kind = UopKind.FP_MUL
            else:
                kind = UopKind.FP_ALU
        else:
            if roll < p.int_div_frac:
                kind = UopKind.INT_DIV
            elif roll < p.int_div_frac + p.int_mul_frac:
                kind = UopKind.INT_MUL
            else:
                kind = UopKind.INT_ALU
        self.emit(Uop(kind, dst=self.alloc_dst(), srcs=self.pick_src()))

    def emit_branch(self) -> None:
        p = self.profile
        mispredicted = self.rng.random() < p.mispredict_rate
        self.emit(Uop(UopKind.BRANCH, srcs=self.pick_src(), mispredicted=mispredicted))

    def emit_load(self) -> None:
        p = self.profile
        roll = self.rng.random()
        dst = self.alloc_dst()
        if roll < p.pointer_chase_frac:
            # The address depends on the previous chase link: late resolution.
            # Chase addresses are excluded from the reload pool: real code
            # re-reads *other fields* of a chased node (different addresses),
            # so exact-address reloads of in-flight chase loads are rare —
            # this is what keeps SALdLd kills rare in the paper's data.
            srcs = (self.chase_reg,) if self.chase_reg is not None else ()
            addr = self._hot_addr() if self.rng.random() < 0.3 else self._cold_addr()
            self.chase_reg = dst
            self.emit(Uop(UopKind.LOAD, dst=dst, srcs=srcs, addr=addr), reusable_addr=False)
            return
        roll -= p.pointer_chase_frac
        if roll < p.reload_conflict_frac and self.chase_reg is not None:
            # Adversarial SALdLd pair: older late-address load now, younger
            # ready-address load to the same line in a few uOPs.
            addr = self._hot_addr()
            self.emit(Uop(UopKind.LOAD, dst=dst, srcs=(self.chase_reg,), addr=addr))
            self.pending_conflicts.append(
                [self.rng.randint(1, 4), addr]
            )
            return
        roll -= p.reload_conflict_frac
        if roll < p.reload_frac and self.recent_addrs:
            addr = self.rng.choice(tuple(self.recent_addrs))
            self.emit(Uop(UopKind.LOAD, dst=dst, srcs=(), addr=addr))
            return
        roll -= p.reload_frac
        if roll < p.store_forward_frac and self.recent_stores:
            addr = self.rng.choice(tuple(self.recent_stores))
            self.emit(Uop(UopKind.LOAD, dst=dst, srcs=self.pick_addr_src(), addr=addr))
            return
        self.emit(
            Uop(UopKind.LOAD, dst=dst, srcs=self.pick_addr_src(), addr=self.data_addr())
        )

    def emit_store(self) -> None:
        srcs = self.pick_addr_src() + self.pick_src()
        self.emit(Uop(UopKind.STORE, srcs=srcs or (), addr=self.data_addr()))

    def maybe_emit_conflict_pair(self) -> bool:
        """Emit the deferred younger half of an adversarial pair if due."""
        for pending in self.pending_conflicts:
            pending[0] -= 1
            if pending[0] <= 0:
                addr = pending[1]
                self.pending_conflicts.remove(pending)
                self.emit(Uop(UopKind.LOAD, dst=self.alloc_dst(), srcs=(), addr=addr))
                return True
        return False


def generate_trace(
    profile: WorkloadProfile,
    length: int = 20_000,
    seed: int = 1,
) -> Trace:
    """Generate a deterministic uOP trace for one workload profile.

    Args:
        profile: the benchmark stand-in to synthesize.
        length: number of uOPs.
        seed: stream seed (combined with the profile name, so every
            benchmark gets a distinct but reproducible stream).
    """
    builder = _TraceBuilder(profile, seed)
    p = profile
    while len(builder.uops) < length:
        if builder.maybe_emit_conflict_pair():
            continue
        roll = builder.rng.random()
        if roll < p.load_frac:
            builder.emit_load()
        elif roll < p.load_frac + p.store_frac:
            builder.emit_store()
        elif roll < p.load_frac + p.store_frac + p.branch_frac:
            builder.emit_branch()
        else:
            builder.emit_compute()
    return Trace(name=profile.name, uops=builder.uops[:length], seed=seed)
