"""Fence synthesis: restore SC under a weak model with minimal fences.

Section III-D introduces fences so programmers can recover SC; this module
automates the exercise: given a litmus test and a weak model, find the
smallest set of fence insertions whose fenced program has *exactly* the SC
outcome set under the weak model.

The search enumerates insertion plans by increasing fence count over all
(gap, fence-type) combinations — exact and exhaustive, which litmus-sized
programs afford.  Two classic results fall out immediately and are locked
in by tests: message passing needs FenceSS + FenceLL, while Dekker
fundamentally needs the expensive store-to-load fence (FenceSL).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .core.axiomatic import CandidatePrefix, MemoryModel, enumerate_outcomes
from .isa.instructions import Fence
from .isa.program import Program
from .litmus.test import LitmusTest
from .models.registry import get_model

__all__ = ["FencePlacement", "SynthesisResult", "restores_sc", "synthesize_fences"]

_FENCE_TYPES = ("LL", "LS", "SL", "SS")


@dataclass(frozen=True, order=True)
class FencePlacement:
    """One inserted fence: ``FenceXY`` in front of instruction ``index``.

    ``index`` may equal the program length (a trailing fence, rarely
    useful but included for completeness).
    """

    proc: int
    index: int
    kind: str

    def __str__(self) -> str:
        return f"P{self.proc}: Fence{self.kind} before I{self.index}"


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of a synthesis run.

    Attributes:
        placements: the minimal plan found (empty if none needed).
        fenced_test: the litmus test with the fences inserted.
        plans_checked: how many candidate plans were evaluated.
    """

    placements: tuple[FencePlacement, ...]
    fenced_test: LitmusTest
    plans_checked: int


def apply_placements(
    test: LitmusTest, placements: Iterable[FencePlacement]
) -> LitmusTest:
    """A copy of ``test`` with the given fences inserted.

    Insertion indices refer to the *original* programs; multiple fences in
    one gap are applied in placement order.
    """
    by_proc: dict[int, list[FencePlacement]] = {}
    for placement in placements:
        by_proc.setdefault(placement.proc, []).append(placement)
    programs = []
    for proc, program in enumerate(test.programs):
        todo = sorted(by_proc.get(proc, []), key=lambda p: p.index)
        instrs = []
        labels = dict(program.labels)
        shift_at: list[int] = []
        for position, instr in enumerate(program.instructions):
            for placement in todo:
                if placement.index == position:
                    instrs.append(Fence(placement.kind[0], placement.kind[1]))
                    shift_at.append(position)
            instrs.append(instr)
        for placement in todo:
            if placement.index == len(program.instructions):
                instrs.append(Fence(placement.kind[0], placement.kind[1]))
        # Labels move past every fence inserted before them.
        for name, target in labels.items():
            labels[name] = target + sum(1 for s in shift_at if s < target)
        programs.append(Program(instrs, labels))
    return LitmusTest(
        name=f"{test.name}+synth",
        programs=tuple(programs),
        locations=test.locations,
        initial_memory=test.initial_memory,
        asked=test.asked,
        expect={},
        observed=test.observed,
        source=test.source,
        description=f"{test.description} (with synthesized fences)",
    )


def restores_sc(
    test: LitmusTest,
    model: MemoryModel,
    sc_model: Optional[MemoryModel] = None,
) -> bool:
    """Does ``test`` already have exactly its SC outcomes under ``model``?"""
    sc_model = sc_model or get_model("sc")
    prefix = CandidatePrefix(test)
    weak = enumerate_outcomes(test, model, project="full", prefix=prefix)
    strong = enumerate_outcomes(test, sc_model, project="full", prefix=prefix)
    return weak == strong


def synthesize_fences(
    test: LitmusTest,
    model: Optional[MemoryModel] = None,
    max_fences: int = 3,
    kinds: Sequence[str] = _FENCE_TYPES,
) -> Optional[SynthesisResult]:
    """Find a minimal fence plan making ``model`` agree with SC on ``test``.

    Args:
        test: the program to harden.
        model: the weak model (default GAM).
        max_fences: search bound; litmus tests rarely need more than 2.
        kinds: allowed fence types, e.g. ``("SS", "LL")`` to exclude the
            expensive FenceSL and see which tests become unfixable.

    Returns:
        the minimal :class:`SynthesisResult`, or ``None`` if no plan within
        ``max_fences`` works.  Plans are explored smallest-first, and among
        equal sizes in deterministic lexicographic order, so results are
        stable.
    """
    model = model or get_model("gam")
    sc_model = get_model("sc")
    plans_checked = 0
    if restores_sc(test, model, sc_model):
        return SynthesisResult((), test, plans_checked=1)

    slots = [
        FencePlacement(proc, index, kind)
        for proc, program in enumerate(test.programs)
        for index in range(1, len(program))  # gaps between instructions
        for kind in kinds
    ]
    for count in range(1, max_fences + 1):
        for plan in itertools.combinations(slots, count):
            if len({(p.proc, p.index) for p in plan}) < count:
                continue  # one fence per gap is enough (stronger = union)
            plans_checked += 1
            fenced = apply_placements(test, plan)
            if restores_sc(fenced, model, sc_model):
                return SynthesisResult(
                    placements=tuple(sorted(plan)),
                    fenced_test=fenced,
                    plans_checked=plans_checked,
                )
    return None
