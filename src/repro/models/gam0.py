"""GAM0 — the initial model of Section III-D (GAM without SALdLd).

GAM0 violates per-location SC only for consecutive same-address loads
(the CoRR test), which is why the paper strengthens it into GAM.  The paper
also notes GAM0 can be read as a *corrected* RMO: both allow same-address
load-load reordering, but RMO's dependency-ordering definition accidentally
forbids speculative-load + store-forwarding implementations, which GAM0's
construction avoids.  The registry aliases ``"rmo"`` to this model.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.construction import assemble

__all__ = ["model"]


def model() -> MemoryModel:
    """GAM0: the constructed base model with fences, before SALdLd."""
    return assemble(
        "gam0",
        dependency_ordering=True,
        speculative_stores=False,
        same_address_loads="none",
        description=(
            "GAM without same-address load-load ordering; a corrected RMO."
        ),
    )
