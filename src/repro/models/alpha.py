"""An Alpha-like maximally relaxed atomic model (Section II-C).

Alpha allows reordering of *dependent* instructions; its official
definition avoids out-of-thin-air behaviours only through a complicated
look-at-all-execution-paths axiom (Alpha handbook, Chapter 5.6.1.7) that
the paper criticizes and that we deliberately do not implement.  This model
therefore keeps just same-address-store coherence and fences — and
exhibits OOTA (Figure 5) exactly as the paper warns.  It is the axiomatic
companion of the ``ALPHA_STAR`` simulator policy, which additionally
performs load-load data forwarding.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.ppo import FenceOrd, SAMemSt, SARmwLd

__all__ = ["model"]


def model() -> MemoryModel:
    """Alpha-like: no dependency ordering of any kind; OOTA-unsound."""
    return MemoryModel(
        name="alpha_like",
        clauses=(
            SAMemSt(),
            SARmwLd(),
            FenceOrd(),
        ),
        load_value="gam",
        description=(
            "Alpha-like relaxation: no dependency, branch or same-address "
            "load ordering; demonstrates the OOTA problem."
        ),
    )
