"""Per-location SC as a yardstick pseudo-model (Section III-E).

The paper evaluates SALdLd variants against "what per-location SC would
say".  This pseudo-model imposes *no* cross-address ordering at all, only
coherence: executions must be per-address sequentializable (the
``requires_coherence`` check).  Its verdicts on CoRR / RSW / RNSW match the
per-location SC column of Figure 14.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.ppo import FenceOrd, SAMemSt, SARmwLd

__all__ = ["model"]


def model() -> MemoryModel:
    """The weakest coherent model: used to state per-location SC verdicts."""
    return MemoryModel(
        name="plsc",
        clauses=(
            SAMemSt(),
            SARmwLd(),
            FenceOrd(),
        ),
        load_value="gam",
        requires_coherence=True,
        description=(
            "Per-location SC yardstick: coherence only, no cross-address "
            "ordering constraints."
        ),
    )
