"""The ARM alternative: GAM0 + SALdLdARM (Section III-E2).

ARMv8-style same-address load-load ordering only constrains loads that read
from *different* stores.  Strictly weaker than GAM's SALdLd — it allows RSW
(Figure 14c) while forbidding RNSW (Figure 14d), the asymmetry the paper
argues against.  Because the constraint depends on the read-from relation it
is a dynamic clause, checked against each candidate execution.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.construction import assemble

__all__ = ["model"]


def model() -> MemoryModel:
    """GAM0 strengthened with ARM's rf-sensitive load-load constraint."""
    return assemble(
        "arm",
        dependency_ordering=True,
        speculative_stores=False,
        same_address_loads="arm",
        description=(
            "GAM0 + SALdLdARM: same-address loads reading different stores "
            "stay ordered (ARMv8-style)."
        ),
    )
