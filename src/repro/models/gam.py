"""GAM — the paper's General Atomic Memory Model (Definition 6 + Figure 15).

GAM = the uniprocessor constraints of Figure 7, lifted to atomic memory by
LMOrd/LdVal (Figure 11), plus fences (Figure 12) and the SALdLd
same-address load-load constraint that restores per-location SC
(Section III-E1).  All four load/store reorderings remain allowed.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.construction import assemble

__all__ = ["model"]


def model() -> MemoryModel:
    """GAM, assembled through the paper's construction procedure."""
    gam = assemble(
        "gam",
        dependency_ordering=True,
        speculative_stores=False,
        same_address_loads="saldld",
        description=(
            "General Atomic Memory Model: all four reorderings, syntactic "
            "dependency ordering, per-location SC."
        ),
    )
    return gam
