"""Declarative model specs: the ``.model`` format and universal resolution.

The paper's point is that memory models are *constructed* from named
constraint choices; this module makes that construction data, not code.
A model is serializable as a small cat-inspired text format (one clause
per line, the Definition 6 vocabulary), and every ``--model``-shaped CLI
argument resolves through one function, :func:`resolve_model`.

The ``.model`` grammar (``#`` comments and blank lines are ignored)::

    model <name>                      required, first directive; no spaces
    description "<text>"             optional; \\" and \\\\ escapes
    loadvalue gam|sc                 the LoadValue axiom (default gam)
    coherence required               per-location-SC side condition (plsc)
    ppo <Clause>[(args)]             one static clause, in ppo order
    dynamic <Clause>                 one execution-dependent clause

Clause vocabulary: ``SAMemSt``, ``SAStLd``, ``SALdLd``, ``SARmwLd``,
``RegRAW``, ``BrSt``, ``AddrSt``, ``FenceOrd``, ``PairwiseOrder(X,Y)``
with ``X``/``Y`` in ``{L, S}`` (static), and ``SALdLdARM`` (dynamic) —
see :data:`repro.core.ppo.STATIC_CLAUSES` and ``docs/models.md``.

:func:`print_model` emits the canonical form; parse∘print is byte-stable
(``print(parse(print(m))) == print(m)``) for every model expressible in
the vocabulary, which the test suite asserts across the whole zoo.

Model *specs* — the strings :func:`resolve_model` / :func:`resolve_models`
accept everywhere a model is named::

    gam                        a registry name (aliases included)
    path/to/file.model         one parsed .model file
    path/to/dir/               every *.model file in a directory (a family)
    ctor:knob=value,...        one construction-lattice point (assemble())
    space:knob=*,...           every lattice point over the starred knobs
                               (a named variant family)

``ctor``/``space`` knobs come from
:data:`repro.core.construction.CTOR_KNOBS`.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..core.axiomatic import MemoryModel
from ..core.construction import CTOR_KNOBS, assemble_from_knobs, ctor_name
from ..core.ppo import build_clause, clause_spec

__all__ = [
    "ModelSpecError",
    "parse_model",
    "parse_model_file",
    "print_model",
    "load_model_path",
    "parse_knob_spec",
    "resolve_model",
    "resolve_models",
    "split_pair_spec",
]

_LOAD_VALUES = ("gam", "sc")
_CLAUSE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)(?:\((.*)\))?$")


class ModelSpecError(ValueError):
    """A ``.model`` text or model spec string that cannot be understood.

    Carries the offending line number and source (file path) when known;
    ``str()`` renders them as ``source:line: message``.
    """

    def __init__(
        self,
        message: str,
        lineno: Optional[int] = None,
        source: Optional[str] = None,
    ) -> None:
        prefix = ""
        if source is not None:
            prefix += f"{source}:"
        if lineno is not None:
            prefix += f"line {lineno}: "
        elif prefix:
            prefix += " "
        super().__init__(prefix + message)
        self.lineno = lineno
        self.source = source


# -- the .model text format ----------------------------------------------


def _parse_clause(text: str, lineno: int, source: Optional[str]):
    match = _CLAUSE_RE.match(text.strip())
    if not match:
        raise ModelSpecError(f"malformed clause {text!r}", lineno, source)
    name, arg_text = match.group(1), match.group(2)
    args: tuple[str, ...] = ()
    if arg_text is not None:
        args = tuple(arg.strip() for arg in arg_text.split(","))
    try:
        return build_clause(name, args)
    except ValueError as exc:
        raise ModelSpecError(str(exc), lineno, source) from exc


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _strip_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, respecting quoted strings.

    A ``#`` inside a double-quoted description is content, not a comment
    — otherwise ``description "issue #5"`` would not round-trip.
    """
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and in_string:
            i += 2
            continue
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            return line[:i]
        i += 1
    return line


def _unquote(text: str, lineno: int, source: Optional[str]) -> str:
    text = text.strip()
    if len(text) < 2 or not text.startswith('"') or not text.endswith('"'):
        raise ModelSpecError(
            f"description must be a double-quoted string, got {text!r}",
            lineno,
            source,
        )
    body = text[1:-1]
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body) or body[i + 1] not in ('"', "\\"):
                raise ModelSpecError(
                    f"bad escape in description at column {i + 1}", lineno, source
                )
            out.append(body[i + 1])
            i += 2
            continue
        if ch == '"':
            raise ModelSpecError(
                "unescaped quote inside description", lineno, source
            )
        out.append(ch)
        i += 1
    return "".join(out)


def parse_model(text: str, source: Optional[str] = None) -> MemoryModel:
    """Parse ``.model`` text into a :class:`MemoryModel`.

    Directives may appear in any order after the leading ``model`` line;
    scalar directives (``description``, ``loadvalue``, ``coherence``) may
    appear at most once.  Errors are :class:`ModelSpecError` carrying the
    offending line number (and ``source``, typically a file path).
    """
    name: Optional[str] = None
    name_line = 0
    description: Optional[str] = None
    load_value: Optional[str] = None
    coherence = False
    clauses: list = []
    dynamic: list = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        directive, _, rest = line.partition(" ")
        rest = rest.strip()
        if name is None:
            if directive != "model":
                raise ModelSpecError(
                    f"expected 'model <name>' as the first directive, "
                    f"got {directive!r}",
                    lineno,
                    source,
                )
        if directive == "model":
            if name is not None:
                raise ModelSpecError("duplicate 'model' directive", lineno, source)
            if not rest or len(rest.split()) != 1:
                raise ModelSpecError(
                    "model name must be a single whitespace-free token",
                    lineno,
                    source,
                )
            name, name_line = rest, lineno
        elif directive == "description":
            if description is not None:
                raise ModelSpecError(
                    "duplicate 'description' directive", lineno, source
                )
            description = _unquote(rest, lineno, source)
        elif directive == "loadvalue":
            if load_value is not None:
                raise ModelSpecError(
                    "duplicate 'loadvalue' directive", lineno, source
                )
            if rest not in _LOAD_VALUES:
                raise ModelSpecError(
                    f"loadvalue must be one of {', '.join(_LOAD_VALUES)}; "
                    f"got {rest!r}",
                    lineno,
                    source,
                )
            load_value = rest
        elif directive == "coherence":
            if coherence:
                raise ModelSpecError(
                    "duplicate 'coherence' directive", lineno, source
                )
            if rest != "required":
                raise ModelSpecError(
                    f"expected 'coherence required', got {rest!r}", lineno, source
                )
            coherence = True
        elif directive == "ppo":
            clause = _parse_clause(rest, lineno, source)
            if clause_spec(clause) in {clause_spec(c) for c in clauses}:
                raise ModelSpecError(
                    f"duplicate ppo clause {clause_spec(clause)}", lineno, source
                )
            if _is_dynamic(clause):
                raise ModelSpecError(
                    f"{clause_spec(clause)} is execution-dependent; "
                    "declare it with 'dynamic', not 'ppo'",
                    lineno,
                    source,
                )
            clauses.append(clause)
        elif directive == "dynamic":
            clause = _parse_clause(rest, lineno, source)
            if not _is_dynamic(clause):
                raise ModelSpecError(
                    f"{clause_spec(clause)} is static; "
                    "declare it with 'ppo', not 'dynamic'",
                    lineno,
                    source,
                )
            if clause_spec(clause) in {clause_spec(c) for c in dynamic}:
                raise ModelSpecError(
                    f"duplicate dynamic clause {clause_spec(clause)}",
                    lineno,
                    source,
                )
            dynamic.append(clause)
        else:
            raise ModelSpecError(
                f"unknown directive {directive!r}; expected model, "
                "description, loadvalue, coherence, ppo or dynamic",
                lineno,
                source,
            )
    if name is None:
        raise ModelSpecError("empty model definition", None, source)
    try:
        return MemoryModel(
            name=name,
            clauses=tuple(clauses),
            dynamic_clauses=tuple(dynamic),
            load_value=load_value or "gam",
            requires_coherence=coherence,
            description=description or "",
        )
    except ValueError as exc:  # model-level invariants (e.g. missing SAMemSt)
        raise ModelSpecError(str(exc), name_line, source) from exc


def _is_dynamic(clause) -> bool:
    from ..core.ppo import DynamicClause

    return isinstance(clause, DynamicClause)


def parse_model_file(path: Union[str, os.PathLike]) -> MemoryModel:
    """Parse one ``.model`` file (errors carry the path and line number)."""
    path = os.fspath(path)
    with open(path, encoding="utf-8") as handle:
        return parse_model(handle.read(), source=path)


def print_model(model: MemoryModel) -> str:
    """Render a model as canonical ``.model`` text.

    The canonical form — directive order ``model``, ``description`` (only
    when non-empty), ``loadvalue``, ``coherence`` (only when required),
    then one ``ppo``/``dynamic`` line per clause in the model's clause
    order — is what makes the parse∘print round trip byte-stable.

    Raises:
        ModelSpecError: the model cannot be represented in the line
            format (whitespace in the name, a newline in the
            description).
    """
    if not model.name or len(model.name.split()) != 1:
        raise ModelSpecError(
            f"model name {model.name!r} is not a single whitespace-free "
            "token; it cannot be printed as .model text"
        )
    if "\n" in model.description or "\r" in model.description:
        raise ModelSpecError(
            f"model {model.name!r} has a multi-line description; it cannot "
            "be printed as .model text"
        )
    lines = [f"model {model.name}"]
    if model.description:
        lines.append(f"description {_quote(model.description)}")
    lines.append(f"loadvalue {model.load_value}")
    if model.requires_coherence:
        lines.append("coherence required")
    for clause in model.clauses:
        lines.append(f"ppo {clause_spec(clause)}")
    for clause in model.dynamic_clauses:
        lines.append(f"dynamic {clause_spec(clause)}")
    return "\n".join(lines) + "\n"


def load_model_path(path: Union[str, os.PathLike]) -> list[MemoryModel]:
    """Parse ``path`` — one ``.model`` file or a directory of them.

    Directory entries are read in sorted filename order; duplicate model
    names within a directory raise :class:`ModelSpecError`, because every
    downstream consumer (verdict grids, campaign records) keys results by
    model name.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        entries = sorted(
            entry for entry in os.listdir(path) if entry.endswith(".model")
        )
        if not entries:
            raise ModelSpecError(f"no .model files in directory {path!r}")
        models = [
            parse_model_file(os.path.join(path, entry)) for entry in entries
        ]
        seen: dict[str, str] = {}
        for model, entry in zip(models, entries):
            if model.name in seen:
                raise ModelSpecError(
                    f"duplicate model name {model.name!r} in directory "
                    f"{path!r} (files {seen[model.name]!r} and {entry!r})"
                )
            seen[model.name] = entry
        return models
    return [parse_model_file(path)]


# -- ctor: and space: construction specs ---------------------------------


def parse_knob_spec(body: str, allow_star: bool) -> dict[str, str]:
    """Parse ``knob=value,...`` (``value`` may be ``*`` when allowed).

    Knob names are validated against ``CTOR_KNOBS`` (plus ``name=`` for
    ``ctor:`` specs, handled by the caller); value validity is checked by
    :func:`~repro.core.construction.assemble_from_knobs` so the error
    message lists the knob's domain.
    """
    knobs: dict[str, str] = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        knob, eq, value = item.partition("=")
        knob, value = knob.strip(), value.strip()
        if not eq or not knob or not value:
            raise ModelSpecError(
                f"bad knob spec entry {item!r}; expected knob=value"
            )
        if knob in knobs:
            raise ModelSpecError(f"duplicate knob {knob!r}")
        if value == "*" and not allow_star:
            raise ModelSpecError(
                f"knob {knob!r} cannot be '*' here; use a space: spec to "
                "enumerate"
            )
        knobs[knob] = value
    return knobs


def _ctor_model(spec: str) -> MemoryModel:
    body = spec[len("ctor"):].lstrip(":")
    knobs = parse_knob_spec(body, allow_star=False)
    name = knobs.pop("name", "")
    try:
        return assemble_from_knobs(knobs, name=name)
    except ValueError as exc:
        raise ModelSpecError(str(exc)) from exc


def _space_models(spec: str) -> list[MemoryModel]:
    body = spec[len("space"):].lstrip(":")
    knobs = parse_knob_spec(body, allow_star=True)
    for knob in knobs:
        if knob not in CTOR_KNOBS:
            raise ModelSpecError(
                f"unknown construction knob {knob!r}; "
                f"available: {', '.join(CTOR_KNOBS)}"
            )
    starred = [knob for knob, value in knobs.items() if value == "*"]
    if not starred:
        raise ModelSpecError(
            f"space spec {spec!r} enumerates nothing; star at least one "
            "knob (knob=*) or use ctor: for a single model"
        )
    assignments: list[dict[str, str]] = [{}]
    for knob in CTOR_KNOBS:  # canonical knob order, declared value order
        if knob not in knobs:
            continue
        values = CTOR_KNOBS[knob] if knobs[knob] == "*" else (knobs[knob],)
        assignments = [
            {**assignment, knob: value}
            for assignment in assignments
            for value in values
        ]
    try:
        return [assemble_from_knobs(assignment) for assignment in assignments]
    except ValueError as exc:
        raise ModelSpecError(str(exc)) from exc


# -- universal resolution ------------------------------------------------


def resolve_models(spec: Union[str, MemoryModel]) -> list[MemoryModel]:
    """Resolve a model spec to the (possibly singleton) family it names.

    Accepts a built :class:`MemoryModel` (returned as-is), a registry
    name or alias, a ``.model`` file or directory path, a ``ctor:`` point
    of the construction lattice, or a ``space:`` enumeration over it —
    see the module docstring for the spec grammar.

    Raises:
        ModelSpecError: a spec that parses but names nothing valid.
        KeyError: an unknown registry name (message lists the options).
    """
    if isinstance(spec, MemoryModel):
        return [spec]
    if not isinstance(spec, str):
        raise TypeError(f"model spec must be a str or MemoryModel, got {spec!r}")
    # The colon is required: a bare "ctor"/"space" is more likely a typo'd
    # or truncated spec than a request for the all-defaults model, so it
    # falls through to the unknown-name listing below.
    if spec.startswith("ctor:"):
        return [_ctor_model(spec)]
    if spec.startswith("space:"):
        return _space_models(spec)
    from .registry import REGISTRY

    # Registry names win over paths (mirroring resolve_suite's static-name
    # precedence): a stray file or directory in the cwd that happens to be
    # called "gam" must not shadow the zoo.
    if spec in REGISTRY:
        return [REGISTRY.get(spec)]
    if os.path.exists(spec):
        return load_model_path(spec)
    try:
        return [REGISTRY.get(spec)]  # raises the listing KeyError
    except KeyError as exc:
        raise KeyError(
            f"{exc.args[0]}; a model spec may also be a .model file or "
            "directory path, ctor:knob=value,... or space:knob=*,..."
        ) from None


def resolve_model(spec: Union[str, MemoryModel]) -> MemoryModel:
    """Resolve a model spec that must name exactly one model.

    This is the universal entry point behind every CLI ``--model`` /
    ``weaker`` / ``stronger`` argument.  Family specs (``space:``,
    multi-file directories) raise: pass those to :func:`resolve_models`
    (or a ``--pair`` that fans out) instead.
    """
    models = resolve_models(spec)
    if len(models) != 1:
        names = ", ".join(model.name for model in models)
        raise ModelSpecError(
            f"spec {spec!r} names a family of {len(models)} models "
            f"({names}); expected exactly one"
        )
    return models[0]


def split_pair_spec(spec: str) -> tuple[str, str]:
    """Split a ``--pair`` spec ``A:B`` into two model specs.

    Model specs may themselves contain one colon (``ctor:...``,
    ``space:...``), so the split is scheme-aware: a ``ctor``/``space``
    segment consumes the segment after it.  ``space:same_address_loads=*:gam``
    therefore splits into ``('space:same_address_loads=*', 'gam')``.
    """
    parts = [part.strip() for part in spec.split(":")]
    specs: list[str] = []
    i = 0
    while i < len(parts):
        if parts[i] in ("ctor", "space") and i + 1 < len(parts):
            specs.append(f"{parts[i]}:{parts[i + 1]}")
            i += 2
        else:
            specs.append(parts[i])
            i += 1
    if len(specs) != 2 or not specs[0] or not specs[1]:
        raise ValueError(
            f"bad model pair {spec!r}; expected 'weaker:stronger', e.g. "
            "wmm:arm or space:same_address_loads=*:gam"
        )
    if specs[0] == specs[1]:
        raise ValueError(f"model pair {spec!r} compares a model with itself")
    return (specs[0], specs[1])
