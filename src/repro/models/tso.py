"""Total Store Order: the x86-style baseline the paper contrasts with.

TSO relaxes exactly one ordering relative to SC — a store followed by a
younger load (to a different address) may commit after the load executes,
because the store can sit in a private store buffer.  Loads may read the
local buffered store early, which is precisely the program-order arm of the
GAM LoadValue axiom, so ``load_value="gam"`` models x86-style forwarding.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.ppo import FenceOrd, PairwiseOrder

__all__ = ["model"]


def model() -> MemoryModel:
    """TSO: SC minus store-to-load ordering, plus store forwarding."""
    return MemoryModel(
        name="tso",
        clauses=(
            PairwiseOrder("L", "L"),
            PairwiseOrder("L", "S"),
            PairwiseOrder("S", "S"),
            FenceOrd(),
        ),
        load_value="gam",
        description="Total Store Order with store-buffer forwarding.",
    )
