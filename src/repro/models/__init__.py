"""The memory-model zoo: GAM, GAM0, ARM, WMM-like, Alpha-like, SC, TSO."""

from .registry import MODELS, comparison_models, get_model, model_names

__all__ = ["MODELS", "get_model", "model_names", "comparison_models"]
