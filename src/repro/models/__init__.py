"""The memory-model zoo: GAM, GAM0, ARM, WMM-like, Alpha-like, SC, TSO.

Models are data here, not just code: every zoo model serializes to the
``.model`` text format (:mod:`repro.models.spec`), user models register
into the pluggable :class:`~repro.models.registry.ModelRegistry`, and
:func:`~repro.models.spec.resolve_model` turns any model spec — a
registry name, a ``.model`` file or directory, a ``ctor:`` construction
point or a ``space:`` enumeration — into concrete
:class:`~repro.core.axiomatic.MemoryModel` objects.
"""

from .registry import (
    MODELS,
    REGISTRY,
    ModelRegistry,
    comparison_models,
    get_model,
    model_names,
)
from .spec import (
    ModelSpecError,
    load_model_path,
    parse_model,
    parse_model_file,
    print_model,
    resolve_model,
    resolve_models,
    split_pair_spec,
)

__all__ = [
    "MODELS",
    "REGISTRY",
    "ModelRegistry",
    "get_model",
    "model_names",
    "comparison_models",
    "ModelSpecError",
    "load_model_path",
    "parse_model",
    "parse_model_file",
    "print_model",
    "resolve_model",
    "resolve_models",
    "split_pair_spec",
]
