"""A WMM-like model (reference [43] of the paper).

WMM takes the opposite trade to GAM: it relaxes dependency ordering
*completely* (no RegRAW/SAStLd/AddrSt/BrSt) but always enforces
load-to-store ordering, which is what keeps out-of-thin-air values away
without reasoning about dependencies.  The observable signatures used in
the test suite: WMM forbids plain LB and OOTA, yet allows MP+addr (no
dependency ordering).

This is a faithful *shape* of WMM sufficient for the paper's comparisons,
not a verbatim transcription of the WMM paper (which uses invalidation
buffers for its operational story).
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.ppo import FenceOrd, PairwiseOrder, SAMemSt, SARmwLd

__all__ = ["model"]


def model() -> MemoryModel:
    """WMM-like: load-to-store ordering instead of dependency ordering."""
    return MemoryModel(
        name="wmm",
        clauses=(
            SAMemSt(),
            SARmwLd(),
            PairwiseOrder("L", "S"),
            FenceOrd(),
        ),
        load_value="gam",
        description=(
            "WMM-like [43]: no dependency ordering, loads always ordered "
            "before younger stores (OOTA-free by construction)."
        ),
    )
