"""Sequential consistency (Figure 3): the strongest baseline.

SC preserves every program-order pair in the global memory order
(InstOrderSC) and reads come from the youngest memory-order-earlier store
(LoadValueSC).  Expressed in the clause framework, ppo is all four
pairwise-order instantiations; the ``"sc"`` load-value mode selects the
``<mo``-only LoadValue axiom.
"""

from __future__ import annotations

from ..core.axiomatic import MemoryModel
from ..core.ppo import FenceOrd, PairwiseOrder

__all__ = ["model", "model_with_gam_load_value"]


def model() -> MemoryModel:
    """SC exactly as in Figure 3."""
    return MemoryModel(
        name="sc",
        clauses=(
            PairwiseOrder("L", "L"),
            PairwiseOrder("L", "S"),
            PairwiseOrder("S", "L"),
            PairwiseOrder("S", "S"),
            FenceOrd(),
        ),
        load_value="sc",
        description="Sequential consistency (Lamport); no reordering at all.",
    )


def model_with_gam_load_value() -> MemoryModel:
    """SC with the GAM LoadValue axiom instead of LoadValueSC.

    Because InstOrderSC already places program-order-earlier stores earlier
    in ``<mo``, the two load-value axioms coincide under SC; the equivalence
    is unit-tested, which validates both the axiom implementations.
    """
    base = model()
    return MemoryModel(
        name="sc-gamlv",
        clauses=base.clauses,
        load_value="gam",
        description="SC with LoadValueGAM; provably equivalent to sc.",
    )
