"""Pluggable name -> memory model registry for the whole model zoo.

The zoo used to be a hardcoded dict of factories; it is now a mutable
:class:`ModelRegistry` (mirroring the litmus-side
:mod:`repro.litmus.registry`): user-defined models — parsed ``.model``
files, ``ctor:`` construction variants, programmatically built
:class:`~repro.core.axiomatic.MemoryModel` objects — register under the
same collision rules as the built-ins, and aliases (``"rmo"`` names the
same model as ``"gam0"``) are first-class rather than duplicate rows.

Name-based lookups everywhere go through the process-wide default
:data:`REGISTRY`; ``repro.models.spec.resolve_model`` layers file /
``ctor:`` / ``space:`` spec resolution on top of it.
"""

from __future__ import annotations

from typing import Callable, Union

from ..core.axiomatic import MemoryModel
from . import alpha, arm, gam, gam0, plsc, sc, tso, wmm

__all__ = [
    "ModelRegistry",
    "REGISTRY",
    "MODELS",
    "get_model",
    "model_names",
    "comparison_models",
]

ModelFactory = Callable[[], MemoryModel]


class ModelRegistry:
    """A mutable, collision-checked name -> model-factory mapping.

    Two registrations under one name are always a bug, never a silent
    overwrite (pass ``replace=True`` to overwrite deliberately).  Aliases
    are tracked separately from canonical names so listings can annotate
    them (``rmo -> gam0``) instead of instantiating the target twice.
    """

    def __init__(self) -> None:
        self._factories: dict[str, ModelFactory] = {}
        self._aliases: dict[str, str] = {}
        self._order: list[str] = []

    # -- registration ----------------------------------------------------

    def register(
        self,
        model: Union[MemoryModel, ModelFactory],
        *,
        name: str = "",
        aliases: tuple[str, ...] = (),
        replace: bool = False,
    ) -> str:
        """Register a model (or zero-argument factory) under its name.

        Args:
            model: a built :class:`MemoryModel` or a callable returning one.
            name: registration name; defaults to the model's own ``name``.
            aliases: extra names resolving to the same registration.
            replace: allow overwriting an existing name.

        Returns:
            the canonical name the model was registered under.

        Raises:
            ValueError: on a name collision when ``replace`` is false, or
                an empty name.
        """
        if isinstance(model, MemoryModel):
            built = model
            factory: ModelFactory = lambda built=built: built
        else:
            factory = model
            built = factory()
            if not isinstance(built, MemoryModel):
                raise TypeError(
                    f"factory returned {type(built).__name__}, not a MemoryModel"
                )
        key = name or built.name
        if not key:
            raise ValueError("cannot register a model with an empty name")
        if not replace and key in self:
            raise ValueError(
                f"model name collision: {key!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        self._aliases.pop(key, None)
        if key not in self._order:  # replacing an alias keeps its position
            self._order.append(key)
        self._factories[key] = factory
        for alias in aliases:
            self.alias(alias, key, replace=replace)
        return key

    def alias(self, alias: str, target: str, replace: bool = False) -> None:
        """Make ``alias`` resolve to the registration named ``target``.

        ``target`` may itself be an alias (the chain is flattened at
        registration time, so lookups stay one hop).
        """
        canonical = self._aliases.get(target, target)
        if canonical not in self._factories:
            raise KeyError(self._unknown(target))
        if not replace and alias in self:
            raise ValueError(
                f"model name collision: {alias!r} is already registered "
                "(pass replace=True to overwrite)"
            )
        if alias in self._factories:
            self._drop(alias)
        if alias not in self._aliases:
            self._order.append(alias)
        self._aliases[alias] = canonical

    def _drop(self, name: str) -> None:
        """Remove a canonical registration and every alias pointing at it."""
        del self._factories[name]
        dangling = [a for a, t in self._aliases.items() if t == name]
        for a in dangling:
            del self._aliases[a]
        self._order = [
            n for n in self._order if n != name and n not in dangling
        ]

    def unregister(self, name: str) -> None:
        """Remove a registration — an alias alone, or a canonical name
        together with every alias pointing at it."""
        if name in self._aliases:
            del self._aliases[name]
            self._order.remove(name)
            return
        if name in self._factories:
            self._drop(name)
            return
        raise KeyError(self._unknown(name))

    # -- lookup ----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._factories or name in self._aliases

    def canonical_name(self, name: str) -> str:
        """Resolve an alias to its canonical name (identity otherwise).

        Unknown names pass through unchanged, so callers can canonicalize
        before their own lookup without double-reporting the miss.
        """
        return self._aliases.get(name, name)

    def names(self) -> tuple[str, ...]:
        """Canonical (non-alias) names, in registration order."""
        return tuple(n for n in self._order if n in self._factories)

    def all_names(self) -> tuple[str, ...]:
        """Every name — canonical and alias — in registration order."""
        return tuple(self._order)

    def aliases(self) -> dict[str, str]:
        """The ``alias -> canonical name`` mapping (a copy)."""
        return dict(self._aliases)

    def get(self, name: str) -> MemoryModel:
        """Instantiate the model registered under ``name`` (or an alias).

        Raises ``KeyError`` listing the sorted available names — aliases
        annotated with their target — on a miss.
        """
        canonical = self._aliases.get(name, name)
        if canonical not in self._factories:
            raise KeyError(self._unknown(name))
        return self._factories[canonical]()

    def _unknown(self, name: str) -> str:
        entries = [
            f"{n} (= {self._aliases[n]})" if n in self._aliases else n
            for n in sorted(self._order)
        ]
        return f"unknown model {name!r}; available: {', '.join(entries)}"


REGISTRY = ModelRegistry()
"""The process-wide default registry every name-based lookup consults."""

for _factory, _name, _aliases in (
    (sc.model, "sc", ()),
    (sc.model_with_gam_load_value, "sc-gamlv", ()),
    (tso.model, "tso", ()),
    (gam.model, "gam", ()),
    (gam0.model, "gam0", ("rmo",)),  # the paper: GAM0 is a corrected RMO
    (arm.model, "arm", ()),
    (wmm.model, "wmm", ()),
    (alpha.model, "alpha_like", ()),
    (plsc.model, "plsc", ()),
):
    REGISTRY.register(_factory, name=_name, aliases=_aliases)

MODELS: dict[str, ModelFactory] = {
    "sc": sc.model,
    "sc-gamlv": sc.model_with_gam_load_value,
    "tso": tso.model,
    "gam": gam.model,
    "gam0": gam0.model,
    "rmo": gam0.model,
    "arm": arm.model,
    "wmm": wmm.model,
    "alpha_like": alpha.model,
    "plsc": plsc.model,
}
"""Legacy snapshot of the static zoo (``"rmo"`` aliases ``"gam0"``).

Kept for callers that iterate the built-in factories directly; runtime
registrations go to :data:`REGISTRY` and do not appear here.
"""


def model_names() -> tuple[str, ...]:
    """All registered model names, aliases included."""
    return REGISTRY.all_names()


def get_model(name: str) -> MemoryModel:
    """Instantiate the model registered under ``name``.

    Raises ``KeyError`` listing the available names on a miss.
    """
    return REGISTRY.get(name)


def comparison_models() -> tuple[MemoryModel, ...]:
    """The models used in verdict matrices, strongest first."""
    return tuple(
        get_model(name)
        for name in ("sc", "tso", "gam", "gam0", "arm", "wmm", "alpha_like", "plsc")
    )
