"""Name -> memory model lookup for the whole model zoo."""

from __future__ import annotations

from typing import Callable

from ..core.axiomatic import MemoryModel
from . import alpha, arm, gam, gam0, plsc, sc, tso, wmm

__all__ = ["MODELS", "get_model", "model_names", "comparison_models"]

MODELS: dict[str, Callable[[], MemoryModel]] = {
    "sc": sc.model,
    "sc-gamlv": sc.model_with_gam_load_value,
    "tso": tso.model,
    "gam": gam.model,
    "gam0": gam0.model,
    "rmo": gam0.model,  # the paper: GAM0 is a corrected RMO
    "arm": arm.model,
    "wmm": wmm.model,
    "alpha_like": alpha.model,
    "plsc": plsc.model,
}
"""Model factories by registry name (``"rmo"`` aliases ``"gam0"``)."""


def model_names() -> tuple[str, ...]:
    """All registered model names."""
    return tuple(MODELS)


def get_model(name: str) -> MemoryModel:
    """Instantiate the model registered under ``name``.

    Raises ``KeyError`` listing the available names on a miss.
    """
    if name not in MODELS:
        raise KeyError(f"unknown model {name!r}; available: {', '.join(MODELS)}")
    return MODELS[name]()


def comparison_models() -> tuple[MemoryModel, ...]:
    """The models used in verdict matrices, strongest first."""
    return tuple(
        get_model(name)
        for name in ("sc", "tso", "gam", "gam0", "arm", "wmm", "alpha_like", "plsc")
    )
