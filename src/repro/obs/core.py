"""Recorder core: counters, timers and snapshots for engine telemetry.

One module-global recorder (a :class:`NullRecorder` by default) receives
every :func:`incr`/:func:`observe` call from instrumented code.  When
stats collection is off the null recorder makes each call a no-op —
:func:`time_block` does not even read the clock — so the instrumented
hot paths pay nothing.  :func:`collecting` installs a live
:class:`StatsRecorder` for the duration of a ``with`` block and restores
the previous recorder on exit.

State crosses process boundaries as a :class:`StatsSnapshot`: a plain
picklable dataclass of counter totals and observation series.  Pool
workers collect into a private recorder and ship the snapshot back in
their ``_run_batch`` return value; the parent merges it, so ``--jobs N``
counter totals equal the serial run exactly.

Metric names must be declared in :mod:`repro.obs.registry`; recording an
unknown name raises :class:`ValueError`.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from .registry import metric_for

__all__ = [
    "StatsSnapshot",
    "StatsRecorder",
    "NullRecorder",
    "current",
    "install",
    "collecting",
    "incr",
    "observe",
    "time_block",
    "monotonic",
]

_KNOWN_NAMES: set[str] = set()


def _check_name(name: str) -> None:
    """Reject metric names absent from the registry (cached)."""
    if name in _KNOWN_NAMES:
        return
    if metric_for(name) is None:
        raise ValueError(
            f"unknown metric name {name!r}; declare it in repro.obs.registry"
        )
    _KNOWN_NAMES.add(name)


@dataclass
class StatsSnapshot:
    """Picklable point-in-time copy of a recorder's state.

    Attributes:
        counters: metric name -> integer total.
        series: metric name -> list of float observations (timers record
            elapsed seconds, histograms record raw values).
    """

    counters: dict[str, int] = field(default_factory=dict)
    series: dict[str, list[float]] = field(default_factory=dict)


class StatsRecorder:
    """Live recorder accumulating counters and observation series."""

    active = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._series: dict[str, list[float]] = {}

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        _check_name(name)
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Append one observation to the series ``name``."""
        _check_name(name)
        self._series.setdefault(name, []).append(float(value))

    def merge(self, snapshot: StatsSnapshot) -> None:
        """Fold a (typically worker-side) snapshot into this recorder."""
        for name, total in snapshot.counters.items():
            _check_name(name)
            self._counters[name] = self._counters.get(name, 0) + total
        for name, values in snapshot.series.items():
            _check_name(name)
            self._series.setdefault(name, []).extend(values)

    def snapshot(self) -> StatsSnapshot:
        """Copy the current state into a picklable snapshot."""
        return StatsSnapshot(
            counters=dict(self._counters),
            series={name: list(values) for name, values in self._series.items()},
        )


class NullRecorder:
    """Inactive recorder: every operation is a no-op (the default)."""

    active = False

    def incr(self, name: str, n: int = 1) -> None:
        """Discard the increment."""

    def observe(self, name: str, value: float) -> None:
        """Discard the observation."""

    def merge(self, snapshot: StatsSnapshot) -> None:
        """Discard the snapshot."""

    def snapshot(self) -> StatsSnapshot:
        """Return an empty snapshot."""
        return StatsSnapshot()


Recorder = Union[StatsRecorder, NullRecorder]

_NULL = NullRecorder()
_current: Recorder = _NULL


def current() -> Recorder:
    """The recorder instrumented code is currently feeding."""
    return _current


def install(recorder: Optional[Recorder]) -> Recorder:
    """Make ``recorder`` current (``None`` restores the null recorder).

    Returns the previously installed recorder so callers can restore it.
    """
    global _current
    previous = _current
    _current = _NULL if recorder is None else recorder
    return previous


@contextmanager
def collecting(reuse: bool = False) -> Iterator[Recorder]:
    """Install a fresh :class:`StatsRecorder` for the ``with`` block.

    With ``reuse=True`` an already-active recorder is yielded as-is
    instead of being shadowed — used by layers (like the campaign
    driver) that want stats of their own but must share the recorder
    when the CLI already turned collection on.
    """
    if reuse and _current.active:
        yield _current
        return
    recorder = StatsRecorder()
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` on the current recorder."""
    _current.incr(name, n)


def observe(name: str, value: float) -> None:
    """Append ``value`` to series ``name`` on the current recorder."""
    _current.observe(name, value)


def monotonic() -> float:
    """Monotonic clock read for instrumented code.

    Engine and campaign modules must use this (or :func:`time_block`)
    instead of calling :mod:`time` directly — lint rule R005 enforces
    it, so elapsed-time logic stays visible to the telemetry layer.
    """
    return _time.perf_counter()


@contextmanager
def time_block(name: str) -> Iterator[None]:
    """Time the ``with`` block into timer series ``name``.

    When no recorder is active the clock is never read — the disabled
    path costs one attribute check.
    """
    recorder = _current
    if not recorder.active:
        yield
        return
    start = _time.perf_counter()
    try:
        yield
    finally:
        recorder.observe(name, _time.perf_counter() - start)
