"""Metric registry: the closed vocabulary of engine telemetry names.

Every counter, timer and histogram the instrumentation layer may record
is declared here, exactly like lint diagnostics live in
:mod:`repro.lint.diagnostics`.  Recording an undeclared name is a
programming error (:class:`ValueError` from the recorder), which keeps
``docs/observability.md`` — generated from this catalog by
``tools/gen_obs_docs.py`` — a complete reference of what a run report
can contain.

Metric kinds:

* ``counter`` — monotonically increasing integer total.
* ``timer`` — a series of elapsed-seconds observations, summarized in
  reports as count/total/p50/p95/max.
* ``histogram`` — a series of dimensionless values (sizes, node counts),
  summarized as count/p50/p95/max.

Metrics flagged ``dynamic=True`` are *prefix families*: any name of the
form ``<name>.<label>`` is accepted, where ``<label>`` is a per-model or
per-suite key (e.g. ``engine.cache.hit.by.gam``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["MetricSpec", "METRICS", "metric_for"]


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric name (or dynamic prefix family).

    Attributes:
        name: dotted hierarchical name, e.g. ``engine.cache.hit``.
        kind: ``counter`` | ``timer`` | ``histogram``.
        unit: what one increment/observation measures (for docs).
        description: one-line reference text for ``docs/observability.md``.
        dynamic: when True, ``name`` is a prefix family and any
            ``name.<label>`` is a valid metric of the same kind.
    """

    name: str
    kind: str
    unit: str
    description: str
    dynamic: bool = False


def _counter(name: str, unit: str, description: str, dynamic: bool = False) -> MetricSpec:
    return MetricSpec(name, "counter", unit, description, dynamic)


def _timer(name: str, description: str) -> MetricSpec:
    return MetricSpec(name, "timer", "seconds", description)


def _histogram(name: str, unit: str, description: str) -> MetricSpec:
    return MetricSpec(name, "histogram", unit, description)


METRICS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # --- engine: cell scheduler / batch protocol -------------------
        _counter(
            "engine.cells.requested",
            "cells",
            "Cells handed to `evaluate_cells` (before cache lookups).",
        ),
        _counter(
            "engine.cells.evaluated",
            "cells",
            "Cells actually evaluated (cache misses plus uncached runs).",
        ),
        _counter(
            "engine.cells.verdict",
            "cells",
            "Evaluated cells that were `VerdictSpec` (allow/forbid) queries.",
        ),
        _counter(
            "engine.cells.outcomes",
            "cells",
            "Evaluated cells that were `OutcomeSpec` (full enumeration) queries.",
        ),
        _counter(
            "engine.batches",
            "batches",
            "Per-test batches dispatched (each shares one `CandidatePrefix`).",
        ),
        _counter(
            "engine.retries",
            "retries",
            "Failed or timed-out batches re-submitted under an "
            "`ExecutionPolicy` retry budget.",
        ),
        _counter(
            "engine.timeouts",
            "batches",
            "Batches that exceeded the per-batch deadline and had their "
            "pool killed.",
        ),
        _counter(
            "engine.batches.quarantined",
            "batches",
            "Batches finalized as `CellFailure` sentinels under "
            "`on_error=quarantine`.",
        ),
        _counter(
            "engine.pool.restarts",
            "restarts",
            "Process pools killed and replaced after a deadline kill or a "
            "broken (crashed-worker) pool.",
        ),
        # --- engine: oracle routing -------------------------------------
        _counter(
            "engine.oracle.axiomatic",
            "cells",
            "Evaluated cells answered by axiomatic enumeration.",
        ),
        _counter(
            "engine.oracle.operational",
            "cells",
            "Evaluated cells answered by abstract-machine exploration.",
        ),
        _counter(
            "engine.oracle.operational.by",
            "cells",
            "Operational cells keyed by machine name (e.g. "
            "`engine.oracle.operational.by.gam`).",
            dynamic=True,
        ),
        # --- engine: axiomatic dispatch --------------------------------
        _counter(
            "engine.dispatch.kernel",
            "queries",
            "Allowed/enumerate queries answered by the frontier DP kernel.",
        ),
        _counter(
            "engine.dispatch.orders",
            "queries",
            "Queries answered by the legacy order enumerator although the "
            "kernel supports the model (kernel disabled or forced off).",
        ),
        _counter(
            "engine.dispatch.backtracker",
            "queries",
            "Queries requiring the exact backtracking enumerator (dynamic "
            "clauses or coherence side conditions).",
        ),
        # --- engine: result cache --------------------------------------
        _counter(
            "engine.cache.hit",
            "lookups",
            "Result-cache lookups answered from disk.",
        ),
        _counter(
            "engine.cache.miss",
            "lookups",
            "Result-cache lookups that found no usable entry.",
        ),
        _counter(
            "engine.cache.stale",
            "lookups",
            "Cache entries discarded as unreadable or kind-mismatched "
            "(counted in addition to the miss).",
        ),
        _counter(
            "engine.cache.store",
            "writes",
            "Fresh results written back to the cache.",
        ),
        _counter(
            "engine.cache.hit.by",
            "lookups",
            "Cache hits keyed by model display name (or oracle string for "
            "operational cells).",
            dynamic=True,
        ),
        _counter(
            "engine.cache.miss.by",
            "lookups",
            "Cache misses keyed by model display name (or oracle string for "
            "operational cells).",
            dynamic=True,
        ),
        # --- kernel: frontier DP ---------------------------------------
        _counter(
            "kernel.builds",
            "kernels",
            "`FrontierKernel` instances constructed (one per candidate "
            "prefix x memory-model combo).",
        ),
        _counter(
            "kernel.dp.states",
            "states",
            "Memoized DP states materialized across all kernel solves.",
        ),
        _counter(
            "kernel.prune.regs_infeasible",
            "prunes",
            "Candidate combos skipped because required register values "
            "are unreachable under any load ordering.",
        ),
        # --- operational machine exploration ---------------------------
        _counter(
            "operational.explore.runs",
            "explorations",
            "Exhaustive GAM-machine explorations performed.",
        ),
        _counter(
            "operational.explore.states",
            "states",
            "Distinct machine states visited across all explorations.",
        ),
        _counter(
            "operational.explore.terminals",
            "states",
            "Terminal machine states reached across all explorations.",
        ),
        # --- campaign driver -------------------------------------------
        _counter(
            "campaign.shards.evaluated",
            "shards",
            "Campaign shards evaluated in this run.",
        ),
        _counter(
            "campaign.shards.resumed",
            "shards",
            "Campaign shards skipped because a completed shard file was "
            "found on resume.",
        ),
        _counter(
            "campaign.tests.evaluated",
            "tests",
            "Litmus tests evaluated across all shards in this run.",
        ),
        _counter(
            "campaign.discrepancies",
            "discrepancies",
            "Discrepancies mined from shard results (model-pair verdict "
            "splits or axiomatic-vs-operational outcome-set divergences).",
        ),
        _counter(
            "campaign.witnesses",
            "witnesses",
            "Minimized witness `.litmus` files written.",
        ),
        # --- serve: verdict daemon -------------------------------------
        _counter(
            "serve.requests",
            "requests",
            "HTTP requests the verdict daemon accepted (all endpoints).",
        ),
        _counter(
            "serve.requests.by",
            "requests",
            "Daemon requests keyed by endpoint (e.g. `serve.requests.by.matrix`).",
            dynamic=True,
        ),
        _counter(
            "serve.errors",
            "requests",
            "Daemon requests answered with a structured error envelope.",
        ),
        _counter(
            "serve.cache.remote_hits",
            "cells",
            "Cells a request answered straight from the shared result store "
            "(no enqueue, no kernel work).",
        ),
        _counter(
            "serve.cells.remote",
            "cells",
            "Cells received over the wire (before shared-store lookups).",
        ),
        _counter(
            "serve.batches.dispatched",
            "batches",
            "Per-test batches the daemon's dispatchers submitted to the "
            "warm process pool.",
        ),
        # --- serve: RemoteScheduler client -----------------------------
        _counter(
            "serve.client.requests",
            "calls",
            "Logical `RemoteScheduler` evaluation calls attempted against "
            "a server (counted once per call, however many transport "
            "retries it takes).",
        ),
        _counter(
            "serve.client.retries",
            "retries",
            "Transport-level retries after a connection dropped "
            "mid-request.",
        ),
        _counter(
            "serve.client.fallbacks",
            "calls",
            "Evaluation calls that fell back to the local engine after "
            "the server was unreachable or kept dropping.",
        ),
        # --- timers -----------------------------------------------------
        _timer(
            "serve.request.seconds",
            "Wall time of each daemon request, accept to response.",
        ),
        _timer(
            "engine.wall.seconds",
            "Wall time of each `evaluate_cells` call (parent process).",
        ),
        _timer(
            "engine.batch.seconds",
            "Wall time of each per-test batch (worker-side when pooled); "
            "the ratio of its total to `engine.wall.seconds` is the "
            "worker-utilization figure in reports.",
        ),
        _timer(
            "engine.cell.seconds",
            "Wall time of each individual cell evaluation (cache misses).",
        ),
        _timer(
            "operational.explore.time",
            "Wall time of each exhaustive GAM-machine exploration.",
        ),
        _timer(
            "campaign.shard.seconds",
            "Wall time of each campaign shard evaluation.",
        ),
        _timer(
            "campaign.mine.seconds",
            "Wall time of verdict-table assembly plus discrepancy mining.",
        ),
        _timer(
            "campaign.minimize.seconds",
            "Wall time of each witness divergence-check + minimization.",
        ),
        # --- histograms -------------------------------------------------
        _histogram(
            "engine.batch.cells",
            "cells",
            "Cells per dispatched batch (batch-size distribution).",
        ),
        _histogram(
            "serve.queue.depth",
            "jobs",
            "Shard-queue depth sampled as each request finishes enqueuing "
            "(backlog the dispatchers are stealing from).",
        ),
        _histogram(
            "serve.workers.busy",
            "batches",
            "In-flight warm-pool batches sampled at each dispatch.",
        ),
        _histogram(
            "kernel.frontier.nodes",
            "memories",
            "Distinct reachable final memories per kernel solve.",
        ),
    )
}


def metric_for(name: str) -> Optional[MetricSpec]:
    """Resolve a metric name to its spec, honouring dynamic prefixes.

    Exact matches win; otherwise the longest declared ``dynamic`` family
    whose ``<prefix>.`` leads ``name`` is returned.  ``None`` means the
    name is not part of the telemetry vocabulary.
    """
    spec = METRICS.get(name)
    if spec is not None:
        return spec
    best: Optional[MetricSpec] = None
    for candidate in METRICS.values():
        if not candidate.dynamic:
            continue
        if name.startswith(candidate.name + "."):
            if best is None or len(candidate.name) > len(best.name):
                best = candidate
    return best
