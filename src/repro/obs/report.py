"""Run reports: the stable JSON artifact built from a stats snapshot.

A :class:`RunReport` freezes one run's telemetry into a JSON document
with schema version :data:`REPORT_SCHEMA`::

    {
      "schema": 1,
      "command": "hunt",
      "meta": {...},                  # free-form, deterministic inputs only
      "counters": {"name": int, ...}, # sorted, deterministic
      "timers": {"name": {"count", "total_s", "p50_s", "p95_s", "max_s"}},
      "histograms": {"name": {"count", "p50", "p95", "max"}}
    }

The ``counters`` section is the deterministic contract: for a fixed
workload it is byte-identical run to run (and serial vs ``--jobs N``).
``timers``/``histograms`` carry wall-clock noise and are excluded from
comparisons — :func:`diff_reports` diffs counters only and shows timer
totals as context.  ``repro hunt`` persists a report as ``stats.json``
in the campaign directory; ``repro stats`` renders and diffs them, and
the CI stats-smoke step validates ``--stats json`` output with
:func:`validate_report`.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .core import StatsSnapshot
from .registry import metric_for

__all__ = [
    "REPORT_SCHEMA",
    "RunReport",
    "validate_report",
    "diff_reports",
    "load_report",
]

REPORT_SCHEMA = 1

_TIMER_KEYS = ("count", "total_s", "p50_s", "p95_s", "max_s")
_HISTOGRAM_KEYS = ("count", "p50", "p95", "max")


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _summarize(values: list[float], timer: bool) -> dict[str, float]:
    ordered = sorted(values)
    summary: dict[str, float] = {"count": len(ordered)}
    if timer:
        summary["total_s"] = round(sum(ordered), 6)
        summary["p50_s"] = round(_percentile(ordered, 0.50), 6)
        summary["p95_s"] = round(_percentile(ordered, 0.95), 6)
        summary["max_s"] = round(ordered[-1], 6)
    else:
        summary["p50"] = round(_percentile(ordered, 0.50), 6)
        summary["p95"] = round(_percentile(ordered, 0.95), 6)
        summary["max"] = round(ordered[-1], 6)
    return summary


@dataclass(frozen=True)
class RunReport:
    """One run's telemetry, frozen into the stable report schema.

    Attributes:
        command: the CLI command (or caller label) that produced the run.
        counters: sorted name -> total (the deterministic section).
        timers: name -> count/total_s/p50_s/p95_s/max_s summary.
        histograms: name -> count/p50/p95/max summary.
        meta: free-form context (suite, shards, ...); keep deterministic.
    """

    command: str
    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, dict[str, float]] = field(default_factory=dict)
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_snapshot(
        cls,
        snapshot: StatsSnapshot,
        command: str,
        meta: Optional[Mapping] = None,
    ) -> "RunReport":
        """Build a report from a recorder snapshot.

        Counters are sorted by name; each series becomes a timer or
        histogram summary according to its registry kind (undeclared
        series fall back to histogram rendering).
        """
        timers: dict[str, dict[str, float]] = {}
        histograms: dict[str, dict[str, float]] = {}
        for name in sorted(snapshot.series):
            values = snapshot.series[name]
            if not values:
                continue
            spec = metric_for(name)
            if spec is not None and spec.kind == "timer":
                timers[name] = _summarize(values, timer=True)
            else:
                histograms[name] = _summarize(values, timer=False)
        return cls(
            command=command,
            counters=dict(sorted(snapshot.counters.items())),
            timers=timers,
            histograms=histograms,
            meta=dict(meta or {}),
        )

    def to_json(self) -> dict:
        """The schema-versioned JSON payload (see module docstring)."""
        return {
            "schema": REPORT_SCHEMA,
            "command": self.command,
            "meta": self.meta,
            "counters": self.counters,
            "timers": self.timers,
            "histograms": self.histograms,
        }

    @classmethod
    def from_json(cls, payload: object) -> "RunReport":
        """Rebuild a report from its JSON payload.

        Raises :class:`ValueError` listing every schema problem found by
        :func:`validate_report` when the payload does not conform.
        """
        problems = validate_report(payload)
        if problems:
            raise ValueError(
                "invalid run report: " + "; ".join(problems)
            )
        assert isinstance(payload, dict)
        return cls(
            command=payload["command"],
            counters=dict(sorted(payload["counters"].items())),
            timers=dict(payload["timers"]),
            histograms=dict(payload["histograms"]),
            meta=dict(payload["meta"]),
        )

    def render_json(self) -> str:
        """Deterministically serialized payload (sorted keys, indented)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    def render_text(self) -> str:
        """Human-readable rendering of the report."""
        lines = [f"run report — command={self.command} (schema {REPORT_SCHEMA})"]
        if self.meta:
            pairs = " ".join(
                f"{key}={self.meta[key]}" for key in sorted(self.meta)
            )
            lines.append(f"meta: {pairs}")
        width = max(
            (len(name) for name in (*self.counters, *self.timers, *self.histograms)),
            default=0,
        )
        lines.append("counters:")
        if not self.counters:
            lines.append("  (none)")
        for name, total in self.counters.items():
            lines.append(f"  {name.ljust(width)}  {total}")
        lines.append("timers (seconds):")
        if not self.timers:
            lines.append("  (none)")
        for name, s in self.timers.items():
            lines.append(
                f"  {name.ljust(width)}  count={s['count']:.0f}"
                f" total={s['total_s']:.3f} p50={s['p50_s']:.4f}"
                f" p95={s['p95_s']:.4f} max={s['max_s']:.4f}"
            )
        lines.append("histograms:")
        if not self.histograms:
            lines.append("  (none)")
        for name, s in self.histograms.items():
            lines.append(
                f"  {name.ljust(width)}  count={s['count']:.0f}"
                f" p50={s['p50']:g} p95={s['p95']:g} max={s['max']:g}"
            )
        utilization = self._utilization()
        if utilization is not None:
            busy, wall = utilization
            ratio = busy / wall if wall else 0.0
            lines.append(
                f"worker utilization: {busy:.3f}s busy over {wall:.3f}s wall"
                f" ({ratio:.2f}x)"
            )
        return "\n".join(lines) + "\n"

    def _utilization(self) -> Optional[tuple[float, float]]:
        batch = self.timers.get("engine.batch.seconds")
        wall = self.timers.get("engine.wall.seconds")
        if batch is None or wall is None or not wall["total_s"]:
            return None
        return batch["total_s"], wall["total_s"]


def _check_summary(
    section: str, name: str, entry: object, keys: tuple[str, ...], problems: list[str]
) -> None:
    if not isinstance(entry, dict):
        problems.append(f"{section}[{name!r}] is not an object")
        return
    for key in keys:
        value = entry.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            problems.append(f"{section}[{name!r}].{key} is not a number")


def validate_report(payload: object) -> list[str]:
    """Check a JSON payload against the documented report schema.

    Returns a list of human-readable problems (empty when valid).  Every
    counter/timer/histogram name must resolve in the metric registry
    with the matching kind — the schema is closed, like lint codes.
    """
    if not isinstance(payload, dict):
        return ["report is not a JSON object"]
    problems: list[str] = []
    if payload.get("schema") != REPORT_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {REPORT_SCHEMA}"
        )
    if not isinstance(payload.get("command"), str):
        problems.append("command is not a string")
    if not isinstance(payload.get("meta"), dict):
        problems.append("meta is not an object")
    counters = payload.get("counters")
    if not isinstance(counters, dict):
        problems.append("counters is not an object")
    else:
        for name, total in counters.items():
            spec = metric_for(name)
            if spec is None or spec.kind != "counter":
                problems.append(f"unknown counter {name!r}")
            if not isinstance(total, int) or isinstance(total, bool) or total < 0:
                problems.append(f"counter {name!r} is not a non-negative integer")
    for section, keys, kind in (
        ("timers", _TIMER_KEYS, "timer"),
        ("histograms", _HISTOGRAM_KEYS, "histogram"),
    ):
        entries = payload.get(section)
        if not isinstance(entries, dict):
            problems.append(f"{section} is not an object")
            continue
        for name, entry in entries.items():
            spec = metric_for(name)
            if section == "timers" and (spec is None or spec.kind != kind):
                problems.append(f"unknown timer {name!r}")
            _check_summary(section, name, entry, keys, problems)
    return problems


def diff_reports(a: "RunReport", b: "RunReport") -> str:
    """Render the counter-level difference between two reports.

    Only counters are compared — timings vary run to run and are shown
    as context (timer totals), never as differences.
    """
    lines = [f"stats diff — A: command={a.command}  B: command={b.command}"]
    names = sorted(set(a.counters) | set(b.counters))
    width = max((len(name) for name in names), default=0)
    changed = []
    for name in names:
        left = a.counters.get(name, 0)
        right = b.counters.get(name, 0)
        if left != right:
            delta = right - left
            changed.append(
                f"  {name.ljust(width)}  {left} -> {right} ({delta:+d})"
            )
    lines.append("counters:")
    if changed:
        lines.extend(changed)
    else:
        lines.append("  (identical)")
    lines.append(
        "timings are run-dependent and excluded from the comparison;"
        " totals for context:"
    )
    timer_names = sorted(set(a.timers) | set(b.timers))
    if not timer_names:
        lines.append("  (none)")
    for name in timer_names:
        left_s = a.timers.get(name, {}).get("total_s", 0.0)
        right_s = b.timers.get(name, {}).get("total_s", 0.0)
        lines.append(f"  {name.ljust(width)}  {left_s:.3f}s / {right_s:.3f}s")
    return "\n".join(lines) + "\n"


def load_report(path: str) -> RunReport:
    """Load a run report from a ``stats.json`` file or a campaign dir.

    A directory argument resolves to ``<dir>/stats.json``.  Raises
    :class:`OSError` when the file is missing and :class:`ValueError`
    when the payload is not valid JSON or fails schema validation.
    """
    target = path
    if os.path.isdir(target):
        target = os.path.join(target, "stats.json")
    with open(target, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{target}: not valid JSON ({exc})") from exc
    return RunReport.from_json(payload)
