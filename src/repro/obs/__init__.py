"""Engine telemetry: counters, timers, histograms and run reports.

Dependency-free instrumentation core (imports nothing from the rest of
``repro``, so every layer may import it without cycles):

* :mod:`repro.obs.registry` — the closed metric vocabulary, rendered
  into ``docs/observability.md`` by ``tools/gen_obs_docs.py``.
* :mod:`repro.obs.core` — the recorder (:func:`incr`, :func:`observe`,
  :func:`time_block`), the no-op default, and picklable
  :class:`StatsSnapshot` merging for ``--jobs N`` workers.
* :mod:`repro.obs.report` — the stable-schema :class:`RunReport` JSON
  artifact (``stats.json``), its text renderer, counter diffing and
  schema validation.

Enable collection with ``--stats [text|json]`` on the evaluating CLI
commands, or programmatically with :func:`collecting`.
"""

from .core import (
    NullRecorder,
    StatsRecorder,
    StatsSnapshot,
    collecting,
    current,
    incr,
    install,
    monotonic,
    observe,
    time_block,
)
from .registry import METRICS, MetricSpec, metric_for
from .report import (
    REPORT_SCHEMA,
    RunReport,
    diff_reports,
    load_report,
    validate_report,
)

__all__ = [
    "NullRecorder",
    "StatsRecorder",
    "StatsSnapshot",
    "collecting",
    "current",
    "incr",
    "install",
    "monotonic",
    "observe",
    "time_block",
    "METRICS",
    "MetricSpec",
    "metric_for",
    "REPORT_SCHEMA",
    "RunReport",
    "diff_reports",
    "load_report",
    "validate_report",
]
