"""repro — a reproduction of "Constructing a Weak Memory Model" (ISCA 2018).

The package implements GAM (the General Atomic Memory Model) end to end:

* :mod:`repro.isa` — the litmus-test instruction set;
* :mod:`repro.litmus` — litmus infrastructure plus every test in the paper;
* :mod:`repro.core` — GAM's axiomatic and operational definitions, the
  construction procedure, dependency/ppo machinery and per-location SC;
* :mod:`repro.models` — the model zoo (SC, TSO, GAM, GAM0, ARM, WMM-like,
  Alpha-like, per-location-SC yardstick);
* :mod:`repro.equivalence` — empirical equivalence checking of the two
  definitions, including random-program fuzzing;
* :mod:`repro.engine` — the batch evaluation engine behind the verdict
  matrix, strength lattice and equivalence suites: per-test candidate
  prefixes shared across the model zoo, optional multiprocessing fan-out
  (``--jobs``) and an on-disk result cache (``--cache``);
* :mod:`repro.campaign` — sharded, resumable differential model-hunt
  campaigns (``repro hunt``): mass verdict evaluation over generated
  suites, discrepancy mining between model pairs, and greedy witness
  minimization down to re-verified ``.litmus`` files;
* :mod:`repro.sim` + :mod:`repro.workloads` — the out-of-order timing
  simulator and SPEC-like synthetic workloads behind the paper's
  performance evaluation (Figure 18, Tables II-III);
* :mod:`repro.eval` — harnesses that regenerate each table and figure,
  plus differential analyses over their matrices.

See ``docs/architecture.md`` for the narrative map of these layers.

Quickstart::

    from repro import get_test, get_model, is_allowed
    test = get_test("dekker")
    assert is_allowed(test, get_model("gam"))       # weak model allows
    assert not is_allowed(test, get_model("sc"))    # SC forbids
"""

from .core.axiomatic import enumerate_executions, enumerate_outcomes, is_allowed
from .core.construction import assemble, derivation_chain
from .core.operational import (
    GAM0_MACHINE,
    GAM_MACHINE,
    explore,
    operational_allows,
    operational_outcomes,
)
from .litmus import LitmusBuilder, LitmusTest, Outcome, all_tests, get_test
from .models import (
    comparison_models,
    get_model,
    model_names,
    resolve_model,
    resolve_models,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "get_test",
    "all_tests",
    "LitmusTest",
    "LitmusBuilder",
    "Outcome",
    "get_model",
    "model_names",
    "comparison_models",
    "resolve_model",
    "resolve_models",
    "is_allowed",
    "enumerate_outcomes",
    "enumerate_executions",
    "assemble",
    "derivation_chain",
    "explore",
    "operational_outcomes",
    "operational_allows",
    "GAM_MACHINE",
    "GAM0_MACHINE",
]
