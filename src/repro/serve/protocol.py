"""The verdict-service wire protocol: versioned JSON, content not pickles.

Everything crossing the client/daemon boundary is content-addressed
JSON.  A cell travels as the *text* of its litmus test (the byte-stable
``print_litmus`` form), the *text* of its model spec (``print_model``),
its oracle string and projection — never as a pickle, so the daemon
re-parses and re-validates everything it executes and a malicious or
stale client cannot smuggle code or mismatched bytecode across the
socket.  Results travel back as the cache's canonical outcome JSON
(:func:`repro.engine.outcomes_to_json`), so a result crossing the wire
is byte-for-byte the result the local engine would have produced.

Every request and response carries a handshake header: the protocol
version (:data:`PROTOCOL_VERSION`) and the sender's
:data:`~repro.engine.cells.ENGINE_VERSION`.  A mismatch in either is a
*hard* error — a protocol mismatch means the schemas differ, an engine
mismatch means the two sides would disagree about what a result even
means — and is reported with a structured error envelope
(:data:`ERROR_KINDS`), never with silent coercion.  Transport failures,
by contrast, are soft: the client retries and falls back to the local
engine (see :mod:`repro.serve.client`).

Per-cell failures are not protocol errors.  A batch that times out or
crashes server-side under the daemon's :class:`~repro.engine.policy
.ExecutionPolicy` comes back as a ``failure`` result whose ``reason``
is one of :data:`~repro.engine.policy.FAILURE_REASONS` — the same
:class:`~repro.engine.policy.CellFailure` sentinel the local engine
yields, reconstructed client-side.
"""

from __future__ import annotations

from typing import Optional, Union

from ..engine.cache import outcomes_from_json, outcomes_to_json
from ..engine.cells import (
    ENGINE_VERSION,
    CellResult,
    CellSpec,
    OutcomeSpec,
    VerdictSpec,
    parse_oracle,
)
from ..engine.policy import FAILURE_REASONS, CellFailure
from ..litmus import parse_litmus, print_litmus
from ..models.spec import parse_model, print_model, resolve_model

__all__ = [
    "PROTOCOL_VERSION",
    "ENDPOINTS",
    "ERROR_KINDS",
    "ServeError",
    "ServeProtocolError",
    "ServeUnavailableError",
    "ServeDroppedError",
    "encode_cell",
    "decode_cell",
    "encode_result",
    "decode_result",
    "request_envelope",
    "response_envelope",
    "error_envelope",
    "check_handshake",
]

PROTOCOL_VERSION = 1
"""Bumped whenever request/response schemas change incompatibly."""

ENDPOINTS: dict[str, str] = {
    "status": (
        "GET/POST handshake and liveness probe: protocol + engine "
        "versions, endpoint list, worker count, queue depth and shared-"
        "store inventory; the client's first call on every connection"
    ),
    "verdict": (
        "POST exactly one `verdict` cell; the response's single result "
        "answers \"is this outcome allowed?\" for the cell's (test, "
        "model, oracle)"
    ),
    "matrix": (
        "POST a grid of `verdict` cells (a suite x model-zoo verdict "
        "matrix); results come back in request order"
    ),
    "check": (
        "POST `outcomes` cells (full outcome-set enumerations, e.g. the "
        "paired axiomatic/operational cells of an equivalence check)"
    ),
    "batch": (
        "POST any mix of cells — the general endpoint `RemoteScheduler` "
        "uses; the other cell endpoints are validated subsets of it"
    ),
}
"""Endpoint vocabulary, rendered into ``docs/serving.md``."""

ERROR_KINDS: dict[str, str] = {
    "protocol-mismatch": (
        "the two sides speak different protocol versions; the client "
        "must not fall back silently — upgrade one side"
    ),
    "engine-version-mismatch": (
        "the two sides run different ENGINE_VERSIONs, so their results "
        "are not interchangeable; refused rather than coerced"
    ),
    "bad-request": (
        "the request body was not valid JSON for the endpoint's schema "
        "(unparsable litmus/model text, wrong cell kind, missing field)"
    ),
    "unknown-endpoint": "the request path names no declared endpoint",
}
"""Structured error-envelope vocabulary, rendered into ``docs/serving.md``."""


class ServeError(RuntimeError):
    """Base class for verdict-service failures."""


class ServeProtocolError(ServeError):
    """A hard protocol-level refusal (version mismatch, bad schema).

    Never triggers local fallback: the two sides disagree about meaning,
    and recomputing locally would mask a deployment bug.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ServeUnavailableError(ServeError):
    """The server could not be reached at all (connect refused/timed out)."""


class ServeDroppedError(ServeError):
    """The connection died mid-request; the attempt may be retried."""


def encode_cell(cell: CellSpec) -> dict:
    """Serialize a cell spec by content for the wire.

    Raises :class:`~repro.litmus.LitmusPrintError` for tests outside the
    printable subset — callers treat that as "this grid cannot be served
    remotely" and evaluate locally.
    """
    parse_oracle(cell.oracle)  # validate before shipping
    payload = {
        "test": print_litmus(cell.test),
        "model": print_model(resolve_model(cell.model)),
        "oracle": cell.oracle,
    }
    if isinstance(cell, VerdictSpec):
        payload["kind"] = "verdict"
    elif isinstance(cell, OutcomeSpec):
        payload["kind"] = "outcomes"
        payload["project"] = cell.project
    else:
        raise TypeError(f"unknown cell spec {cell!r}")
    return payload


def decode_cell(payload: dict) -> CellSpec:
    """Parse one wire cell back into an engine spec.

    Raises :class:`ServeProtocolError` (``bad-request``) on any shape or
    parse failure — the daemon maps it straight to an error envelope.
    """
    if not isinstance(payload, dict):
        raise ServeProtocolError("bad-request", f"cell must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in ("verdict", "outcomes"):
        raise ServeProtocolError("bad-request", f"unknown cell kind {kind!r}")
    for field in ("test", "model"):
        if not isinstance(payload.get(field), str):
            raise ServeProtocolError("bad-request", f"cell {field!r} must be litmus/model text")
    oracle = payload.get("oracle", "axiomatic")
    try:
        parse_oracle(oracle)
        test = parse_litmus(payload["test"])
        model = parse_model(payload["model"], source="<wire>")
    except ServeError:
        raise
    except Exception as exc:
        raise ServeProtocolError("bad-request", f"unparsable cell content: {exc}") from exc
    if kind == "verdict":
        return VerdictSpec(test, model, oracle=oracle)
    project = payload.get("project", "full")
    if not isinstance(project, str):
        raise ServeProtocolError("bad-request", "cell 'project' must be a string")
    return OutcomeSpec(test, model, project=project, oracle=oracle)


def encode_result(result: Union[CellResult, CellFailure]) -> dict:
    """Serialize one cell result (or failure sentinel) for the wire."""
    if isinstance(result, CellFailure):
        return {
            "kind": "failure",
            "test": result.test_name,
            "reason": result.reason,
            "message": result.message,
            "attempts": result.attempts,
        }
    if isinstance(result, bool):
        return {"kind": "verdict", "allowed": result}
    if isinstance(result, frozenset):
        return {"kind": "outcomes", "outcomes": outcomes_to_json(result)}
    raise TypeError(f"unknown cell result {result!r}")


def decode_result(payload: dict) -> Union[CellResult, CellFailure]:
    """Parse one wire result back into the engine's result types.

    Failure envelopes become real :class:`CellFailure` sentinels (with
    an empty traceback — worker tracebacks stay server-side), so remote
    and local failure handling share one code path.
    """
    if not isinstance(payload, dict):
        raise ServeProtocolError("bad-request", f"result must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    try:
        if kind == "verdict":
            return bool(payload["allowed"])
        if kind == "outcomes":
            return outcomes_from_json(payload["outcomes"])
        if kind == "failure":
            reason = payload["reason"]
            if reason not in FAILURE_REASONS:
                raise ServeProtocolError("bad-request", f"unknown failure reason {reason!r}")
            return CellFailure(
                test_name=str(payload["test"]),
                reason=reason,
                message=str(payload["message"]),
                attempts=int(payload.get("attempts", 1)),
            )
    except ServeError:
        raise
    except Exception as exc:
        raise ServeProtocolError("bad-request", f"malformed {kind!r} result: {exc}") from exc
    raise ServeProtocolError("bad-request", f"unknown result kind {kind!r}")


def request_envelope(cells: Optional[list[dict]] = None) -> dict:
    """A request body carrying the handshake header (plus cells, if any)."""
    body: dict = {"protocol": PROTOCOL_VERSION, "engine_version": ENGINE_VERSION}
    if cells is not None:
        body["cells"] = cells
    return body


def response_envelope(**payload) -> dict:
    """A response body carrying the handshake header plus ``payload``."""
    return {"protocol": PROTOCOL_VERSION, "engine_version": ENGINE_VERSION, **payload}


def error_envelope(kind: str, message: str) -> dict:
    """A structured error response (``kind`` from :data:`ERROR_KINDS`)."""
    if kind not in ERROR_KINDS:
        raise ValueError(f"unknown error kind {kind!r}")
    return response_envelope(error={"kind": kind, "message": message})


def check_handshake(body: dict, side: str) -> None:
    """Refuse a body whose handshake header disagrees with this build.

    ``side`` names the peer ("client"/"server") for the error message.
    Raises :class:`ServeProtocolError` with the matching error kind.
    """
    if not isinstance(body, dict):
        raise ServeProtocolError("bad-request", f"{side} sent a non-object body")
    protocol = body.get("protocol")
    if protocol != PROTOCOL_VERSION:
        raise ServeProtocolError(
            "protocol-mismatch",
            f"{side} speaks protocol {protocol!r}, this build speaks {PROTOCOL_VERSION}",
        )
    engine = body.get("engine_version")
    if engine != ENGINE_VERSION:
        raise ServeProtocolError(
            "engine-version-mismatch",
            f"{side} runs engine version {engine!r}, this build runs "
            f"{ENGINE_VERSION}; results are not interchangeable",
        )
