"""The client side: ``ServeClient`` transport + ``RemoteScheduler`` seam.

``RemoteScheduler.evaluate_cells`` has the exact signature of the local
:func:`repro.engine.evaluate_cells`, so anything built on the engine
seam (``matrix``, ``check``, ``equiv``, ``strength``) routes through a
daemon by swapping one callable — stdout stays byte-identical because
the wire codec is lossless (verdict booleans and outcome sets round-trip
through the cache's canonical JSON).

Failure discipline, from softest to hardest:

* **server unreachable** (connect refused / DNS / connect timeout) —
  fall back to the local engine immediately and transparently; the run
  must succeed on a laptop with no daemon.
* **connection dropped mid-request** (server killed, network blip) —
  retry once (the request is idempotent: cells are content-addressed
  and the shared store absorbs duplicates), then fall back.
* **protocol or engine-version mismatch** — a *hard*
  :class:`~repro.serve.protocol.ServeProtocolError`: the two builds
  disagree about meaning, and silently recomputing locally would mask
  a deployment bug the operator needs to see.

Telemetry is duplicate-free by construction: ``serve.client.requests``
counts logical evaluation calls (once, however many transport retries),
``serve.client.retries`` counts the retries, ``serve.client.fallbacks``
counts calls that ended local, and ``serve.cache.remote_hits`` is folded
in from the *server's* response stats — so a ``--stats json`` report on
the client shows how much of the grid the shared store answered.
"""

from __future__ import annotations

import http.client
import json
import urllib.parse
from typing import Callable, Optional, Sequence

from ..engine.cells import CellResult, CellSpec
from ..engine.policy import ExecutionPolicy
from ..engine.scheduler import _group_by_test, evaluate_cells
from ..litmus import LitmusPrintError
from ..litmus.test import LitmusTest
from ..obs import incr
from .protocol import (
    ServeDroppedError,
    ServeProtocolError,
    ServeUnavailableError,
    check_handshake,
    decode_result,
    encode_cell,
    request_envelope,
)

__all__ = ["ServeClient", "RemoteScheduler"]

_DROPPED = (
    http.client.RemoteDisconnected,
    http.client.IncompleteRead,
    ConnectionResetError,
    BrokenPipeError,
)


class ServeClient:
    """One verdict-server endpoint: URL parsing, POST, error taxonomy."""

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported server scheme {parsed.scheme!r} in {url!r}")
        if not parsed.hostname:
            raise ValueError(f"server URL {url!r} has no host")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def post(self, endpoint: str, body: dict) -> dict:
        """POST one envelope; returns the decoded response envelope.

        Raises :class:`ServeUnavailableError` when no connection could
        be made, :class:`ServeDroppedError` when an established
        connection died mid-request, and :class:`ServeProtocolError`
        when the server answered with an error envelope (or undecodable
        JSON — a non-verdict-server on that port).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                connection.connect()
            except (ConnectionRefusedError, OSError) as exc:
                raise ServeUnavailableError(
                    f"{self.url}: cannot connect ({exc})"
                ) from exc
            try:
                connection.request(
                    "POST",
                    f"/{endpoint}",
                    body=json.dumps(body, sort_keys=True),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                raw = response.read()
            except _DROPPED as exc:
                raise ServeDroppedError(
                    f"{self.url}/{endpoint}: connection dropped mid-request ({exc})"
                ) from exc
            except OSError as exc:
                raise ServeDroppedError(
                    f"{self.url}/{endpoint}: transport failure ({exc})"
                ) from exc
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise ServeProtocolError(
                "bad-request",
                f"{self.url}/{endpoint} answered non-JSON (HTTP {response.status}) "
                "— not a verdict server?",
            ) from exc
        error = payload.get("error") if isinstance(payload, dict) else None
        if error is not None:
            raise ServeProtocolError(
                str(error.get("kind", "bad-request")),
                f"{self.url}/{endpoint}: {error.get('message', 'server refused the request')}",
            )
        check_handshake(payload, "server")
        return payload

    def status(self) -> dict:
        """The server's handshake/status payload (raises like :meth:`post`)."""
        return self.post("status", request_envelope())


class RemoteScheduler:
    """A drop-in ``evaluate_cells`` that routes batches through a daemon.

    Attributes:
        client: the transport (swap in a stub to unit-test failure modes).
        local: the fallback evaluator, by default the real local engine.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 600.0,
        client: Optional[ServeClient] = None,
        local: Callable = evaluate_cells,
    ) -> None:
        self.client = client if client is not None else ServeClient(url, timeout)
        self.local = local

    def evaluate_cells(
        self,
        cells: Sequence[CellSpec],
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        on_batch: Optional[Callable[[LitmusTest, Sequence[CellResult]], None]] = None,
        policy: Optional[ExecutionPolicy] = None,
        fault_plan=None,
        on_stall=None,
        stall_after: float = 30.0,
    ) -> list[CellResult]:
        """Evaluate a grid remotely; signature-identical to the engine's.

        ``jobs``/``cache_dir``/``policy`` govern the *fallback* path
        only — the daemon has its own pool, shared store and policy.  An
        armed ``fault_plan`` (a local-engine test harness) forces local
        evaluation outright, as does a grid whose tests cannot be
        serialized by content.
        """
        cells = list(cells)
        if not cells:
            return []

        def _local(reason: str) -> list[CellResult]:
            incr("serve.client.fallbacks")
            return self.local(
                cells,
                jobs=jobs,
                cache_dir=cache_dir,
                on_batch=on_batch,
                policy=policy,
                fault_plan=fault_plan,
                on_stall=on_stall,
                stall_after=stall_after,
            )

        incr("serve.client.requests")
        if fault_plan:
            return _local("fault plan armed")
        try:
            wire_cells = [encode_cell(cell) for cell in cells]
        except LitmusPrintError:
            return _local("unprintable test content")
        body = request_envelope(wire_cells)
        try:
            payload = self._post_with_retry(body)
        except (ServeUnavailableError, ServeDroppedError):
            return _local("server unreachable")
        results = self._decode_results(payload, len(cells))
        stats = payload.get("stats") or {}
        remote_hits = stats.get("remote_hits", 0)
        if isinstance(remote_hits, int) and remote_hits > 0:
            incr("serve.cache.remote_hits", remote_hits)
        if on_batch is not None:
            for test, indices in _group_by_test(cells):
                on_batch(test, [results[i] for i in indices])
        return results

    def _post_with_retry(self, body: dict) -> dict:
        """One batch POST, retrying a dropped connection exactly once."""
        try:
            return self.client.post("batch", body)
        except ServeDroppedError:
            incr("serve.client.retries")
            return self.client.post("batch", body)

    @staticmethod
    def _decode_results(payload: dict, expected: int) -> list[CellResult]:
        raw = payload.get("results")
        if not isinstance(raw, list) or len(raw) != expected:
            got = len(raw) if isinstance(raw, list) else type(raw).__name__
            raise ServeProtocolError(
                "bad-request",
                f"server returned {got} results for {expected} cells",
            )
        return [decode_result(item) for item in raw]
