"""Verdict-as-a-service: the long-lived evaluation daemon and its client.

The batch engine (:mod:`repro.engine`) was built backend-agnostic — its
per-test batches are picklable payloads, its errors travel as data, its
cache keys hash content.  This package cashes that in: a daemon
(:mod:`~repro.serve.daemon`) owns one warm process pool and one shared
:class:`~repro.engine.ResultCache` for its whole lifetime, a versioned
JSON protocol (:mod:`~repro.serve.protocol`) ships cells by *content*
(litmus text + model text + oracle + engine version — never pickles),
and a :class:`~repro.serve.client.RemoteScheduler` drops into the
engine seam so ``repro matrix/check/equiv/strength --server URL`` route
their grids through the daemon with byte-identical stdout and
transparent local fallback.

This is also the sanctioned home of network code: the ``R006`` lint
rule bans ``socket``/``http`` imports everywhere else under
``src/repro/``, so every byte that crosses a machine boundary goes
through this package's handshake and content validation.

See ``docs/serving.md`` (generated from the live endpoint/metric
vocabulary) for the protocol reference and operations guide.
"""

from __future__ import annotations

from .client import RemoteScheduler, ServeClient
from .daemon import DEFAULT_SERVE_POLICY, VerdictServer, VerdictService
from .protocol import (
    ENDPOINTS,
    ERROR_KINDS,
    PROTOCOL_VERSION,
    ServeDroppedError,
    ServeError,
    ServeProtocolError,
    ServeUnavailableError,
    decode_cell,
    decode_result,
    encode_cell,
    encode_result,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ENDPOINTS",
    "ERROR_KINDS",
    "DEFAULT_SERVE_POLICY",
    "RemoteScheduler",
    "ServeClient",
    "ServeError",
    "ServeProtocolError",
    "ServeUnavailableError",
    "ServeDroppedError",
    "VerdictServer",
    "VerdictService",
    "decode_cell",
    "decode_result",
    "encode_cell",
    "encode_result",
]
