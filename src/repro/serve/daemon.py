"""The verdict daemon: one warm pool, one shared store, many requests.

Where the local engine builds a process pool per ``evaluate_cells`` call
and tears it down after, the daemon owns *one* warm
``ProcessPoolExecutor`` and *one* shared :class:`~repro.engine.cache
.ResultCache` for its whole lifetime, so identical (test-content,
model-content, oracle, engine-version) queries never recompute — not
within a request, not across requests, not across clients.

Request anatomy::

    HTTP request thread (ThreadingHTTPServer)
        │  handshake check, cells decoded from content (protocol.py)
        │  shared-store lookups: hits answered inline
        ▼                       (serve.cache.remote_hits)
    work-stealing shard queue   misses grouped per test, one job per
        │                       batch; shard = crc32(test name)
        ▼
    dispatcher threads          each steals a job (home shard first),
        │                       submits the engine's own `_run_batch`
        ▼                       payload and awaits it under the policy
    warm ProcessPoolExecutor    deadline/retry/restart semantics
        │
        └── workers store results into the shared cache directory
            themselves (the cache's atomic rename makes concurrent
            writers safe), so the *next* request's lookups hit

The pool survives failures the way the local scheduler does — a
deadline kill or crashed worker replaces the pool — but because many
dispatcher threads share it, restarts are guarded by a generation
counter: the thread whose batch caused the kill charges a retry
attempt, while innocent threads whose futures broke in the crossfire
resubmit for free.

Telemetry is recorded on a *private* lock-guarded recorder, never on
the process-global one (:func:`repro.obs.install` is process-wide and
the daemon must not hijack a host process's stats when embedded
in-process, as the tests do).  Worker-side snapshots ride back on the
batch protocol and are merged in, so ``status`` reports kernel and
cache counters for everything the daemon has ever executed.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence
from zlib import crc32

from ..engine.cache import ResultCache
from ..engine.cells import CellResult, CellSpec
from ..engine.policy import (
    ON_ERROR_QUARANTINE,
    CellFailure,
    ExecutionPolicy,
)
from ..engine.scheduler import _backoff_sleep, _group_by_test, _kill_executor, _run_batch
from ..litmus.test import LitmusTest
from ..obs import monotonic
from ..obs.core import StatsRecorder
from .protocol import (
    ENDPOINTS,
    ServeProtocolError,
    check_handshake,
    decode_cell,
    encode_result,
    error_envelope,
    response_envelope,
)

__all__ = ["DEFAULT_SERVE_POLICY", "VerdictService", "VerdictServer"]


DEFAULT_SERVE_POLICY = ExecutionPolicy(timeout=300.0, retries=1, on_error="skip")
"""The daemon's default execution policy.

Unlike the local engine, a daemon must never let one poison batch take
down the process, so the default carries a generous deadline, one retry
and non-raising failure handling.  ``on_error="fail"`` is coerced to
sentinel behaviour server-side — per-batch failures always travel back
as ``failure`` results, never as a dead daemon.
"""

_STALE_TMP_SECONDS = 3600.0
"""Orphaned spool files older than this are swept at daemon startup."""


class _LockingRecorder(StatsRecorder):
    """A :class:`StatsRecorder` safe for the daemon's many threads.

    Private to the service — it is *called*, never installed as the
    process-global recorder, so an in-process embedding (tests, the
    ``serve start`` foreground path) leaves the host's telemetry alone.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.Lock()

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            super().incr(name, n)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            super().observe(name, value)

    def merge(self, snapshot) -> None:
        with self._lock:
            super().merge(snapshot)

    def snapshot(self):
        with self._lock:
            return super().snapshot()


class _Job:
    """One per-test batch of cache-miss cells awaiting a dispatcher."""

    __slots__ = ("batch_index", "test", "cells", "done", "results")

    def __init__(self, batch_index: int, test: LitmusTest, cells: Sequence[CellSpec]) -> None:
        self.batch_index = batch_index
        self.test = test
        self.cells = list(cells)
        self.done = threading.Event()
        self.results: list = []


class _ShardQueue:
    """A work-stealing queue: jobs shard by test name, idle threads steal.

    Sharding keeps batches for one test on one dispatcher (warm per-test
    affinity when a client streams related requests), while stealing
    keeps every dispatcher busy whenever *any* shard has work — the
    standard deque-per-worker arrangement, sized to threads not cores.
    """

    def __init__(self, shards: int) -> None:
        self._shards: list[deque] = [deque() for _ in range(max(1, shards))]
        self._cond = threading.Condition()

    def push(self, job: _Job) -> None:
        shard = crc32(job.test.name.encode("utf-8")) % len(self._shards)
        with self._cond:
            self._shards[shard].append(job)
            self._cond.notify()

    def pop(self, home: int, timeout: float) -> Optional[_Job]:
        """The next job for dispatcher ``home``: own shard first, then steal."""
        home %= len(self._shards)
        with self._cond:
            if not any(self._shards):
                self._cond.wait(timeout)
            order = itertools.chain(
                (home,), (i for i in range(len(self._shards)) if i != home)
            )
            for shard in order:
                if self._shards[shard]:
                    return self._shards[shard].popleft()
            return None

    def depth(self) -> int:
        with self._cond:
            return sum(len(shard) for shard in self._shards)


class _WarmPool:
    """The daemon's long-lived executor, restartable under a generation guard.

    ``restart(generation)`` kills and replaces the pool only if nobody
    else already did — the boolean answer is how a dispatcher tells
    "my batch broke the pool" (charge the retry budget) from "someone
    else's deadline kill broke my future" (resubmit for free).
    """

    def __init__(self, workers: int) -> None:
        self._workers = max(1, workers)
        self._lock = threading.Lock()
        self._generation = 0
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=self._workers
        )

    @property
    def workers(self) -> int:
        return self._workers

    def submit(self, payload: tuple):
        """Submit one batch payload; returns ``(generation, future)``."""
        with self._lock:
            if self._pool is None:
                raise RuntimeError("warm pool is shut down")
            return self._generation, self._pool.submit(_run_batch, payload)

    def restart(self, generation: int) -> bool:
        """Replace the pool; False when ``generation`` is already stale."""
        with self._lock:
            if self._pool is None or generation != self._generation:
                return False
            _kill_executor(self._pool)
            self._pool = ProcessPoolExecutor(max_workers=self._workers)
            self._generation += 1
            return True

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                _kill_executor(self._pool)
                self._pool = None


_ERROR_STATUS = {
    "protocol-mismatch": 409,
    "engine-version-mismatch": 409,
    "bad-request": 400,
    "unknown-endpoint": 404,
}


class VerdictService:
    """Endpoint logic + warm pool + shared store, transport-agnostic.

    The HTTP layer (:class:`VerdictServer`) is a thin shell over
    :meth:`handle`, which is why the protocol tests can drive a service
    in-process without ever opening a socket.
    """

    def __init__(
        self,
        cache_dir,
        workers: int = 2,
        dispatchers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir)
        self.cache.purge_stale_tmp(_STALE_TMP_SECONDS, now=time.time())
        self.policy = policy if policy is not None else DEFAULT_SERVE_POLICY
        self._recorder = _LockingRecorder()
        self._pool = _WarmPool(workers)
        self._queue = _ShardQueue(dispatchers or workers)
        self._batch_counter = itertools.count()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._stop = threading.Event()
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop, args=(i,), daemon=True)
            for i in range(dispatchers or workers)
        ]
        for thread in self._dispatchers:
            thread.start()

    # -- request handling ----------------------------------------------

    def handle(self, endpoint: str, body: dict) -> tuple[int, dict]:
        """Answer one request; returns ``(http_status, response_body)``.

        Protocol refusals become structured error envelopes; nothing
        here raises for request-shaped problems (a daemon answers, it
        does not crash).
        """
        started = monotonic()
        self._recorder.incr("serve.requests")
        try:
            if endpoint not in ENDPOINTS:
                raise ServeProtocolError(
                    "unknown-endpoint",
                    f"no endpoint {endpoint!r}; available: {', '.join(sorted(ENDPOINTS))}",
                )
            self._recorder.incr(f"serve.requests.by.{endpoint}")
            if endpoint == "status":
                return 200, self._status_payload()
            check_handshake(body, "client")
            cells = self._decode_cells(endpoint, body)
            return 200, self._answer(cells)
        except ServeProtocolError as exc:
            self._recorder.incr("serve.errors")
            return _ERROR_STATUS[exc.kind], error_envelope(exc.kind, str(exc))
        finally:
            self._recorder.observe("serve.request.seconds", monotonic() - started)

    def _decode_cells(self, endpoint: str, body: dict) -> list[CellSpec]:
        raw = body.get("cells")
        if not isinstance(raw, list) or not raw:
            raise ServeProtocolError("bad-request", "'cells' must be a non-empty list")
        cells = [decode_cell(item) for item in raw]
        kinds = {type(cell).__name__ for cell in cells}
        if endpoint == "verdict" and (len(cells) != 1 or kinds != {"VerdictSpec"}):
            raise ServeProtocolError(
                "bad-request", "'verdict' takes exactly one verdict cell"
            )
        if endpoint == "matrix" and kinds != {"VerdictSpec"}:
            raise ServeProtocolError(
                "bad-request", "'matrix' takes verdict cells only"
            )
        if endpoint == "check" and kinds != {"OutcomeSpec"}:
            raise ServeProtocolError(
                "bad-request", "'check' takes outcomes cells only"
            )
        return cells

    def _answer(self, cells: list[CellSpec]) -> dict:
        """Cache-first evaluation: hits inline, misses through the pool."""
        self._recorder.incr("serve.cells.remote", len(cells))
        results: list = [None] * len(cells)
        miss_indices: list[int] = []
        for i, cell in enumerate(cells):
            cached = self.cache.load(cell)
            if cached is not None:
                results[i] = cached
            else:
                miss_indices.append(i)
        hits = len(cells) - len(miss_indices)
        if hits:
            self._recorder.incr("serve.cache.remote_hits", hits)
        jobs: list[tuple[_Job, list[int]]] = []
        misses = [cells[i] for i in miss_indices]
        for test, group_indices in _group_by_test(misses):
            job = _Job(
                next(self._batch_counter), test, [misses[j] for j in group_indices]
            )
            jobs.append((job, [miss_indices[j] for j in group_indices]))
            self._queue.push(job)
        self._recorder.observe("serve.queue.depth", self._queue.depth())
        for job, indices in jobs:
            job.done.wait()
            for index, result in zip(indices, job.results):
                results[index] = result
        return response_envelope(
            results=[encode_result(r) for r in results],
            stats={"remote_hits": hits, "evaluated": len(miss_indices)},
        )

    def _status_payload(self) -> dict:
        inventory = self.cache.stats()
        return response_envelope(
            endpoints=sorted(ENDPOINTS),
            workers=self._pool.workers,
            dispatchers=len(self._dispatchers),
            queue_depth=self._queue.depth(),
            cache={
                "dir": str(self.cache.root),
                "entries": inventory.entries,
                "entry_bytes": inventory.entry_bytes,
                "tmp_files": inventory.tmp_files,
            },
            counters=self._recorder.snapshot().counters,
        )

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self, index: int) -> None:
        while not self._stop.is_set():
            job = self._queue.pop(index, timeout=0.1)
            if job is None:
                continue
            try:
                job.results = self._run_job(job)
            except Exception as exc:  # pragma: no cover - last-resort guard
                job.results = [
                    CellFailure(job.test.name, "error", f"{type(exc).__name__}: {exc}")
                ] * len(job.cells)
            finally:
                job.done.set()

    def _run_job(self, job: _Job) -> list:
        """One batch through the warm pool under the policy's semantics."""
        self._recorder.incr("serve.batches.dispatched")
        attempt = 1
        while True:
            payload = (
                job.batch_index,
                attempt,
                job.test,
                job.cells,
                str(self.cache.root),
                True,  # collect worker stats; snapshots merge into status
                None,  # fault plans are a local-engine test harness
            )
            generation, future = self._pool.submit(payload)
            with self._inflight_lock:
                self._inflight += 1
                self._recorder.observe("serve.workers.busy", self._inflight)
            try:
                tagged = future.result(timeout=self.policy.timeout)
            except FutureTimeout:
                self._pool.restart(generation)
                reason, message = (
                    "timeout",
                    f"batch exceeded the {self.policy.timeout}s deadline",
                )
            except BrokenProcessPool:
                if not self._pool.restart(generation):
                    continue  # collateral damage of another batch's kill
                reason, message = "crash", "worker process died mid-batch"
            else:
                tag = tagged[0]
                if tag == "ok":
                    _, batch_results, snapshot = tagged
                    if snapshot is not None:
                        self._recorder.merge(snapshot)
                    return list(batch_results)
                if tag == "domain-overflow":
                    return self._failures(job, "domain-overflow", tagged[2], attempt)
                reason, message = "error", tagged[2]
            finally:
                with self._inflight_lock:
                    self._inflight -= 1
            if attempt > self.policy.retries:
                return self._failures(job, reason, message, attempt)
            attempt += 1
            _backoff_sleep(self.policy, attempt)

    def _failures(self, job: _Job, reason: str, message: str, attempts: int) -> list:
        if self.policy.on_error == ON_ERROR_QUARANTINE:
            self._recorder.incr("engine.batches.quarantined")
        failure = CellFailure(
            test_name=job.test.name, reason=reason, message=message, attempts=attempts
        )
        return [failure] * len(job.cells)

    # -- results for the cache-hit path --------------------------------

    def counters(self) -> dict[str, int]:
        """A copy of the daemon's counter totals (for status and tests)."""
        return self._recorder.snapshot().counters

    def close(self) -> None:
        """Stop dispatchers and shut the warm pool down."""
        self._stop.set()
        for thread in self._dispatchers:
            thread.join(timeout=2.0)
        self._pool.shutdown()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the daemon's telemetry is the log; stderr stays quiet

    def _service(self) -> VerdictService:
        return self.server.service  # type: ignore[attr-defined]

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        status, payload = self._service().handle(self.path.strip("/"), {})
        self._reply(status, payload)

    def do_POST(self) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length).decode("utf-8"))
        except ValueError:
            self._service()._recorder.incr("serve.requests")
            self._service()._recorder.incr("serve.errors")
            self._reply(400, error_envelope("bad-request", "request body is not JSON"))
            return
        status, payload = self._service().handle(self.path.strip("/"), body)
        self._reply(status, payload)


class VerdictServer:
    """The HTTP shell: a ``ThreadingHTTPServer`` bound to a service."""

    def __init__(
        self, service: VerdictService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.service = service  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._http.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "VerdictServer":
        """Serve on a background thread (tests, embedded use)."""
        self._thread = threading.Thread(target=self._http.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (`repro serve start`)."""
        try:
            self._http.serve_forever()
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.service.close()
