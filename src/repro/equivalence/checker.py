"""Axiomatic-vs-operational equivalence checking (Section IV / ref [80]).

The paper proves its two GAM definitions equivalent; this module checks the
property empirically by comparing complete outcome sets:

* the Figure 17 machine against the GAM axioms,
* the GAM0 machine variant against the GAM0 axioms,
* the SC and TSO reference machines against their axiomatic models.

``project="full"`` comparisons include every register and every named
location, so a mismatch anywhere in the final state is caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from ..core.axiomatic import MemoryModel, enumerate_outcomes
from ..core.operational import (
    GAM0_MACHINE,
    GAM_MACHINE,
    MachineVariant,
    operational_outcomes,
)
from ..core.reference_machines import sc_outcomes, tso_outcomes
from ..litmus.test import LitmusTest, Outcome
from ..models.spec import resolve_model
from .randprog import RandomProgramConfig, random_suite

__all__ = [
    "EquivalenceReport",
    "check_pair",
    "default_pairs",
    "check_suite",
    "fuzz_equivalence",
]


@dataclass(frozen=True)
class EquivalenceReport:
    """Result of one outcome-set comparison.

    Attributes:
        test_name: the litmus test compared.
        pair_name: which definition pair was compared (e.g. ``"gam"``).
        axiomatic: the axiomatic outcome set.
        operational: the machine's outcome set.
        failure: failure reason when either side's batch was skipped or
            quarantined under a non-raising engine policy — both outcome
            sets are empty and the comparison is *unanswered*, not
            equivalent.
    """

    test_name: str
    pair_name: str
    axiomatic: frozenset[Outcome]
    operational: frozenset[Outcome]
    failure: Optional[str] = None

    @property
    def equivalent(self) -> bool:
        """True when the two outcome sets coincide (and both were computed)."""
        return self.failure is None and self.axiomatic == self.operational

    def differences(self) -> tuple[frozenset[Outcome], frozenset[Outcome]]:
        """(operational-only outcomes, axiomatic-only outcomes)."""
        return (
            self.operational - self.axiomatic,
            self.axiomatic - self.operational,
        )


OutcomeFn = Callable[[LitmusTest], frozenset[Outcome]]


def _machine_fn(variant: MachineVariant) -> OutcomeFn:
    return lambda test: operational_outcomes(test, variant, project="full")


def _axiomatic_fn(model: MemoryModel) -> OutcomeFn:
    return lambda test: enumerate_outcomes(test, model, project="full")


def default_pairs() -> dict[str, tuple[OutcomeFn, OutcomeFn]]:
    """The four definition pairs this repository can cross-check."""
    return {
        "gam": (_axiomatic_fn(resolve_model("gam")), _machine_fn(GAM_MACHINE)),
        "gam0": (_axiomatic_fn(resolve_model("gam0")), _machine_fn(GAM0_MACHINE)),
        "sc": (
            _axiomatic_fn(resolve_model("sc")),
            lambda test: sc_outcomes(test, project="full"),
        ),
        "tso": (
            _axiomatic_fn(resolve_model("tso")),
            lambda test: tso_outcomes(test, project="full"),
        ),
    }


def check_pair(
    test: LitmusTest,
    pair_name: str,
    pairs: Optional[dict[str, tuple[OutcomeFn, OutcomeFn]]] = None,
) -> EquivalenceReport:
    """Compare one definition pair on one test."""
    pairs = pairs or default_pairs()
    ax_fn, op_fn = pairs[pair_name]
    return EquivalenceReport(
        test_name=test.name,
        pair_name=pair_name,
        axiomatic=ax_fn(test),
        operational=op_fn(test),
    )


def _engine_reports(
    tests: Sequence[LitmusTest],
    pair_names: Sequence[str],
    jobs: int,
    cache_dir: Optional[str],
    policy=None,
    fault_plan=None,
    evaluate=None,
) -> list[EquivalenceReport]:
    """Evaluate default-pair cells through the batch engine.

    Each (test, pair) comparison is two ordinary outcome cells — the
    axiomatic model under the default oracle and the same-named abstract
    machine under ``operational:<pair>`` — so equivalence checking shares
    the scheduler, the cache and the telemetry with every other grid.
    """
    from ..engine import CellFailure, OutcomeSpec, evaluate_cells

    if evaluate is None:
        evaluate = evaluate_cells
    known = default_pairs()
    for pair_name in pair_names:
        if pair_name not in known:
            raise KeyError(
                f"unknown definition pair {pair_name!r}; "
                f"available: {', '.join(known)}"
            )
    grid = [(test, pair_name) for test in tests for pair_name in pair_names]
    specs = []
    for test, pair_name in grid:
        specs.append(OutcomeSpec(test, pair_name, project="full"))
        specs.append(
            OutcomeSpec(
                test, pair_name, project="full", oracle=f"operational:{pair_name}"
            )
        )
    results = evaluate(
        specs, jobs=jobs, cache_dir=cache_dir, policy=policy,
        fault_plan=fault_plan,
    )
    reports = []
    for i, (test, pair_name) in enumerate(grid):
        axiomatic, operational = results[2 * i], results[2 * i + 1]
        failure = None
        for side in (axiomatic, operational):
            if isinstance(side, CellFailure):
                failure = side.reason
        if failure is not None:
            axiomatic = operational = frozenset()
        reports.append(
            EquivalenceReport(
                test_name=test.name,
                pair_name=pair_name,
                axiomatic=axiomatic,
                operational=operational,
                failure=failure,
            )
        )
    return reports


def check_suite(
    tests: Iterable[LitmusTest],
    pair_names: Sequence[str] = ("gam", "gam0", "sc", "tso"),
    pairs: Optional[dict[str, tuple[OutcomeFn, OutcomeFn]]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy=None,
    fault_plan=None,
    evaluate=None,
) -> list[EquivalenceReport]:
    """Compare the requested pairs over a whole suite.

    With the default pairs, evaluation goes through the batch engine
    (:mod:`repro.engine`): per-test candidate prefixes are shared across
    ``pair_names``, ``jobs`` fans tests out over a process pool and
    ``cache_dir`` makes repeat runs incremental.  A custom ``pairs``
    mapping may hold arbitrary callables (often closures the pool cannot
    ship), so it is evaluated in-process regardless of ``jobs``, and
    ``policy``/``fault_plan`` (the engine's fault-tolerance and
    fault-injection hooks) and ``evaluate`` (the engine-backend seam,
    e.g. a :class:`~repro.serve.RemoteScheduler` method) do not apply.
    """
    materialized = list(tests)
    if pairs is None:
        return _engine_reports(
            materialized, pair_names, jobs, cache_dir,
            policy=policy, fault_plan=fault_plan, evaluate=evaluate,
        )
    reports = []
    for test in materialized:
        for pair_name in pair_names:
            reports.append(check_pair(test, pair_name, pairs))
    return reports


def fuzz_equivalence(
    num_tests: int,
    seed: int = 0,
    config: Optional[RandomProgramConfig] = None,
    pair_names: Sequence[str] = ("gam", "gam0"),
    pairs: Optional[dict[str, tuple[OutcomeFn, OutcomeFn]]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> list[EquivalenceReport]:
    """Random-program equivalence fuzzing (deterministic per seed).

    Returns one report per (random test, pair); callers assert all
    ``report.equivalent``.  ``pairs``, ``jobs`` and ``cache_dir`` behave
    exactly as in :func:`check_suite`; test generation itself is always
    in-process so the sequence of random programs is identical whatever
    the fan-out.
    """
    tests = random_suite(num_tests, seed=seed, config=config, name_prefix="fuzz")
    return check_suite(
        tests, pair_names=pair_names, pairs=pairs, jobs=jobs, cache_dir=cache_dir
    )
