"""Seeded random litmus-program generation for equivalence fuzzing.

The paper's axiomatic and operational GAM definitions are proven equivalent
(reference [80]); our empirical analogue compares outcome sets over the
hand-written suite *and* over randomly generated programs.  The generator
below produces small loop-free multi-processor programs biased toward the
interesting features: same-address accesses, register dependencies
(including artificial ``x + r - r`` chains), fences and forward branches.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

from ..isa.expr import BinOp, Const, Expr, Reg
from ..isa.instructions import Branch, Fence, Instruction, Load, Nop, RegOp, Rmw, Store
from ..isa.program import Program
from ..litmus.dsl import LOCATION_STRIDE
from ..litmus.test import LitmusTest

__all__ = ["RandomProgramConfig", "random_litmus_test", "random_suite"]


class RandomProgramConfig:
    """Knobs for :func:`random_litmus_test`.

    Attributes:
        num_procs: number of processors.
        max_instrs: maximum instructions per processor.
        num_locations: shared memory locations (addresses stride-spaced).
        values: data values stores may write.
        registers: register names available per processor.
        fence_weight / branch_weight / regop_weight / load_weight /
        store_weight: relative instruction-kind frequencies.
        artificial_dep_prob: probability a load/store address becomes an
            artificial dependency expression ``loc + r - r``.
    """

    def __init__(
        self,
        num_procs: int = 2,
        max_instrs: int = 4,
        num_locations: int = 2,
        values: Sequence[int] = (1, 2),
        registers: Sequence[str] = ("r0", "r1", "r2"),
        load_weight: float = 4.0,
        store_weight: float = 4.0,
        regop_weight: float = 1.0,
        fence_weight: float = 1.0,
        branch_weight: float = 0.5,
        rmw_weight: float = 0.0,
        artificial_dep_prob: float = 0.2,
    ) -> None:
        self.num_procs = num_procs
        self.max_instrs = max_instrs
        self.num_locations = num_locations
        self.values = tuple(values)
        self.registers = tuple(registers)
        self.load_weight = load_weight
        self.store_weight = store_weight
        self.regop_weight = regop_weight
        self.fence_weight = fence_weight
        self.branch_weight = branch_weight
        self.rmw_weight = rmw_weight
        self.artificial_dep_prob = artificial_dep_prob


def _address_expr(
    rng: random.Random,
    config: RandomProgramConfig,
    addresses: Sequence[int],
) -> Expr:
    """A concrete or artificially dependent address expression."""
    addr = Const(rng.choice(addresses))
    if rng.random() < config.artificial_dep_prob:
        reg = Reg(rng.choice(config.registers))
        return BinOp("-", BinOp("+", addr, reg), reg)
    return addr


def _data_expr(rng: random.Random, config: RandomProgramConfig) -> Expr:
    """Store data: a constant or a register (creating data dependencies)."""
    if rng.random() < 0.5:
        return Const(rng.choice(config.values))
    return Reg(rng.choice(config.registers))


def _random_program(
    rng: random.Random,
    config: RandomProgramConfig,
    addresses: Sequence[int],
) -> Program:
    count = rng.randint(1, config.max_instrs)
    kinds = ["load", "store", "regop", "fence", "branch", "rmw"]
    weights = [
        config.load_weight,
        config.store_weight,
        config.regop_weight,
        config.fence_weight,
        config.branch_weight,
        config.rmw_weight,
    ]
    instrs: list[Instruction] = []
    labels: dict[str, int] = {}
    pending_branch: Optional[int] = None
    for i in range(count):
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "load":
            instrs.append(
                Load(rng.choice(config.registers), _address_expr(rng, config, addresses))
            )
        elif kind == "store":
            instrs.append(
                Store(_address_expr(rng, config, addresses), _data_expr(rng, config))
            )
        elif kind == "regop":
            source = Reg(rng.choice(config.registers))
            instrs.append(
                RegOp(
                    rng.choice(config.registers),
                    BinOp("+", source, Const(rng.choice(config.values))),
                )
            )
        elif kind == "fence":
            instrs.append(Fence(rng.choice("LS"), rng.choice("LS")))
        elif kind == "rmw":
            instrs.append(
                Rmw(
                    rng.choice(config.registers),
                    Const(rng.choice(addresses)),
                    Const(rng.choice(config.values)),
                )
            )
        elif kind == "branch" and pending_branch is None:
            label = f"L{len(labels)}"
            cond = BinOp("==", Reg(rng.choice(config.registers)), Const(0))
            instrs.append(Branch(cond, label))
            pending_branch = len(instrs)
            labels[label] = len(instrs)  # patched to a later position below
    # Point any pending branch label past a random later suffix.
    for label in labels:
        labels[label] = rng.randint(labels[label], len(instrs))
    return Program(instrs, labels)


def random_litmus_test(
    seed_or_rng: Union[int, random.Random],
    config: Optional[RandomProgramConfig] = None,
    name: Optional[str] = None,
) -> LitmusTest:
    """Generate a random loop-free litmus test (no asked outcome).

    Deterministic for a given seed and config, so failures reproduce.
    """
    rng = (
        seed_or_rng
        if isinstance(seed_or_rng, random.Random)
        else random.Random(seed_or_rng)
    )
    config = config or RandomProgramConfig()
    locations = {
        chr(ord("a") + i): LOCATION_STRIDE * (i + 1)
        for i in range(config.num_locations)
    }
    addresses = tuple(locations.values())
    programs = tuple(
        _random_program(rng, config, addresses) for _ in range(config.num_procs)
    )
    observed = frozenset(
        (proc, reg)
        for proc, program in enumerate(programs)
        for reg in program.registers()
    )
    return LitmusTest(
        name=name or f"random-{rng.getrandbits(32):08x}",
        programs=programs,
        locations=locations,
        initial_memory={},
        asked=None,
        expect={},
        observed=observed,
        source="random",
        description="randomly generated program for equivalence fuzzing",
    )


def random_suite(
    count: int,
    seed: int = 0,
    config: Optional[RandomProgramConfig] = None,
    name_prefix: str = "rand",
) -> list[LitmusTest]:
    """A deterministic corpus of ``count`` random tests from one seed.

    One :class:`random.Random` stream drives the whole corpus, so test
    ``i`` depends on the seed and its index only — the property the
    ``rand:`` suite spec and resumable campaigns rely on.  Tests are
    named ``{name_prefix}-{seed}-{i}``.
    """
    rng = random.Random(seed)
    return [
        random_litmus_test(rng, config, name=f"{name_prefix}-{seed}-{i}")
        for i in range(count)
    ]
