"""Empirical equivalence checking of GAM's two definitions (Section IV)."""

from .checker import (
    EquivalenceReport,
    check_pair,
    check_suite,
    default_pairs,
    fuzz_equivalence,
)
from .randprog import RandomProgramConfig, random_litmus_test

__all__ = [
    "EquivalenceReport",
    "check_pair",
    "check_suite",
    "default_pairs",
    "fuzz_equivalence",
    "RandomProgramConfig",
    "random_litmus_test",
]
