"""Canonical litmus-test identity: structural isomorphism hashing.

Two litmus tests are *isomorphic* when one maps onto the other by
renaming registers (per thread), renaming/relocating symbolic locations,
renaming branch labels, and permuting whole threads.  Every harness in
this repository is invariant under those renamings — the engine never
looks at a register's spelling, a location's address (beyond identity),
or a thread's position — so isomorphic tests have identical verdicts
under every model and running more than one of them is pure waste.

:func:`canonical_key` serializes a test into nested tuples with
first-use register/location numbering and minimizes over thread
permutations; :func:`canonical_hash` is its sha256.  The hash is the
repo's dedupe primitive: ``repro gen --dedupe`` and the ``L009``
duplicate-test diagnostic both key on it, and
:func:`edge_signature` inverts it against the cycle generator's
vocabulary to map arbitrary tests back to their diy-style edge
signature (``sb`` -> ``fencesl+fre+fencesl+fre``-free spellings aside,
``corr`` -> ``posrr+fre+rfe``).

One deliberate approximation: a ``Const`` operand whose value collides
with a location address is treated as a location reference.  Litmus
data values are tiny (0, 1, 2) and locations sit at
``LOCATION_STRIDE`` multiples, so collisions do not arise in practice.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from itertools import permutations
from typing import Mapping, Optional, Sequence

from ..isa.expr import BinOp, Const, Expr, Reg, UnOp
from ..isa.instructions import (
    Branch,
    Fence,
    Load,
    Nop,
    RegOp,
    Rmw,
    Store,
)
from ..isa.program import Program
from ..litmus.test import LitmusTest

__all__ = [
    "canonical_key",
    "canonical_hash",
    "edge_signature",
    "edge_signature_index",
    "dedupe_tests",
    "PERMUTATION_CAP",
]

PERMUTATION_CAP = 6
"""Thread-permutation minimization is exact up to this many threads
(720 orders); beyond it the given thread order is used as-is, trading
cross-permutation canonicity (never needed for litmus-sized tests) for
bounded work."""


def _serialize_program(
    program: Program,
    loc_ids: dict[int, int],
    location_addrs: frozenset[int],
) -> tuple[tuple[object, ...], dict[str, int]]:
    """One program as nested tuples, plus its register-renaming map.

    Registers take ids in first-use order (destination before operands,
    operands left to right); location addresses take ids from the shared
    ``loc_ids`` map, which assigns in first-use order across the whole
    serialization pass (so the ids depend on the thread order being
    tried, which is exactly what permutation minimization needs).
    """
    regs: dict[str, int] = {}

    def rid(name: str) -> int:
        return regs.setdefault(name, len(regs))

    def lid(addr: int) -> int:
        return loc_ids.setdefault(addr, len(loc_ids))

    def sexpr(expr: Expr) -> tuple[object, ...]:
        if isinstance(expr, Reg):
            return ("r", rid(expr.name))
        if isinstance(expr, Const):
            if expr.value in location_addrs:
                return ("loc", lid(expr.value))
            return ("c", expr.value)
        if isinstance(expr, BinOp):
            return ("b", expr.op, sexpr(expr.left), sexpr(expr.right))
        if isinstance(expr, UnOp):
            return ("u", expr.op, sexpr(expr.operand))
        raise TypeError(f"not an expression: {expr!r}")

    serialized: list[tuple[object, ...]] = []
    for instr in program:
        if isinstance(instr, Rmw):
            serialized.append(
                ("rmw", rid(instr.dst), sexpr(instr.addr), sexpr(instr.data))
            )
        elif isinstance(instr, Load):
            serialized.append(("ld", rid(instr.dst), sexpr(instr.addr)))
        elif isinstance(instr, Store):
            serialized.append(("st", sexpr(instr.addr), sexpr(instr.data)))
        elif isinstance(instr, RegOp):
            serialized.append(("op", rid(instr.dst), sexpr(instr.expr)))
        elif isinstance(instr, Branch):
            # Label names canonicalize to their target index.
            serialized.append(
                ("br", sexpr(instr.cond), program.labels[instr.target])
            )
        elif isinstance(instr, Fence):
            serialized.append(("fence", instr.pre, instr.post))
        elif isinstance(instr, Nop):
            serialized.append(("nop",))
        else:
            raise TypeError(f"unknown instruction kind: {instr!r}")
    return tuple(serialized), regs


def _serialize_test(
    test: LitmusTest, order: Sequence[int]
) -> tuple[object, ...]:
    """The full serialization of ``test`` with threads in ``order``."""
    location_addrs = frozenset(test.locations.values())
    loc_ids: dict[int, int] = {}
    programs: list[tuple[object, ...]] = []
    reg_maps: dict[int, dict[str, int]] = {}
    for original in order:
        serialized, regs = _serialize_program(
            test.programs[original], loc_ids, location_addrs
        )
        programs.append(serialized)
        reg_maps[original] = regs
    # Locations no instruction mentions still need stable ids.
    for addr in sorted(location_addrs):
        loc_ids.setdefault(addr, len(loc_ids))
    new_index = {original: position for position, original in enumerate(order)}

    def map_addr(addr: int) -> tuple[object, ...]:
        if addr in loc_ids:
            return ("loc", loc_ids[addr])
        return ("raw", addr)

    def map_reg(proc: int, reg: str) -> tuple[object, ...]:
        known = reg_maps.get(proc, {})
        if reg in known:
            return ("k", known[reg])
        return ("?", reg)

    asked: Optional[tuple[object, ...]] = None
    if test.asked is not None:
        asked_regs = tuple(
            sorted(
                (new_index.get(proc, proc), map_reg(proc, reg), value)
                for proc, reg, value in test.asked.regs
            )
        )
        asked_mem = tuple(
            sorted((map_addr(addr), value) for addr, value in test.asked.mem)
        )
        asked = (asked_regs, asked_mem)
    observed = tuple(
        sorted(
            (new_index.get(proc, proc), map_reg(proc, reg))
            for proc, reg in test.observed
        )
    )
    initial = tuple(
        sorted(
            (map_addr(addr), value)
            for addr, value in test.initial_memory.items()
        )
    )
    return (
        "litmus-v1",
        len(test.programs),
        tuple(programs),
        len(location_addrs),
        asked,
        observed,
        initial,
    )


def canonical_key(test: LitmusTest) -> tuple[object, ...]:
    """The canonical serialization: minimal over thread permutations.

    Invariant under per-thread register renaming, location renaming and
    re-addressing, branch-label renaming, and (up to
    :data:`PERMUTATION_CAP` threads) thread permutation.  Name, source,
    description and paper-verdict metadata are deliberately excluded:
    canonical identity is about what the test *does*.
    """
    n = test.num_procs
    if 1 < n <= PERMUTATION_CAP:
        return min(
            _serialize_test(test, perm) for perm in permutations(range(n))
        )
    return _serialize_test(test, tuple(range(n)))


def canonical_hash(test: LitmusTest) -> str:
    """sha256 hex digest of :func:`canonical_key` — the dedupe primitive."""
    key = canonical_key(test)
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@lru_cache(maxsize=None)
def edge_signature_index(max_edges: int = 4) -> Mapping[str, str]:
    """Canonical hash -> diy-style cycle name, over the generator's output.

    Enumerates every well-formed cycle up to ``max_edges`` edges, lowers
    each to a test, and indexes it by canonical hash.  Where distinct
    cycles lower to isomorphic tests the *first* in enumeration order
    (shortest, then lexicographic) wins, so signatures are the simplest
    spelling.  The result is cached per budget; treat it as read-only.
    """
    from ..litmus.frontend.gen import cycle_name, cycle_to_test, enumerate_cycles

    index: dict[str, str] = {}
    for cycle in enumerate_cycles(max_edges):
        test = cycle_to_test(cycle)
        index.setdefault(canonical_hash(test), cycle_name(cycle))
    return index


def edge_signature(test: LitmusTest, max_edges: int = 4) -> Optional[str]:
    """The test's diy-style edge signature, if one exists within budget.

    Returns the cycle name (e.g. ``"posrr+fre+rfe"``) when ``test`` is
    isomorphic to a generated critical cycle of at most ``max_edges``
    edges, else ``None``.
    """
    return edge_signature_index(max_edges).get(canonical_hash(test))


def dedupe_tests(
    tests: Sequence[LitmusTest],
) -> tuple[list[LitmusTest], list[tuple[LitmusTest, str]]]:
    """Drop isomorphic duplicates, keeping the first of each class.

    Returns ``(kept, dropped)`` where ``dropped`` pairs each removed test
    with the name of the kept representative it duplicates.  Order is
    preserved, so deduping a deterministic suite is deterministic.
    """
    kept: list[LitmusTest] = []
    dropped: list[tuple[LitmusTest, str]] = []
    by_hash: dict[str, LitmusTest] = {}
    for test in tests:
        digest = canonical_hash(test)
        if digest in by_hash:
            dropped.append((test, by_hash[digest].name))
        else:
            by_hash[digest] = test
            kept.append(test)
    return kept, dropped
