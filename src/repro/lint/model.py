"""Model-spec analyzers: the ``M###`` diagnostics.

:func:`lint_model` checks one :class:`~repro.core.axiomatic.MemoryModel`
against the Definition 6 clause vocabulary: unknown clause specs,
duplicates, the SALdLd-vs-SALdLdARM policy conflict, and clauses that
are statically *subsumed* by stronger clauses already present, per the
declared implication lattice :data:`IMPLICATIONS`.  :func:`lint_models`
adds the cross-model checks — name collisions within the linted set and
canonical identity with a registry model under a different name.

The lattice is deliberately conservative: it declares only implications
that hold *per edge set* for every program (a clause is subsumed only
when every edge it can ever contribute is contributed by the
antecedents).  Clauses whose edges reach non-memory instructions
(``AddrSt``, ``SAStLd``, ``RegRAW``, ``BrSt``, ``FenceOrd``) are never
claimed subsumed by memory-to-memory pairwise orders.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..core.axiomatic import MemoryModel

if TYPE_CHECKING:  # runtime import stays lazy to keep lint imports light
    from ..models.registry import ModelRegistry
from ..core.ppo import (
    DYNAMIC_CLAUSES,
    PARAMETRIC_CLAUSES,
    STATIC_CLAUSES,
    clause_spec,
)
from .diagnostics import Diagnostic, make

__all__ = [
    "IMPLICATIONS",
    "canonical_model_key",
    "lint_model",
    "lint_models",
]

IMPLICATIONS: tuple[tuple[frozenset[str], str, str], ...] = (
    (
        frozenset(("PairwiseOrder(L,L)",)),
        "SALdLd",
        "PairwiseOrder(L,L) orders every same-thread load pair; the "
        "same-address subset SALdLd adds nothing",
    ),
    (
        frozenset(("PairwiseOrder(L,L)",)),
        "SALdLdARM",
        "PairwiseOrder(L,L) orders every same-thread load pair; the "
        "dynamic same-address subset SALdLdARM adds nothing and forces "
        "the slow enumeration path",
    ),
    (
        frozenset(("PairwiseOrder(S,L)",)),
        "SARmwLd",
        "PairwiseOrder(S,L) orders every store (RMWs included) before "
        "every younger load; the same-address RMW-to-load subset SARmwLd "
        "adds nothing",
    ),
    (
        frozenset(("PairwiseOrder(L,S)", "PairwiseOrder(S,S)")),
        "SAMemSt",
        "PairwiseOrder(L,S) and PairwiseOrder(S,S) together order every "
        "older memory access before every younger store; the "
        "same-address subset SAMemSt adds nothing",
    ),
)
"""The declared implication lattice: ``(antecedent specs, implied spec,
why)``.  A model carrying all antecedents *and* the implied clause gets
an ``M003`` subsumed-clause finding for the implied clause."""


def canonical_model_key(model: MemoryModel) -> tuple[object, ...]:
    """Canonical content identity of a model, ignoring its name.

    Sorted static clause specs, sorted dynamic clause specs, the
    load-value axiom, and the coherence side condition — exactly the
    semantic content; clause order, description and name are erased.
    """
    return (
        tuple(sorted(clause_spec(clause) for clause in model.clauses)),
        tuple(sorted(clause_spec(clause) for clause in model.dynamic_clauses)),
        model.load_value,
        model.requires_coherence,
    )


def _all_specs(model: MemoryModel) -> list[str]:
    """Every clause spec of a model, static then dynamic, in order."""
    return [clause_spec(clause) for clause in model.clauses] + [
        clause_spec(clause) for clause in model.dynamic_clauses
    ]


def lint_model(model: MemoryModel) -> list[Diagnostic]:
    """Run the per-model checks (``M001``-``M004``) on one model."""
    findings: list[Diagnostic] = []
    specs = _all_specs(model)
    present = frozenset(specs)

    # M001: clause specs outside the vocabulary catalogs.
    for spec in specs:
        base = spec.split("(", 1)[0]
        if (
            base not in STATIC_CLAUSES
            and base not in DYNAMIC_CLAUSES
            and base not in PARAMETRIC_CLAUSES
        ):
            findings.append(
                make(
                    "M001",
                    model.name,
                    f"clause {spec!r} is outside the Definition 6 "
                    "vocabulary; .model round trips and docs cannot "
                    "represent it",
                )
            )

    # M002: the same clause twice (across static + dynamic lists).
    reported: set[str] = set()
    seen: set[str] = set()
    for spec in specs:
        if spec in seen and spec not in reported:
            reported.add(spec)
            findings.append(
                make(
                    "M002",
                    model.name,
                    f"clause {spec!r} appears more than once; the "
                    "duplicate adds no edges but changes the model's "
                    "content digest",
                )
            )
        seen.add(spec)

    # M004: rival same-address load-load policies together.
    if "SALdLd" in present and "SALdLdARM" in present:
        findings.append(
            make(
                "M004",
                model.name,
                "carries both SALdLd and SALdLdARM; the static clause "
                "dominates and the dynamic one is dead code that forces "
                "the slow enumeration path",
            )
        )

    # M003: statically subsumed clauses.
    for antecedents, implied, why in IMPLICATIONS:
        if implied in present and antecedents <= present:
            sources = " + ".join(sorted(antecedents))
            findings.append(
                make(
                    "M003",
                    model.name,
                    f"clause {implied!r} is statically subsumed by "
                    f"{sources}: {why}",
                )
            )
    return findings


def lint_models(
    models: Sequence[MemoryModel],
    registry: Optional["ModelRegistry"] = None,
) -> list[Diagnostic]:
    """Lint a model set: per-model checks plus ``M005``/``M006``.

    Args:
        models: the models, in a deterministic order.
        registry: the :class:`~repro.models.registry.ModelRegistry` to
            compare canonical content against for ``M005`` (default: the
            process-wide zoo registry).

    Returns:
        every finding, grouped per model in input order.
    """
    from ..models.registry import REGISTRY

    if registry is None:
        registry = REGISTRY
    twin_index: dict[tuple[object, ...], str] = {}
    for name in registry.names():
        twin_index.setdefault(canonical_model_key(registry.get(name)), name)

    findings: list[Diagnostic] = []
    first_by_name: dict[str, int] = {}
    for position, model in enumerate(models):
        findings.extend(lint_model(model))
        if model.name in first_by_name:
            findings.append(
                make(
                    "M006",
                    model.name,
                    f"duplicate model name: position {position} shadows "
                    f"position {first_by_name[model.name]} in the linted "
                    "set; downstream tables key models by name",
                )
            )
        else:
            first_by_name[model.name] = position
        twin = twin_index.get(canonical_model_key(model))
        if twin is not None and twin != registry.canonical_name(model.name):
            findings.append(
                make(
                    "M005",
                    model.name,
                    f"canonically identical to registry model {twin!r} "
                    "(same clauses, load-value axiom and coherence flag)",
                )
            )
    return findings
