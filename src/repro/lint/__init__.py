"""Static diagnostics for litmus tests, model specs and repo invariants.

The lint subsystem answers, *before* any engine time is spent: is this
input well-formed, non-redundant, and consistent with what the rest of
the repository assumes?  Three analyzer tiers share one diagnostics
vocabulary (:mod:`.diagnostics` — stable codes, severities, spans,
text/JSON renderers):

* **Litmus analysis** (:mod:`.litmus`, codes ``L###``) — register
  hygiene, vacuous final conditions, location-map consistency, and
  isomorphic-duplicate detection via the canonical event-graph hash in
  :mod:`.canon` (which also recovers each test's diy-style edge
  signature from the generator's 23-edge vocabulary).
* **Model analysis** (:mod:`.model`, codes ``M###``) — clause-vocabulary
  conformance, duplicate/conflicting/subsumed clause combinations, and
  canonical-twin detection against the registry zoo.
* **Repo-invariant AST lint** (:mod:`.repo`, codes ``R###``) — the
  determinism, picklability and cache-versioning conventions engine
  correctness rests on, run by ``tools/lint_repro.py`` and CI.

Surfaces: the ``repro lint`` CLI command, pre-flight hooks in
``repro gen`` / ``repro hunt`` (via :func:`preflight_tests` /
:func:`preflight_models`), and ``repro gen --dedupe``
(:func:`~repro.lint.canon.dedupe_tests`).
"""

from __future__ import annotations

from typing import Sequence

from ..core.axiomatic import MemoryModel
from ..litmus.test import LitmusTest
from .canon import (
    canonical_hash,
    canonical_key,
    dedupe_tests,
    edge_signature,
    edge_signature_index,
)
from .diagnostics import CODES, CodeInfo, Diagnostic, LintReport, Severity, make
from .litmus import lint_test, lint_tests
from .model import canonical_model_key, lint_model, lint_models

__all__ = [
    "Severity",
    "Diagnostic",
    "CodeInfo",
    "CODES",
    "LintReport",
    "make",
    "canonical_key",
    "canonical_hash",
    "canonical_model_key",
    "edge_signature",
    "edge_signature_index",
    "dedupe_tests",
    "lint_test",
    "lint_tests",
    "lint_model",
    "lint_models",
    "preflight_tests",
    "preflight_models",
]


def preflight_tests(tests: Sequence[LitmusTest]) -> list[Diagnostic]:
    """Error-level litmus findings only — the gen/hunt admission check.

    Edge-signature matching is disabled (it is informational and costs a
    generator enumeration); warnings pass.  A non-empty result means the
    suite should be refused.
    """
    return [
        finding
        for finding in lint_tests(tests, signature_edges=0)
        if finding.severity is Severity.ERROR
    ]


def preflight_models(models: Sequence[MemoryModel]) -> list[Diagnostic]:
    """Error-level model findings only — the hunt admission check."""
    return [
        finding
        for finding in lint_models(models)
        if finding.severity is Severity.ERROR
    ]
