"""Repo-invariant AST checks: the ``R###`` diagnostics.

The engine's correctness contract rests on invariants Python will not
enforce: determinism (the content-hashed result cache and campaign
resumption require every code path to be a pure function of its
inputs), picklability (work crosses a process-pool boundary), and cache
versioning (``ENGINE_VERSION`` must move when engine semantics move).
This module walks source files with :mod:`ast` and flags violations.

Scopes are path prefixes over repo-relative POSIX paths, so the checks
apply exactly where the invariant holds and nowhere else:

* ``R001`` (unseeded RNG) — ``src/repro/engine/``, ``src/repro/campaign/``;
* ``R002`` (bare-set iteration) — those plus ``src/repro/eval/`` and
  ``src/repro/lint/`` (this package renders reports and must itself be
  deterministic);
* ``R003`` (lambdas) — ``src/repro/engine/`` only, with an exemption
  for ``key=lambda ...`` keyword callbacks (they sort in-process and
  never cross the pickle boundary);
* ``R004`` (version bump) — a pure function over a changed-path list,
  wired to ``git diff`` by ``tools/lint_repro.py``;
* ``R005`` (raw clock reads) — ``src/repro/engine/``,
  ``src/repro/campaign/``: timing goes through :mod:`repro.obs`
  (``time_block``/``monotonic``) so it is free when stats are off and
  always lands in the run report; ``src/repro/obs/`` itself is the
  sanctioned wrapper and is exempt;
* ``R006`` (network imports) — all of ``src/repro/``: sockets and HTTP
  go through :mod:`repro.serve` (the versioned, content-validating
  protocol layer) so nothing else can grow an ad-hoc wire format;
  ``src/repro/serve/`` itself is the sanctioned wrapper and is exempt.

``tools/lint_repro.py`` is the CLI wrapper; this module stays importable
and unit-testable without a git checkout.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from .diagnostics import Diagnostic, make

__all__ = [
    "RNG_FUNCTIONS",
    "RNG_SCOPE",
    "DETERMINISM_SCOPE",
    "LAMBDA_SCOPE",
    "CLOCK_FUNCTIONS",
    "CLOCK_SCOPE",
    "CLOCK_ALLOWLIST",
    "NETWORK_MODULES",
    "NETWORK_SCOPE",
    "NETWORK_ALLOWLIST",
    "ENGINE_PATHS",
    "ENGINE_VERSION_FILE",
    "lint_source",
    "lint_file",
    "lint_tree",
    "check_engine_version_bump",
]

RNG_FUNCTIONS = frozenset(
    (
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gauss",
        "getrandbits",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "shuffle",
        "triangular",
        "uniform",
    )
)
"""Module-level :mod:`random` functions that draw from the process-global
(unseeded) generator."""

RNG_SCOPE = ("src/repro/engine/", "src/repro/campaign/")
"""Path prefixes where ``R001`` (unseeded RNG) applies."""

DETERMINISM_SCOPE = RNG_SCOPE + ("src/repro/eval/", "src/repro/lint/")
"""Path prefixes where ``R002`` (bare-set iteration) applies."""

LAMBDA_SCOPE = ("src/repro/engine/",)
"""Path prefixes where ``R003`` (engine lambdas) applies."""

CLOCK_FUNCTIONS = frozenset(
    (
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "time",
        "time_ns",
    )
)
""":mod:`time` functions that read a clock (the ``R005`` vocabulary)."""

CLOCK_SCOPE = ("src/repro/engine/", "src/repro/campaign/")
"""Path prefixes where ``R005`` (raw clock reads) applies."""

CLOCK_ALLOWLIST = ("src/repro/obs/",)
"""Paths exempt from ``R005``: the telemetry layer wraps the clock."""

NETWORK_MODULES = frozenset(
    (
        "http",
        "socket",
        "socketserver",
        "urllib.request",
        "xmlrpc",
    )
)
"""Module roots whose import is a network act (the ``R006`` vocabulary).

``urllib.parse`` is deliberately absent — splitting a URL string reads
no socket.  Submodules count via their root (``http.client``,
``http.server``, ``xmlrpc.client`` ...).
"""

NETWORK_SCOPE = ("src/repro/",)
"""Path prefixes where ``R006`` (network imports) applies."""

NETWORK_ALLOWLIST = ("src/repro/serve/",)
"""Paths exempt from ``R006``: the verdict service wraps the network."""

ENGINE_PATHS = ("src/repro/engine/", "src/repro/core/kernel.py")
"""Paths whose diffs require an ``ENGINE_VERSION`` bump (``R004``)."""

ENGINE_VERSION_FILE = "src/repro/engine/cells.py"
"""Where ``ENGINE_VERSION`` lives."""


def _in_scope(relpath: str, scope: Iterable[str]) -> bool:
    """True when ``relpath`` (POSIX, repo-relative) falls under ``scope``."""
    return any(
        relpath == prefix or relpath.startswith(prefix) for prefix in scope
    )


def _is_bare_set(node: ast.expr) -> bool:
    """A freshly built set with no deterministic ordering applied."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _rng_findings(tree: ast.AST, relpath: str) -> list[Diagnostic]:
    """R001: module-level ``random`` API and unseeded ``Random()``."""
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr in RNG_FUNCTIONS:
                    findings.append(
                        make(
                            "R001",
                            relpath,
                            f"random.{func.attr}() draws from the "
                            "process-global unseeded generator; use "
                            "random.Random(seed)",
                            source=relpath,
                            line=node.lineno,
                        )
                    )
                elif func.attr == "Random" and not node.args:
                    findings.append(
                        make(
                            "R001",
                            relpath,
                            "random.Random() without a seed is "
                            "nondeterministic; pass an explicit seed",
                            source=relpath,
                            line=node.lineno,
                        )
                    )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in RNG_FUNCTIONS
            )
            if bad:
                findings.append(
                    make(
                        "R001",
                        relpath,
                        f"`from random import {', '.join(bad)}` imports "
                        "the process-global unseeded generator's "
                        "functions; use random.Random(seed)",
                        source=relpath,
                        line=node.lineno,
                    )
                )
    return findings


def _set_iteration_findings(tree: ast.AST, relpath: str) -> list[Diagnostic]:
    """R002: iteration (or ordered collection) directly over a bare set."""

    def flag(node: ast.expr, how: str) -> Diagnostic:
        return make(
            "R002",
            relpath,
            f"{how} a freshly built set is hash-order-dependent and "
            "nondeterministic across processes; sort it first "
            "(sorted(...))",
            source=relpath,
            line=node.lineno,
        )

    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.For) and _is_bare_set(node.iter):
            findings.append(flag(node.iter, "iterating"))
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            for generator in node.generators:
                if _is_bare_set(generator.iter):
                    findings.append(flag(generator.iter, "iterating"))
        elif isinstance(node, ast.Call):
            func = node.func
            ordered_ctor = (
                isinstance(func, ast.Name) and func.id in ("tuple", "list")
            )
            join = isinstance(func, ast.Attribute) and func.attr == "join"
            if (
                (ordered_ctor or join)
                and node.args
                and _is_bare_set(node.args[0])
            ):
                findings.append(flag(node.args[0], "collecting"))
    return findings


def _lambda_findings(tree: ast.AST, relpath: str) -> list[Diagnostic]:
    """R003: lambdas in engine code, exempting ``key=lambda`` callbacks."""
    exempt: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "key" and isinstance(
                    keyword.value, ast.Lambda
                ):
                    exempt.add(id(keyword.value))
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda) and id(node) not in exempt:
            findings.append(
                make(
                    "R003",
                    relpath,
                    "lambda in engine code cannot cross the process-pool "
                    "pickle boundary; use a module-level function "
                    "(in-process key= callbacks are exempt)",
                    source=relpath,
                    line=node.lineno,
                )
            )
    return findings


def _raw_clock_findings(tree: ast.AST, relpath: str) -> list[Diagnostic]:
    """R005: direct ``time.*`` clock reads (or importing those names)."""
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and func.attr in CLOCK_FUNCTIONS
            ):
                findings.append(
                    make(
                        "R005",
                        relpath,
                        f"time.{func.attr}() reads the clock directly; "
                        "use repro.obs.time_block(name) (or "
                        "repro.obs.monotonic() for elapsed displays) so "
                        "timing is free when stats are off and lands in "
                        "the run report",
                        source=relpath,
                        line=node.lineno,
                    )
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = sorted(
                alias.name
                for alias in node.names
                if alias.name in CLOCK_FUNCTIONS
            )
            if bad:
                findings.append(
                    make(
                        "R005",
                        relpath,
                        f"`from time import {', '.join(bad)}` bypasses "
                        "the telemetry layer; use "
                        "repro.obs.time_block/monotonic instead",
                        source=relpath,
                        line=node.lineno,
                    )
                )
    return findings


def _network_root(module: str) -> str | None:
    """The :data:`NETWORK_MODULES` root ``module`` falls under, if any."""
    for banned in NETWORK_MODULES:
        if module == banned or module.startswith(banned + "."):
            return banned
    return None


def _network_findings(tree: ast.AST, relpath: str) -> list[Diagnostic]:
    """R006: importing socket/HTTP machinery outside the serve package."""
    findings: list[Diagnostic] = []
    for node in ast.walk(tree):
        modules: list[str] = []
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            modules = [node.module]
        for module in modules:
            root = _network_root(module)
            if root is None:
                continue
            findings.append(
                make(
                    "R006",
                    relpath,
                    f"importing {module!r} opens a wire format outside "
                    "the sanctioned one; network code belongs in "
                    "src/repro/serve/, which versions its protocol and "
                    "validates content (see docs/serving.md)",
                    source=relpath,
                    line=node.lineno,
                )
            )
    return findings


def lint_source(text: str, relpath: str) -> list[Diagnostic]:
    """Run every applicable AST check on one file's source text.

    Args:
        text: the Python source.
        relpath: repo-relative POSIX path; decides which checks apply.

    Raises:
        SyntaxError: when ``text`` does not parse (the CLI wrapper turns
            this into its own error report).
    """
    findings: list[Diagnostic] = []
    if not relpath.endswith(".py"):
        return findings
    applicable = (
        _in_scope(relpath, RNG_SCOPE)
        or _in_scope(relpath, DETERMINISM_SCOPE)
        or _in_scope(relpath, LAMBDA_SCOPE)
        or _in_scope(relpath, CLOCK_SCOPE)
        or _in_scope(relpath, NETWORK_SCOPE)
    )
    if not applicable:
        return findings
    tree = ast.parse(text, filename=relpath)
    if _in_scope(relpath, RNG_SCOPE):
        findings.extend(_rng_findings(tree, relpath))
    if _in_scope(relpath, DETERMINISM_SCOPE):
        findings.extend(_set_iteration_findings(tree, relpath))
    if _in_scope(relpath, LAMBDA_SCOPE):
        findings.extend(_lambda_findings(tree, relpath))
    if _in_scope(relpath, CLOCK_SCOPE) and not _in_scope(
        relpath, CLOCK_ALLOWLIST
    ):
        findings.extend(_raw_clock_findings(tree, relpath))
    if _in_scope(relpath, NETWORK_SCOPE) and not _in_scope(
        relpath, NETWORK_ALLOWLIST
    ):
        findings.extend(_network_findings(tree, relpath))
    return findings


def lint_file(path: str, root: str) -> list[Diagnostic]:
    """Lint one file on disk, deriving its repo-relative scope path."""
    relpath = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    relpath = relpath.replace(os.sep, "/")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return lint_source(text, relpath)


def lint_tree(root: str, subdir: str = "src") -> list[Diagnostic]:
    """Lint every ``*.py`` under ``root/subdir``, in sorted path order."""
    base = os.path.join(root, subdir)
    findings: list[Diagnostic] = []
    paths: list[str] = []
    if os.path.isfile(base):
        paths.append(base)
    else:
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
    for path in paths:
        findings.extend(lint_file(path, root))
    return findings


def check_engine_version_bump(
    changed_paths: Sequence[str], version_bumped: bool
) -> list[Diagnostic]:
    """R004: engine-touching diffs must move ``ENGINE_VERSION``.

    Pure function: ``changed_paths`` are repo-relative POSIX paths from a
    diff, ``version_bumped`` says whether the ``ENGINE_VERSION``
    assignment in :data:`ENGINE_VERSION_FILE` differs between the diff's
    endpoints.  ``tools/lint_repro.py --diff-base REF`` supplies both
    from git.
    """
    normalized = [path.replace(os.sep, "/") for path in changed_paths]
    offending = sorted(
        path for path in normalized if _in_scope(path, ENGINE_PATHS)
    )
    if not offending or version_bumped:
        return []
    return [
        make(
            "R004",
            ENGINE_VERSION_FILE,
            "diff touches engine code ("
            + ", ".join(offending)
            + ") without bumping ENGINE_VERSION; the on-disk result "
            "cache would serve stale verdicts",
            source=ENGINE_VERSION_FILE,
        )
    ]
