"""Litmus-test analyzers: the ``L###`` diagnostics.

:func:`lint_test` runs the per-test checks (register hygiene, vacuous
final conditions, location-map consistency); :func:`lint_tests` adds the
cross-test checks — isomorphic-duplicate detection (``L009``) and
diy-style edge-signature recovery (``L010``) — both built on the
canonical hash in :mod:`.canon`.

All checks are *static*: they look only at programs, location maps and
outcome specs, never at executions, so linting a thousand-test corpus
costs milliseconds where evaluating it costs minutes.
"""

from __future__ import annotations

from typing import Sequence

from ..isa.expr import BinOp, Const, Expr, UnOp, evaluate, registers_read
from ..isa.instructions import Load, Rmw, Store
from ..litmus.test import LitmusTest
from .canon import canonical_hash, edge_signature
from .diagnostics import Diagnostic, make

__all__ = ["lint_test", "lint_tests", "MIN_SIGNATURE_EDGES"]

MIN_SIGNATURE_EDGES = 3
"""Smallest meaningful edge-signature budget (the shortest well-formed
cycle has three edges); budgets below it disable ``L010`` matching."""


def _const_leaves(expr: Expr) -> frozenset[int]:
    """Every ``Const`` value syntactically inside ``expr``."""
    if isinstance(expr, Const):
        return frozenset((expr.value,))
    if isinstance(expr, BinOp):
        return _const_leaves(expr.left) | _const_leaves(expr.right)
    if isinstance(expr, UnOp):
        return _const_leaves(expr.operand)
    return frozenset()


def _addr_candidates(
    expr: Expr, location_addrs: frozenset[int]
) -> frozenset[int]:
    """Statically resolvable addresses an address expression can denote.

    A register-free expression evaluates to exactly one address; an
    address-dependency expression (``a + r1 - r1``) is approximated by
    its ``Const`` leaves that are known location addresses.  Returns the
    empty set when nothing can be resolved (a fully dynamic address).
    """
    if not registers_read(expr):
        return frozenset((evaluate(expr, {}),))
    return frozenset(
        value for value in _const_leaves(expr) if value in location_addrs
    )


def lint_test(test: LitmusTest) -> list[Diagnostic]:
    """Run the per-test litmus checks (``L001``-``L008``) on one test."""
    findings: list[Diagnostic] = []
    source = test.source
    location_addrs = frozenset(test.locations.values())

    written: list[frozenset[str]] = []
    read: list[frozenset[str]] = []
    loaded_addrs: set[int] = set()
    has_dynamic_load = False
    for program in test.programs:
        writes: set[str] = set()
        reads: set[str] = set()
        for instr in program:
            writes |= instr.write_set()
            reads |= instr.read_set()
            if isinstance(instr, Rmw):
                # Definition 1 subtracts the dst from an RMW's read set
                # (the read of the *loaded* value is internal), but for
                # liveness purposes the data expression does consume it.
                reads |= registers_read(instr.data)
            if isinstance(instr, (Load, Rmw)):
                candidates = _addr_candidates(instr.addr, location_addrs)
                loaded_addrs |= candidates
                if not candidates:
                    # A load whose address is fully dynamic can read any
                    # location, so "never loaded" claims are unsound.
                    has_dynamic_load = True
        written.append(frozenset(writes))
        read.append(frozenset(reads))

    asked_reg_pairs: frozenset[tuple[int, str]] = frozenset()
    asked_mem_addrs: frozenset[int] = frozenset()
    if test.asked is not None:
        asked_reg_pairs = frozenset(
            (proc, reg) for proc, reg, _ in test.asked.regs
        )
        asked_mem_addrs = frozenset(addr for addr, _ in test.asked.mem)

    # L001 / L002: register hygiene per thread.
    for proc, program in enumerate(test.programs):
        for reg in sorted(read[proc] - written[proc]):
            findings.append(
                make(
                    "L001",
                    test.name,
                    f"P{proc} reads register {reg!r} which no P{proc} "
                    "instruction writes (it always holds the initial 0)",
                    source=source,
                )
            )
        for reg in sorted(written[proc] - read[proc]):
            if (proc, reg) in test.observed or (proc, reg) in asked_reg_pairs:
                continue
            findings.append(
                make(
                    "L002",
                    test.name,
                    f"P{proc} writes register {reg!r} but nothing reads, "
                    "observes or asks about it",
                    source=source,
                )
            )

    # L003: stores to locations nothing ever reads or checks.  A fully
    # dynamic load address makes every location potentially read, so the
    # check stands down for the whole test.
    observable = frozenset(loaded_addrs) | asked_mem_addrs
    for proc, program in enumerate(test.programs):
        if has_dynamic_load:
            break
        for index, instr in enumerate(program):
            if not isinstance(instr, (Store, Rmw)):
                continue
            candidates = _addr_candidates(instr.addr, location_addrs)
            if candidates and candidates.isdisjoint(observable):
                names = ", ".join(
                    test.location_name(addr) for addr in sorted(candidates)
                )
                findings.append(
                    make(
                        "L003",
                        test.name,
                        f"store at P{proc} I{index} writes location "
                        f"{names} which no thread loads and the asked "
                        "outcome never checks",
                        source=source,
                    )
                )

    # L004 / L005 / L006: asked-outcome consistency.
    if test.asked is not None:
        for proc, reg, value in sorted(test.asked.regs):
            if not 0 <= proc < test.num_procs:
                findings.append(
                    make(
                        "L006",
                        test.name,
                        f"asked outcome names processor P{proc}, but the "
                        f"test has {test.num_procs} thread(s)",
                        source=source,
                    )
                )
                continue
            if reg not in written[proc]:
                if value != 0:
                    findings.append(
                        make(
                            "L004",
                            test.name,
                            f"asked outcome binds P{proc}.{reg}={value}, "
                            f"but no P{proc} instruction writes {reg!r} — "
                            "the condition can never hold",
                            source=source,
                        )
                    )
                else:
                    findings.append(
                        make(
                            "L005",
                            test.name,
                            f"asked outcome binds P{proc}.{reg}=0, but no "
                            f"P{proc} instruction writes {reg!r} — the "
                            "binding is always true",
                            source=source,
                        )
                    )
    for proc, reg in sorted(test.observed):
        if not 0 <= proc < test.num_procs:
            findings.append(
                make(
                    "L006",
                    test.name,
                    f"observed projection names processor P{proc}, but "
                    f"the test has {test.num_procs} thread(s)",
                    source=source,
                )
            )

    # L007: the location map must be injective.
    by_addr: dict[int, list[str]] = {}
    for name in sorted(test.locations):
        by_addr.setdefault(test.locations[name], []).append(name)
    for addr in sorted(by_addr):
        names = by_addr[addr]
        if len(names) > 1:
            findings.append(
                make(
                    "L007",
                    test.name,
                    f"locations {', '.join(repr(n) for n in names)} all "
                    f"map to address {addr:#x} and silently alias",
                    source=source,
                )
            )

    # L008: initial values for addresses nothing can reach.
    stored_addrs: set[int] = set()
    for program in test.programs:
        for instr in program:
            if isinstance(instr, (Store, Rmw)):
                stored_addrs |= _addr_candidates(instr.addr, location_addrs)
    reachable = location_addrs | frozenset(loaded_addrs) | frozenset(stored_addrs)
    for addr in sorted(test.initial_memory):
        if addr not in reachable:
            findings.append(
                make(
                    "L008",
                    test.name,
                    f"initial value at address {addr:#x} — no location "
                    "names it and no instruction can access it",
                    source=source,
                )
            )
    return findings


def lint_tests(
    tests: Sequence[LitmusTest], signature_edges: int = 4
) -> list[Diagnostic]:
    """Lint a whole test set: per-test checks plus ``L009``/``L010``.

    Args:
        tests: the tests, in a deterministic order (the report follows it).
        signature_edges: cycle budget for ``L010`` edge-signature
            matching; values below :data:`MIN_SIGNATURE_EDGES` disable it
            (pre-flight callers do, to stay fast).

    Returns:
        every finding, grouped per test in input order.
    """
    findings: list[Diagnostic] = []
    first_by_hash: dict[str, LitmusTest] = {}
    for test in tests:
        findings.extend(lint_test(test))
        digest = canonical_hash(test)
        earlier = first_by_hash.get(digest)
        if earlier is None:
            first_by_hash[digest] = test
        elif earlier.name != test.name:
            findings.append(
                make(
                    "L009",
                    test.name,
                    f"structurally isomorphic to {earlier.name!r} "
                    f"(canonical hash {digest[:12]}); running both "
                    "doubles work without new information",
                    source=test.source,
                )
            )
        if signature_edges >= MIN_SIGNATURE_EDGES:
            signature = edge_signature(test, signature_edges)
            if signature is not None and signature != test.name:
                findings.append(
                    make(
                        "L010",
                        test.name,
                        "matches the generated critical cycle "
                        f"{signature!r}",
                        source=test.source,
                    )
                )
    return findings
