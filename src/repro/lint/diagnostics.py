"""Diagnostics: stable codes, severities, spans, text/JSON rendering.

Every finding the lint subsystem can produce is a :class:`Diagnostic`
carrying a *stable* code (``L###`` for litmus-test analysis, ``M###``
for model-spec analysis, ``R###`` for repo-invariant AST checks), a
severity, the subject it is about (a test name, a model name, a file),
and — when the finding is tied to a file — a source span.

The code catalog :data:`CODES` is the single source of truth: analyzers
construct findings through :func:`make` (which validates the code and
supplies its default severity), ``tools/gen_lint_docs.py`` renders
``docs/lint.md`` from the catalog's titles/summaries/examples, and the
test suite asserts every code has both a firing and a non-firing case.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "CodeInfo",
    "CODES",
    "LintReport",
    "make",
]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings fail ``repro lint`` (exit 1) and veto hunt/gen
    pre-flight; ``WARNING`` findings fail only under ``--strict``;
    ``INFO`` findings never affect the exit status.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: info < warning < error."""
        return ("info", "warning", "error").index(self.value)


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    Attributes:
        code: stable catalog code (a key of :data:`CODES`).
        severity: the finding's severity (usually the code's default).
        subject: what the finding is about — a test name, model name, or
            repo-relative file path.
        message: one-line human-readable explanation.
        source: originating file when known (``.litmus`` path, ``.py``
            path, or a test's provenance string), else ``""``.
        line: 1-based line number within ``source`` when known.
    """

    code: str
    severity: Severity
    subject: str
    message: str
    source: str = ""
    line: Optional[int] = None

    def span(self) -> str:
        """``source:line``, ``source``, or ``""`` — whatever is known."""
        if self.source and self.line is not None:
            return f"{self.source}:{self.line}"
        return self.source

    def render(self) -> str:
        """The one-line text rendering used by ``repro lint``."""
        where = self.span()
        prefix = f"{where}: " if where else ""
        return (
            f"{self.severity.value:7s} {self.code} "
            f"{prefix}{self.subject}: {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        """The JSON-object form used by ``repro lint --format json``."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
            "source": self.source,
            "line": self.line,
        }


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code.

    Attributes:
        code: the stable identifier (``L001``...).
        severity: the default severity findings of this code carry.
        title: short kebab-ish name (``undefined-register``).
        summary: one-paragraph description for ``docs/lint.md``.
        example: a short illustration of input that fires the code.
    """

    code: str
    severity: Severity
    title: str
    summary: str
    example: str


def _info(
    code: str, severity: Severity, title: str, summary: str, example: str
) -> tuple[str, CodeInfo]:
    return code, CodeInfo(code, severity, title, summary, example)


CODES: dict[str, CodeInfo] = dict(
    (
        _info(
            "L001",
            Severity.WARNING,
            "undefined-register",
            "A thread reads a register no instruction on that thread ever "
            "writes, so the read always returns the initial value 0.  "
            "Usually a typo'd register name.",
            "P0 runs `r2 = Ld [a]` but the final condition (or a later "
            "instruction) reads `r1`, which nothing on P0 writes.",
        ),
        _info(
            "L002",
            Severity.WARNING,
            "unused-register",
            "A thread writes a register that is never read on that thread, "
            "never constrained by the asked outcome, and not in the "
            "observed projection — the write is dead weight.",
            "P1 runs `r3 = Ld [b]` but neither `exists (...)` nor "
            "`observed [...]` nor any P1 instruction mentions `r3`.",
        ),
        _info(
            "L003",
            Severity.WARNING,
            "unobserved-store",
            "A store writes a location that no thread ever loads and that "
            "the asked outcome's memory conditions never check; nothing in "
            "the test can tell whether the store happened.",
            "P0 runs `St [c] 1` but no `Ld [c]` exists anywhere and the "
            "`exists` clause never mentions `c`.",
        ),
        _info(
            "L004",
            Severity.ERROR,
            "vacuous-register-condition",
            "The asked outcome binds a register the named thread never "
            "writes to a non-zero value.  Registers start at 0, so the "
            "condition can never hold and the test is vacuously forbidden "
            "everywhere.",
            "`exists (0:r9=1)` where P0 has no instruction writing `r9`.",
        ),
        _info(
            "L005",
            Severity.WARNING,
            "trivial-register-condition",
            "The asked outcome binds a register the named thread never "
            "writes to 0 — the binding is always true and constrains "
            "nothing.",
            "`exists (0:r9=0)` where P0 has no instruction writing `r9`.",
        ),
        _info(
            "L006",
            Severity.ERROR,
            "bad-processor-index",
            "The asked outcome or the observed projection names a "
            "processor index outside the test's thread range.",
            "A two-thread test with `exists (2:r1=1)`.",
        ),
        _info(
            "L007",
            Severity.ERROR,
            "location-aliasing",
            "Two distinct symbolic locations share one concrete address, "
            "so their initial values and accesses silently alias.  Every "
            "consumer assumes the location map is injective.",
            "`{ a @ 0x100; b @ 0x100; }` — `a` and `b` are the same cell.",
        ),
        _info(
            "L008",
            Severity.WARNING,
            "orphan-initial-value",
            "The initial-memory map sets an address that no symbolic "
            "location names and no instruction can access — the value is "
            "unreachable.",
            "An initial value at `0x900` when locations sit at "
            "`0x100`/`0x200` and all accesses go through them.",
        ),
        _info(
            "L009",
            Severity.WARNING,
            "duplicate-test",
            "The test is structurally isomorphic (identical up to "
            "register, location and thread renaming) to an earlier test "
            "in the linted set, detected by canonical event-graph hash.  "
            "Running both doubles work without new information.",
            "`sb` and a copy with threads swapped and `x`/`y` renamed to "
            "`a`/`b` hash identically.",
        ),
        _info(
            "L010",
            Severity.INFO,
            "edge-signature",
            "The test is isomorphic to a critical cycle from the "
            "generator's 23-edge vocabulary; the message gives its "
            "diy-style edge signature (the generated test's name).  "
            "Purely informational: it maps hand-written tests back onto "
            "the systematic corpus.",
            "`corr` matches the generated cycle `posrr+fre+rfe`.",
        ),
        _info(
            "L011",
            Severity.ERROR,
            "duplicate-test-name",
            "Two imported `.litmus` files define the same test name.  "
            "Every downstream consumer keys results by name, so one of "
            "the tests would be silently dropped.",
            "`repro import a.litmus b.litmus` where both headers read "
            "`GAM mytest`.",
        ),
        _info(
            "M001",
            Severity.WARNING,
            "uncataloged-clause",
            "A model carries a ppo clause whose spec is outside the "
            "Definition 6 vocabulary (the static, dynamic and parametric "
            "catalogs in `repro.core.ppo`).  Only programmatically built "
            "models can do this; such clauses are invisible to `.model` "
            "round trips and docs.",
            "A custom `Clause` subclass registered in a model but absent "
            "from `STATIC_CLAUSES`.",
        ),
        _info(
            "M002",
            Severity.ERROR,
            "duplicate-clause",
            "The same clause appears more than once across a model's "
            "static and dynamic clause lists.  The duplicate adds no "
            "edges but changes the model's content digest, splitting "
            "caches for no reason.",
            "A model with `ppo SAMemSt` twice.",
        ),
        _info(
            "M003",
            Severity.WARNING,
            "subsumed-clause",
            "A clause is statically implied by stronger clauses already "
            "present (per the declared implication lattice over the "
            "catalog): every edge it contributes is already contributed.  "
            "E.g. `PairwiseOrder(L,L)` orders *all* same-thread load "
            "pairs, making `SALdLd` redundant.",
            "A model with both `PairwiseOrder(L,L)` and `SALdLd`.",
        ),
        _info(
            "M004",
            Severity.ERROR,
            "conflicting-same-address-policy",
            "A model carries both `SALdLd` (GAM's same-address load-load "
            "order) and `SALdLdARM` (ARM's weaker alternative).  They are "
            "rival answers to the same design question (Section III-E); "
            "together the static clause dominates and the dynamic one is "
            "dead code that forces the slow enumeration path.",
            "`ppo SALdLd` and `dynamic SALdLdARM` in one model.",
        ),
        _info(
            "M005",
            Severity.INFO,
            "registry-twin",
            "The model is canonically identical (same sorted clause "
            "specs, load-value axiom and coherence flag) to a registry "
            "model under a different name — a syntactically distinct "
            "respelling of a known model.",
            "A `.model` file listing GAM's eight clauses in a different "
            "order under the name `mygam`.",
        ),
        _info(
            "M006",
            Severity.ERROR,
            "duplicate-model-name",
            "Two models in the linted set share one name.  Campaign "
            "state, verdict tables and reports key models by name, so a "
            "collision would silently drop one side.",
            "`repro lint --model a.model --model b.model` where both "
            "files say `model m1`.",
        ),
        _info(
            "R001",
            Severity.ERROR,
            "unseeded-rng",
            "Engine or campaign code calls the module-level `random` API "
            "(process-global, unseeded state) or constructs `Random()` "
            "without a seed.  Campaign resumption and the content-hashed "
            "result cache rely on every code path being a pure function "
            "of its inputs.",
            "`random.shuffle(tests)` inside `src/repro/campaign/`.",
        ),
        _info(
            "R002",
            Severity.ERROR,
            "unordered-set-iteration",
            "Determinism-critical code (engine, eval, campaign, lint) "
            "iterates directly over a freshly built `set`/`frozenset` — "
            "iteration order then depends on hash seeding and can differ "
            "between processes.  Sort first (`sorted(...)`).",
            "`for x in set(names):` or `tuple({a, b, c})` in "
            "`src/repro/engine/`.",
        ),
        _info(
            "R003",
            Severity.ERROR,
            "unpicklable-engine-lambda",
            "Engine code defines a `lambda`, which cannot cross the "
            "process-pool pickle boundary.  Use a module-level function.  "
            "`key=lambda ...` keyword callbacks are exempt: they stay "
            "in-process (sorting, not shipping).",
            "`callback = lambda cell: run(cell)` in `src/repro/engine/`.",
        ),
        _info(
            "R004",
            Severity.ERROR,
            "engine-version-not-bumped",
            "A diff touches the engine (`src/repro/engine/` or "
            "`src/repro/core/kernel.py`) without changing "
            "`ENGINE_VERSION` in `src/repro/engine/cells.py`.  The "
            "on-disk result cache keys on that version; forgetting the "
            "bump serves stale verdicts computed by old code.",
            "Editing `src/repro/core/kernel.py` while `ENGINE_VERSION = "
            "2` stays unchanged (checked with `--diff-base`).",
        ),
        _info(
            "R005",
            Severity.ERROR,
            "raw-clock-read",
            "Engine or campaign code reads a wall clock directly "
            "(`time.perf_counter()`, `time.time()`, `time.monotonic()`, "
            "...).  Timing belongs to the telemetry layer: use "
            "`repro.obs.time_block(name)` (or `repro.obs.monotonic()` "
            "for ad-hoc elapsed displays) so clock reads cost nothing "
            "when stats are off and every timing lands in the run "
            "report.  `src/repro/obs/` itself is the sanctioned wrapper "
            "and is exempt.",
            "`start = time.perf_counter()` inside `src/repro/engine/`.",
        ),
        _info(
            "R006",
            Severity.ERROR,
            "network-outside-serve",
            "Code under `src/repro/` imports socket or HTTP machinery "
            "(`socket`, `socketserver`, `http.*`, `urllib.request`, "
            "`xmlrpc`) outside `src/repro/serve/`.  Every byte that "
            "crosses a machine boundary must go through the serve "
            "package's versioned protocol — content-addressed JSON with "
            "a handshake and structured errors — so results stay "
            "interchangeable and nothing grows an ad-hoc wire format "
            "(see `docs/serving.md`).  `urllib.parse` is fine: splitting "
            "a URL string reads no socket.",
            "`import http.client` inside `src/repro/campaign/`.",
        ),
    )
)
"""The stable diagnostic-code catalog, in code order."""


def make(
    code: str,
    subject: str,
    message: str,
    source: str = "",
    line: Optional[int] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, validating ``code`` against the catalog.

    ``severity`` defaults to the code's catalog severity; passing one is
    only for the rare finding that is softer/harder than its code's norm.
    """
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else CODES[code].severity,
        subject=subject,
        message=message,
        source=source,
        line=line,
    )


@dataclass(frozen=True)
class LintReport:
    """An ordered collection of findings plus rendering/exit policy.

    Attributes:
        findings: the findings, in analyzer emission order (analyzers are
            deterministic, so identical inputs render identical reports).
    """

    findings: tuple[Diagnostic, ...] = ()

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": m, "info": k}`` over the findings."""
        totals = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            totals[finding.severity.value] += 1
        return totals

    def errors(self) -> tuple[Diagnostic, ...]:
        """Just the error-severity findings, in order."""
        return tuple(
            finding
            for finding in self.findings
            if finding.severity is Severity.ERROR
        )

    def exit_status(self, strict: bool = False) -> int:
        """0 for clean, 1 when errors (or, under ``strict``, warnings) exist."""
        counts = self.counts()
        if counts["error"]:
            return 1
        if strict and counts["warning"]:
            return 1
        return 0

    def render_text(self) -> str:
        """The multi-line human-readable report."""
        lines = [finding.render() for finding in self.findings]
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        """The machine-readable report (stable key order)."""
        payload = {
            "version": 1,
            "counts": self.counts(),
            "findings": [finding.to_json() for finding in self.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)
