"""Execution witnesses and model diffing.

Verdicts alone ("allowed"/"forbidden") are opaque; this module makes them
inspectable:

* :func:`find_witness` returns a concrete axiom-satisfying execution for an
  allowed outcome — the global memory order and read-from relation a user
  can follow line by line;
* :func:`render_execution` pretty-prints that witness in the paper's
  vocabulary (``<mo`` as a numbered list, ``rf`` as store -> load arrows);
* :func:`diff_models` computes the outcome-set difference of two models on
  one test, which is exactly how the paper distinguishes GAM from GAM0/ARM
  (e.g. the CoRR behaviour is in ``gam0 - gam``).
"""

from __future__ import annotations

from typing import Optional

from .core.axiomatic import (
    CandidatePrefix,
    MemoryModel,
    enumerate_executions,
    enumerate_outcomes,
)
from .core.events import Execution, base_index, INIT_PROC, RMW_STORE_PART
from .litmus.test import LitmusTest, Outcome

__all__ = ["find_witness", "render_execution", "diff_models", "render_diff"]


def find_witness(
    test: LitmusTest,
    model: MemoryModel,
    outcome: Optional[Outcome] = None,
) -> Optional[Execution]:
    """The first execution matching ``outcome`` (default: the asked one).

    Returns ``None`` when the model forbids the outcome — there is no
    witness, which *is* the explanation (no memory order satisfies all the
    model's ppo edges and the LoadValue axiom simultaneously).
    """
    if outcome is None:
        outcome = test.asked
    if outcome is None:
        raise ValueError(f"test {test.name!r} has no asked outcome")
    extra = {v for _, _, v in outcome.regs} | {v for _, v in outcome.mem}
    for execution in enumerate_executions(test, model, extra):
        if outcome.matches(execution.final_regs, execution.final_mem):
            return execution
    return None


def _event_label(test: LitmusTest, execution: Execution, eid) -> str:
    proc, index = eid
    event = execution.event(eid)
    location = test.location_name(event.addr)
    if proc == INIT_PROC:
        return f"init   {location} = {event.value}"
    part = ""
    if index >= RMW_STORE_PART:
        part = " (store half)"
    elif (proc, index + RMW_STORE_PART) in {e.eid for e in execution.events}:
        part = " (load half)"
    kind = "St" if event.is_store else "Ld"
    return f"P{proc}.I{base_index(index)}{part}: {kind} {location} = {event.value}"


def render_execution(test: LitmusTest, execution: Execution) -> str:
    """Pretty-print a witness: memory order, read-from and final state."""
    lines = [f"witness execution for {test.name!r}:", "", "global memory order <mo:"]
    for position, eid in enumerate(execution.mo):
        lines.append(f"  {position:2d}. {_event_label(test, execution, eid)}")
    lines.append("")
    lines.append("read-from (store -> load):")
    for load_eid, source_eid in sorted(execution.rf.items()):
        load = _event_label(test, execution, load_eid)
        source = _event_label(test, execution, source_eid)
        lines.append(f"  {source}  -->  {load}")
    lines.append("")
    lines.append("final registers:")
    for (proc, reg), value in sorted(execution.final_regs.items()):
        lines.append(f"  P{proc}.{reg} = {value}")
    lines.append("final memory:")
    for addr in sorted(test.locations.values()):
        value = execution.final_mem.get(addr, test.initial_memory.get(addr, 0))
        lines.append(f"  {test.location_name(addr)} = {value}")
    return "\n".join(lines)


def diff_models(
    test: LitmusTest,
    weaker: MemoryModel,
    stronger: MemoryModel,
    project: str = "full",
) -> tuple[frozenset[Outcome], frozenset[Outcome]]:
    """Outcome-set difference: ``(weaker - stronger, stronger - weaker)``.

    For a genuinely weaker model the second component is empty; the first
    holds exactly the behaviours the stronger model's extra constraints
    forbid (e.g. the CoRR stale read for ``gam0`` vs ``gam``).
    """
    prefix = CandidatePrefix(test)
    weak_outcomes = enumerate_outcomes(test, weaker, project=project, prefix=prefix)
    strong_outcomes = enumerate_outcomes(test, stronger, project=project, prefix=prefix)
    return (weak_outcomes - strong_outcomes, strong_outcomes - weak_outcomes)


def render_diff(
    test: LitmusTest,
    weaker: MemoryModel,
    stronger: MemoryModel,
    project: str = "full",
) -> str:
    """Human-readable model diff on one test."""
    weak_only, strong_only = diff_models(test, weaker, stronger, project)
    lines = [f"{test.name}: {weaker.name} vs {stronger.name}"]
    if not weak_only and not strong_only:
        lines.append("  identical outcome sets")
    for outcome in sorted(weak_only, key=str):
        lines.append(f"  only {weaker.name}: {outcome}")
    for outcome in sorted(strong_only, key=str):
        lines.append(f"  only {stronger.name}: {outcome}")
    return "\n".join(lines)
