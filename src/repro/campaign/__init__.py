"""Differential model-hunt campaigns: sharded, resumable, minimizing.

The paper's positioning claim — WMM sits usefully between SC/TSO and
ARM/Alpha — is only demonstrable by *hunting*: generating litmus tests at
scale, running them differentially across the model zoo, and boiling each
disagreement down to a witness small enough to reason about (the Herding
Cats methodology).  This package is that hunt as an open-ended,
interruptible process:

* :mod:`.state` — the persistent campaign directory: an immutable spec
  (suite, pairs, shard count, engine/model digests), atomic per-shard
  verdict records, the engine result cache, witnesses and the report;
* :mod:`.minimize` — greedy divergence-preserving shrinking of each
  discrepant test (instruction deletion + empty-processor removal);
* :mod:`.driver` — :func:`~repro.campaign.driver.run_hunt`, which
  evaluates incomplete shards through the batch engine
  (:mod:`repro.engine`), mines pair disagreements from the accumulated
  matrices (:mod:`repro.eval.discrepancy`), minimizes and re-verifies
  every witness, and writes the ranked report.

Everything downstream of the spec is deterministic — suite resolution,
sharding, verdict evaluation, mining order, greedy minimization — so a
campaign killed at any point reaches the *same* final report when
re-run, which is what makes ``repro hunt`` safe to drive from cron jobs,
CI, or (via the shard records) future multi-machine fan-out.
"""

from __future__ import annotations

from .driver import DEFAULT_PAIRS, HuntReport, WitnessRecord, run_hunt
from .minimize import (
    MinimizationResult,
    divergence_check,
    instruction_count,
    minimize_divergence,
)
from .state import CampaignDir, CampaignError, CampaignSpec, model_digest

__all__ = [
    "CampaignDir",
    "CampaignError",
    "CampaignSpec",
    "DEFAULT_PAIRS",
    "HuntReport",
    "MinimizationResult",
    "WitnessRecord",
    "divergence_check",
    "instruction_count",
    "minimize_divergence",
    "model_digest",
    "run_hunt",
]
