"""Persistent, resumable campaign state: one directory per hunt.

A campaign directory is the on-disk identity of a hunt.  Layout::

    <out>/
        campaign.json        the spec: suite, pairs, shard count, engine
                             version, model content digests
        cache/               the engine's content-hashed ResultCache
                             (fine-grained resume: interrupted shards
                             lose at most one in-flight cell)
        shards/shard-NNNN.json   one verdict record per completed shard
                             (coarse-grained resume: completed shards
                             are never re-evaluated)
        witnesses/*.litmus   minimized diverging tests
        report.txt / report.json   the ranked hunt report
        quarantine.json      per-test failure records (tagged reason,
                             message, traceback, attempt count, shard)
                             for batches an ExecutionPolicy quarantined;
                             derived from the shard records on every run,
                             so it is crash-safe and resumable for free
        stats.json           this run's telemetry report (repro.obs
                             RunReport; overwritten per run, rendered
                             and diffed by ``repro stats``)

Every JSON file is written through a temp file and an atomic rename, so a
killed run can never leave a torn record: on restart a shard file either
exists complete or not at all, and the spec check refuses to mix state
from a different suite, pair set, shard count, engine version or model
zoo into an existing directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Optional, Sequence

from ..engine import ENGINE_VERSION
from ..engine.cells import ModelLike, model_descriptor

__all__ = [
    "CampaignError",
    "CampaignSpec",
    "CampaignDir",
    "ORACLE_AXIOMATIC",
    "ORACLE_OPERATIONAL",
    "expand_pair_specs",
    "expand_oracle_pairs",
    "member_names",
    "model_digest",
    "oracle_digest",
    "suite_digest",
]

CAMPAIGN_VERSION = 1
"""On-disk campaign layout version; bumped on incompatible changes."""

QUARANTINE_VERSION = 1
"""``quarantine.json`` payload version; bumped on incompatible changes."""

ORACLE_AXIOMATIC = "axiomatic"
"""Campaign oracle mode: model-vs-model verdict hunts (the default)."""

ORACLE_OPERATIONAL = "operational"
"""Campaign oracle mode: axiomatic-vs-abstract-machine outcome hunts."""


class CampaignError(RuntimeError):
    """A campaign directory cannot be (re)used as requested."""


def model_digest(model: ModelLike) -> str:
    """Content digest of a model (clauses + axioms), for staleness
    detection: a model edited between runs — a registry factory *or* a
    ``.model`` file a spec resolves through — invalidates recorded
    verdicts."""
    descriptor = json.dumps(
        model_descriptor(model), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


def oracle_digest(oracle: str) -> str:
    """Content digest of an ``operational:<machine>`` oracle.

    The machine side of an oracle pair has no clauses to digest; its
    identity is the machine's variant policy
    (:func:`repro.engine.cells.oracle_descriptor`), so a changed machine
    definition invalidates recorded comparisons exactly like an edited
    model does."""
    from ..engine.cells import oracle_descriptor  # cycle-free import

    descriptor = json.dumps(
        oracle_descriptor(oracle), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(descriptor.encode("utf-8")).hexdigest()


class _MemberClaims:
    """Collision-checked model-name claiming shared by pair expansions."""

    def __init__(self) -> None:
        self.lookup: dict[str, ModelLike] = {}

    def claim(self, name: str, spec: str, model: ModelLike) -> None:
        existing = self.lookup.get(name)
        if existing is not None and model_descriptor(
            existing
        ) != model_descriptor(model):
            raise CampaignError(
                f"model name {name!r} (from spec {spec!r}) collides "
                "with a different model of the same name in this campaign"
            )
        self.lookup.setdefault(name, model)

    def expand_side(self, spec: str) -> list[str]:
        from ..models.registry import REGISTRY
        from ..models.spec import resolve_models

        if spec in REGISTRY:
            self.claim(spec, spec, spec)
            return [spec]
        names: list[str] = []
        for model in resolve_models(spec):
            self.claim(model.name, spec, model)
            names.append(model.name)
        return names


def expand_pair_specs(
    pairs: Sequence[tuple[str, str]],
) -> tuple[tuple[tuple[str, str], ...], dict[str, ModelLike]]:
    """Expand pair *specs* into concrete named pairs plus a model lookup.

    Each side of a pair is a model spec (see
    :func:`repro.models.spec.resolve_models`).  A registry name stays a
    name — preserving the historical campaign identity for plain pairs —
    while family specs (``space:...``, ``.model`` directories) fan out
    into one concrete pair per member, cross-producting when both sides
    are families.  Self-pairs (same display name on both sides) are
    skipped and duplicates deduplicated, in deterministic spec order.

    Returns:
        ``(concrete_pairs, models_by_name)`` where every name in a
        concrete pair keys a :data:`~repro.engine.ModelLike` in the
        lookup (the spec string itself for registry names, the resolved
        model otherwise).

    Raises:
        CampaignError: two different specs produce members with the same
            name but different content (the verdict table would silently
            conflate them).
    """
    claims = _MemberClaims()
    concrete: list[tuple[str, str]] = []
    for a_spec, b_spec in pairs:
        for name_a in claims.expand_side(a_spec):
            for name_b in claims.expand_side(b_spec):
                pair = (name_a, name_b)
                if name_a != name_b and pair not in concrete:
                    concrete.append(pair)
    if not concrete:
        raise CampaignError(
            f"pair specs {[':'.join(p) for p in pairs]} expand to no "
            "two-sided pairs"
        )
    return tuple(concrete), claims.lookup


def expand_oracle_pairs(
    pairs: Sequence[tuple[str, str]],
) -> tuple[tuple[tuple[str, str], ...], dict[str, ModelLike]]:
    """Expand (model spec, machine) pairs for an operational campaign.

    The first side of each pair is a model spec (family specs fan out,
    exactly as in :func:`expand_pair_specs`); the second names one of
    the abstract machines (:func:`repro.engine.cells
    .operational_machines`).  Every expanded member is paired with the
    machine's oracle label, so a concrete pair reads
    ``("gam", "operational:gam")``.

    Returns:
        ``(concrete_pairs, models_by_name)`` — the lookup covers the
        axiomatic sides only; machine sides carry no model.

    Raises:
        CampaignError: an unknown machine name, a member-name collision,
            or an empty expansion.
    """
    from ..engine.cells import operational_machines  # cycle-free import

    machines = operational_machines()
    claims = _MemberClaims()
    concrete: list[tuple[str, str]] = []
    for model_spec, machine in pairs:
        if machine not in machines:
            raise CampaignError(
                f"unknown operational machine {machine!r}; "
                f"supported: {', '.join(machines)}"
            )
        for name in claims.expand_side(model_spec):
            pair = (name, f"operational:{machine}")
            if pair not in concrete:
                concrete.append(pair)
    if not concrete:
        raise CampaignError(
            f"pair specs {[':'.join(p) for p in pairs]} expand to no "
            "oracle pairs"
        )
    return tuple(concrete), claims.lookup


def member_names(
    concrete_pairs: Sequence[tuple[str, str]],
) -> tuple[str, ...]:
    """Every model a concrete pair list mentions, first-seen order."""
    names: list[str] = []
    for a, b in concrete_pairs:
        for name in (a, b):
            if name not in names:
                names.append(name)
    return tuple(names)


def suite_digest(tests) -> str:
    """Content digest of a resolved suite (ordered test descriptors).

    A ``gen:`` spec's meaning is a function of the generator's code, and
    a ``.litmus`` path's meaning is a function of the files on disk —
    both can drift between runs of a long campaign.  Digesting the
    resolved tests lets :meth:`CampaignDir.check_spec` refuse a resume
    whose shard records describe tests the spec no longer produces.
    """
    from ..engine.cells import test_descriptor  # cycle-free import

    payload = json.dumps(
        [test_descriptor(test) for test in tests],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignSpec:
    """The immutable identity of one hunt campaign.

    Attributes:
        suite: the ``--suite`` spec the shards are generated from.
        pairs: the differentiated pair *specs*, in CLI order.  Under the
            default (axiomatic) oracle each side is a model spec —
            anything :func:`repro.models.spec.resolve_models` accepts, so
            one stored pair may expand to a whole family.  Under the
            operational oracle the first side is a model spec and the
            second names an abstract machine.
        num_shards: how many deterministic chunks the suite is split into.
        suite_digest: content digest of the *resolved* suite (see
            :func:`suite_digest`); ``""`` means unchecked.
        engine_version / campaign_version: staleness guards.  Execution
            policy (deadlines/retries/``on_error``) is deliberately *not*
            part of the identity, like ``jobs``: it changes how failures
            are handled, never what a recorded verdict means, so a
            campaign may be resumed under a different policy.
        oracle: :data:`ORACLE_AXIOMATIC` (model-vs-model verdict hunts)
            or :data:`ORACLE_OPERATIONAL` (axiomatic-vs-machine outcome
            hunts).
        model_digests: content digest per expanded member model.
    """

    suite: str
    pairs: tuple[tuple[str, str], ...]
    num_shards: int
    suite_digest: str = ""
    engine_version: int = ENGINE_VERSION
    campaign_version: int = CAMPAIGN_VERSION
    oracle: str = ORACLE_AXIOMATIC

    def expansion(
        self,
    ) -> tuple[tuple[tuple[str, str], ...], dict[str, ModelLike]]:
        """The concrete (named) pairs and model lookup the specs expand to.

        Re-computed on demand — deliberately, not cached: a ``.model``
        file edited between runs must change the expansion's digests so
        :meth:`CampaignDir.check_spec` refuses a stale resume.
        """
        if self.oracle == ORACLE_OPERATIONAL:
            return expand_oracle_pairs(self.pairs)
        return expand_pair_specs(self.pairs)

    @property
    def model_names(self) -> tuple[str, ...]:
        """Every expanded member model, deduplicated in first-seen order.

        Machine sides of operational pairs are not models and are
        excluded.
        """
        concrete, lookup = self.expansion()
        return tuple(
            name for name in member_names(concrete) if name in lookup
        )

    def to_json(self) -> dict:
        """The ``campaign.json`` payload (includes model digests).

        Axiomatic campaigns keep the historical payload shape; the
        operational oracle adds ``oracle`` plus per-machine digests.
        """
        concrete, lookup = self.expansion()
        payload = {
            "campaign_version": self.campaign_version,
            "engine_version": self.engine_version,
            "suite": self.suite,
            "suite_digest": self.suite_digest,
            "pairs": [list(pair) for pair in self.pairs],
            "num_shards": self.num_shards,
            "model_digests": {
                name: model_digest(lookup[name])
                for name in member_names(concrete)
                if name in lookup
            },
        }
        if self.oracle != ORACLE_AXIOMATIC:
            payload["oracle"] = self.oracle
            payload["machine_digests"] = {
                label: oracle_digest(label)
                for label in sorted(
                    {b for _, b in concrete if b not in lookup}
                )
            }
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignSpec":
        """Rebuild a spec from a ``campaign.json`` payload."""
        return cls(
            suite=payload["suite"],
            pairs=tuple((a, b) for a, b in payload["pairs"]),
            num_shards=int(payload["num_shards"]),
            suite_digest=payload.get("suite_digest", ""),
            engine_version=int(payload["engine_version"]),
            campaign_version=int(payload["campaign_version"]),
            oracle=payload.get("oracle", ORACLE_AXIOMATIC),
        )


def _write_text_atomic(path: pathlib.Path, text: str) -> None:
    """Write text through a temp file + rename (never a torn record)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _write_json_atomic(path: pathlib.Path, payload: dict) -> None:
    """Write JSON through a temp file + rename (never a torn record)."""
    _write_text_atomic(path, json.dumps(payload, sort_keys=True, indent=2))


class CampaignDir:
    """Filesystem accessor for one campaign directory.

    Construction is side-effect free — nothing is created on disk until
    :meth:`ensure_layout` or one of the writers runs, so probing a
    directory (e.g. a typo'd ``--resume`` target) leaves no litter.
    """

    def __init__(self, root: os.PathLike | str) -> None:
        self.root = pathlib.Path(root)

    def ensure_layout(self) -> None:
        """Create the campaign directory tree (idempotent)."""
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "shards").mkdir(exist_ok=True)
        (self.root / "witnesses").mkdir(exist_ok=True)

    @property
    def spec_path(self) -> pathlib.Path:
        """Path of ``campaign.json``."""
        return self.root / "campaign.json"

    @property
    def cache_dir(self) -> str:
        """The engine result-cache directory (created on first use)."""
        return str(self.root / "cache")

    @property
    def witness_dir(self) -> pathlib.Path:
        """Directory the minimized ``.litmus`` witnesses are written to."""
        return self.root / "witnesses"

    def shard_path(self, index: int) -> pathlib.Path:
        """Path of shard ``index``'s verdict record."""
        return self.root / "shards" / f"shard-{index:04d}.json"

    def load_spec(self) -> Optional[CampaignSpec]:
        """The stored spec, or ``None`` for a fresh directory.

        Raises :class:`CampaignError` when ``campaign.json`` exists but is
        unreadable (a directory that is *something else* should never be
        silently overwritten).
        """
        try:
            payload = json.loads(self.spec_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"unreadable campaign state {self.spec_path}: {exc}"
            ) from exc
        return CampaignSpec.from_json(payload)

    def check_spec(self, spec: CampaignSpec) -> None:
        """Refuse to mix ``spec`` into a directory holding different state.

        Compares the full stored payload — including model digests — so a
        campaign never resumes across a changed suite, pair set, shard
        count, engine version or model semantics.
        """
        stored = self.load_spec()
        if stored is None:
            return
        stored_payload = json.loads(self.spec_path.read_text())
        if stored_payload != spec.to_json():
            raise CampaignError(
                f"campaign at {self.root} was started with a different spec "
                f"(stored: suite={stored.suite!r} "
                f"pairs={[':'.join(p) for p in stored.pairs]} "
                f"shards={stored.num_shards}) — the suite, pairs, shard "
                "count, engine version, or model/suite content changed; "
                "use a fresh --out directory"
            )

    def write_spec(self, spec: CampaignSpec) -> None:
        """Persist the spec (atomic; must happen before any shard work)."""
        self.check_spec(spec)
        self.ensure_layout()
        _write_json_atomic(self.spec_path, spec.to_json())

    def load_shard(self, index: int) -> Optional[dict]:
        """Shard ``index``'s record, or ``None`` if not completed yet."""
        try:
            payload = json.loads(self.shard_path(index).read_text())
        except (OSError, ValueError):
            return None
        if not payload.get("complete"):
            return None
        return payload

    def write_shard(self, index: int, record: dict) -> None:
        """Persist one completed shard record (atomic)."""
        _write_json_atomic(self.shard_path(index), record)

    def completed_shards(self, num_shards: int) -> list[int]:
        """Indices of shards whose records are already on disk."""
        return [i for i in range(num_shards) if self.load_shard(i) is not None]

    def write_report(self, text: str, data: dict) -> None:
        """Persist the final hunt report (text + machine-readable JSON)."""
        _write_json_atomic(self.root / "report.json", data)
        _write_text_atomic(self.root / "report.txt", text)

    @property
    def quarantine_path(self) -> pathlib.Path:
        """Path of ``quarantine.json``."""
        return self.root / "quarantine.json"

    def write_quarantine(self, records: dict) -> None:
        """Persist the quarantine records (atomic).

        ``records`` maps test name → ``{reason, message, traceback,
        attempts, shard}``.  The file is *derived* state — rebuilt from
        the shard records on every run — so interrupted runs can never
        leave it inconsistent with the shards, and resume gets it right
        for free.  An empty record set removes the file rather than
        leaving a stale one behind.
        """
        if not records:
            try:
                self.quarantine_path.unlink()
            except OSError:
                pass
            return
        _write_json_atomic(
            self.quarantine_path,
            {"quarantine_version": QUARANTINE_VERSION, "records": records},
        )

    def load_quarantine(self) -> dict:
        """The stored quarantine records (empty when none were written).

        Raises :class:`CampaignError` on an unreadable or wrong-version
        payload — a malformed quarantine file means the directory was
        tampered with, not that nothing was quarantined.
        """
        try:
            text = self.quarantine_path.read_text()
        except FileNotFoundError:
            return {}
        except OSError as exc:
            raise CampaignError(
                f"unreadable quarantine state {self.quarantine_path}: {exc}"
            ) from exc
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise CampaignError(
                f"unreadable quarantine state {self.quarantine_path}: {exc}"
            ) from exc
        if payload.get("quarantine_version") != QUARANTINE_VERSION:
            raise CampaignError(
                f"unsupported quarantine_version in {self.quarantine_path}"
            )
        return dict(payload.get("records", {}))

    @property
    def stats_path(self) -> pathlib.Path:
        """Path of the run's telemetry report (``stats.json``)."""
        return self.root / "stats.json"

    def write_stats(self, payload: dict) -> None:
        """Persist the run's telemetry report (atomic).

        ``payload`` is a :meth:`repro.obs.RunReport.to_json` document;
        unlike shard records it describes *this run* (a resumed run
        overwrites it), so ``repro stats`` can diff a cold run against a
        warm resume.
        """
        _write_json_atomic(self.stats_path, payload)
