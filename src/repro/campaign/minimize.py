"""Witness minimization: greedy deletion that preserves a divergence.

A discrepant test found by a hunt is rarely minimal — generated cycles
carry fences, dependencies and observer reads that may be irrelevant to
the *particular* disagreement between two models.  This module shrinks a
diverging test the way C-reduce shrinks a crashing program: repeatedly
try deleting one instruction, keep the deletion if the model pair still
disagrees about the asked outcome, stop at a fixpoint.  Deleting an
instruction that wrote an asked-about register also drops that register's
binding from the asked outcome (a condition over a value nobody produces
can never diverge), and processors left with no instructions are removed
with the remaining processors renumbered.

Everything is deterministic: candidate deletions are tried in (processor,
instruction-index) order and the first success restarts the scan, so a
given (test, pair) always minimizes to the same witness — which is what
lets an interrupted campaign reproduce its report exactly on re-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.axiomatic import DomainOverflowError
from ..engine import (
    EngineWorkerError,
    ModelLike,
    OutcomeSpec,
    VerdictSpec,
    evaluate_cells,
)
from ..isa.program import Program, ProgramError
from ..litmus.test import LitmusTest, Outcome

__all__ = [
    "MinimizationResult",
    "divergence_check",
    "oracle_divergence_check",
    "minimize_divergence",
    "instruction_count",
]


def instruction_count(test: LitmusTest) -> int:
    """Total static instructions across all of a test's processors."""
    return sum(len(program) for program in test.programs)


@dataclass(frozen=True)
class MinimizationResult:
    """The outcome of minimizing one diverging test.

    Attributes:
        test: the minimized witness (still diverging, by construction).
        original_instrs / minimized_instrs: size before and after.
        checks: how many divergence re-checks the greedy search performed.
    """

    test: LitmusTest
    original_instrs: int
    minimized_instrs: int
    checks: int


def divergence_check(
    pair: tuple[ModelLike, ModelLike], cache_dir: Optional[str] = None
) -> Callable[[LitmusTest], bool]:
    """A predicate "do the pair's models disagree about ``test``?".

    Each side is a :data:`~repro.engine.ModelLike` — a registry name or a
    resolved :class:`~repro.core.axiomatic.MemoryModel` (how the campaign
    driver passes constructed family members).

    Verdicts go through the batch engine, so the two models share one
    candidate prefix per variant and — with ``cache_dir`` set — every
    check is cached: re-running an interrupted minimization replays its
    prior decisions from disk.  Variants the engine cannot evaluate
    (domain overflow and kin) count as non-diverging, which simply makes
    the minimizer reject that deletion.
    """
    model_a, model_b = pair

    def check(test: LitmusTest) -> bool:
        if test.asked is None or (not test.asked.regs and not test.asked.mem):
            return False
        try:
            verdict_a, verdict_b = evaluate_cells(
                [VerdictSpec(test, model_a), VerdictSpec(test, model_b)],
                cache_dir=cache_dir,
            )
        except (DomainOverflowError, EngineWorkerError):
            return False
        return verdict_a != verdict_b

    return check


def oracle_divergence_check(
    model: ModelLike, oracle: str, cache_dir: Optional[str] = None
) -> Callable[[LitmusTest], bool]:
    """A predicate "do the axioms and the machine disagree on ``test``?".

    The oracle analogue of :func:`divergence_check`: the test's
    full-projection outcome set is computed under the axiomatic ``model``
    and under ``oracle`` (an ``operational:<machine>`` string), and the
    divergence is set inequality — no asked outcome required, so randprog
    corpora minimize directly.  Both cells flow through the batch engine
    and the campaign cache exactly like verdict cells.
    """

    def check(test: LitmusTest) -> bool:
        if not any(len(program) for program in test.programs):
            return False
        try:
            axiomatic, operational = evaluate_cells(
                [
                    OutcomeSpec(test, model, project="full"),
                    OutcomeSpec(test, model, project="full", oracle=oracle),
                ],
                cache_dir=cache_dir,
            )
        except (DomainOverflowError, EngineWorkerError):
            return False
        return axiomatic != operational

    return check


def _written_registers(program: Program) -> frozenset[str]:
    """Every register some instruction of ``program`` can write."""
    written: set[str] = set()
    for instr in program:
        written |= instr.write_set()
    return frozenset(written)


def _prune_asked(
    asked: Optional[Outcome], programs: Sequence[Program]
) -> Optional[Outcome]:
    """Drop asked register bindings no remaining instruction can produce."""
    if asked is None:
        return None
    regs = frozenset(
        (proc, reg, value)
        for proc, reg, value in asked.regs
        if proc < len(programs) and reg in _written_registers(programs[proc])
    )
    return Outcome(regs, asked.mem)


def _rebuild(test: LitmusTest, programs: Sequence[Program]) -> LitmusTest:
    """A structural variant of ``test`` with new programs.

    Paper verdict expectations are dropped (they were claims about the
    original structure) and the observed set is re-derived from the pruned
    asked outcome.
    """
    return LitmusTest(
        name=test.name,
        programs=tuple(programs),
        locations=dict(test.locations),
        initial_memory=dict(test.initial_memory),
        asked=_prune_asked(test.asked, programs),
        expect={},
        observed=frozenset(),
        source=test.source,
        description=test.description,
    )


def _delete_instruction(
    test: LitmusTest, proc_index: int, instr_index: int
) -> Optional[LitmusTest]:
    """The variant with one instruction removed, or ``None`` if removal
    leaves the program malformed (e.g. a branch loses its target)."""
    program = test.programs[proc_index]
    instructions = list(program.instructions)
    del instructions[instr_index]
    labels = {
        name: target - 1 if target > instr_index else target
        for name, target in program.labels.items()
    }
    try:
        shrunk = Program(instructions, labels)
    except ProgramError:
        return None
    programs = list(test.programs)
    programs[proc_index] = shrunk
    return _rebuild(test, programs)


def _drop_empty_programs(test: LitmusTest) -> LitmusTest:
    """Remove instruction-less processors, renumbering the rest.

    An empty program contributes no events, so this is semantics-
    preserving; asked/observed processor ids shift down accordingly.
    """
    keep = [i for i, program in enumerate(test.programs) if len(program)]
    if len(keep) == len(test.programs) or not keep:
        return test
    renumber = {old: new for new, old in enumerate(keep)}
    asked = test.asked
    if asked is not None:
        asked = Outcome(
            frozenset(
                (renumber[proc], reg, value)
                for proc, reg, value in asked.regs
                if proc in renumber
            ),
            asked.mem,
        )
    return LitmusTest(
        name=test.name,
        programs=tuple(test.programs[i] for i in keep),
        locations=dict(test.locations),
        initial_memory=dict(test.initial_memory),
        asked=asked,
        expect={},
        observed=frozenset(),
        source=test.source,
        description=test.description,
    )


def minimize_divergence(
    test: LitmusTest,
    check: Callable[[LitmusTest], bool],
    max_checks: int = 10_000,
) -> MinimizationResult:
    """Greedily shrink ``test`` while ``check`` (the divergence) holds.

    Args:
        test: a diverging test (``check(test)`` must be true).
        check: the divergence predicate, typically from
            :func:`divergence_check`.
        max_checks: hard bound on predicate evaluations (a safety net; the
            greedy loop is quadratic in the instruction count, which for
            litmus-sized tests stays in the low hundreds).

    Returns:
        the fixpoint witness: no single instruction can be deleted without
        losing the divergence.

    Raises:
        ValueError: if ``test`` does not diverge to begin with.
    """
    if not check(test):
        raise ValueError(
            f"test {test.name!r} does not diverge for this model pair"
        )
    current = test
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for proc_index in range(len(current.programs)):
            for instr_index in range(len(current.programs[proc_index])):
                variant = _delete_instruction(current, proc_index, instr_index)
                if variant is None:
                    continue
                checks += 1
                if check(variant):
                    current = variant
                    progress = True
                    break
                if checks >= max_checks:
                    break
            if progress or checks >= max_checks:
                break
    current = _drop_empty_programs(current)
    return MinimizationResult(
        test=current,
        original_instrs=instruction_count(test),
        minimized_instrs=instruction_count(current),
        checks=checks,
    )
